"""The one storage protocol every access method consumes.

The 1991 package owed its wins to a disciplined paged substrate under an
LRU buffer manager.  This module pins that discipline down as a single
:class:`Pager` protocol -- ``read_page`` / ``write_page`` / ``write_pages``
/ ``sync`` / ``truncate`` / ``close`` plus mandatory :class:`IOStats`
accounting and an ``on_page_io`` trace hook -- so the hash table, btree,
recno and every dbm-family baseline talk to storage the same way, and any
new backend (mmap, async, sharded) plugs in underneath all of them at
once.

Implementations:

- :class:`~repro.storage.pagedfile.PagedFile` -- a real file on disk;
- :class:`~repro.storage.memfile.MemPagedFile` -- RAM-backed;
- :class:`~repro.storage.simdisk.SimulatedDisk` -- wraps another pager
  with a 1991 I/O-time model;
- :class:`BytePagerAdapter` (here) -- page-granular view of a
  byte-granular :class:`~repro.storage.bytefile.ByteFile`;
- :class:`~repro.storage.faulty.FaultyPager` -- wraps another pager with
  injected crash points for recovery testing;
- :class:`~repro.core.wal.WALPager` -- interposes a write-ahead log:
  write-back lands in the log, reads are redirected to the newest logged
  image, and the underlying file is written only by checkpoints and
  recovery (``durability=``, see docs/TRANSACTIONS.md).

``write_pages`` is the vectored write the batched buffer-pool flush rides
on: one syscall covers a whole run of contiguous dirty pages, and the
saving is visible in ``IOStats.syscalls``.

:func:`open_pager` is the factory consumers use instead of importing
concrete classes, keeping them coupled only to the protocol.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

from repro.storage.bytefile import ByteFile
from repro.storage.freelist import FreeList
from repro.storage.iostats import IOStats
from repro.storage.memfile import MemPagedFile
from repro.storage.pagedfile import PagedFile


@runtime_checkable
class Pager(Protocol):
    """Fixed-size-page random-access storage with I/O accounting.

    Every implementation carries:

    - ``pagesize`` -- page size in bytes (positive);
    - ``readonly`` -- writes raise when true;
    - ``path`` -- backing file path or ``None``;
    - ``stats`` -- an :class:`IOStats` counting every operation;
    - ``freelist`` -- a :class:`~repro.storage.freelist.FreeList` of
      reusable page numbers fed by ``free_page`` and drained by
      ``alloc_page`` (wrappers expose the base pager's instance);
    - ``on_page_io`` -- optional ``(kind, pageno, nbytes)`` trace callback
      invoked on every page read/write (``kind`` is 'read' or 'write').

    Reads past EOF (or into holes) return zero-filled pages; writes
    shorter than a page are zero-padded; longer writes are an error.
    Writing a page clears its free mark: a written page is live.
    """

    pagesize: int
    readonly: bool
    stats: IOStats
    freelist: FreeList

    def read_page(self, pageno: int) -> bytes: ...

    def write_page(self, pageno: int, data: bytes) -> None: ...

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        """Vectored write: ``data`` (a whole number of pages) lands at
        ``start_pageno`` onward in ONE backend operation (one syscall in
        ``stats``, one ``page_write`` per page)."""
        ...

    def free_page(self, pageno: int) -> None:
        """Mark an existing page reusable (bookkeeping only, no I/O).
        The page's bytes stay on disk until reused or truncated; the
        format owning the file persists the set (docs/STORAGE.md)."""
        ...

    def alloc_page(self) -> int:
        """A usable page number: the lowest free page, else one past EOF.
        The page is not written here -- the caller's first write claims
        it (and clears any free mark)."""
        ...

    def sync(self) -> None: ...

    def truncate(self, npages: int) -> None: ...

    def npages(self) -> int: ...

    def size_bytes(self) -> int: ...

    def close(self) -> None: ...

    @property
    def closed(self) -> bool: ...


def open_pager(
    path: str | os.PathLike | None = None,
    *,
    pagesize: int,
    create: bool = False,
    readonly: bool = False,
    in_memory: bool = False,
    wrapper=None,
) -> Pager:
    """The factory every access method goes through.

    ``in_memory=True`` returns a :class:`MemPagedFile`; otherwise a
    :class:`PagedFile` (``path=None`` means an anonymous temp file).
    ``wrapper`` post-wraps the pager -- e.g. ``SimulatedDisk`` for
    modelled I/O time or ``FaultyPager`` for crash injection -- and the
    wrapped object must itself satisfy the protocol.
    """
    if in_memory:
        pager: Pager = MemPagedFile(pagesize, readonly=readonly)
    else:
        pager = PagedFile(path, pagesize, create=create, readonly=readonly)
    if wrapper is not None:
        pager = wrapper(pager)
    return pager


class BytePagerAdapter:
    """Page-granular :class:`Pager` view over a byte-granular
    :class:`ByteFile`.

    The gdbm baseline needs byte offsets for its variable-size records,
    so :class:`ByteFile` stays byte-granular -- but anything that wants
    to treat such a file as pages (the buffer pool, fault injection
    sweeps, page-level tools) can wrap it in this adapter.  Page
    accounting lives in the adapter's own :class:`IOStats`; the wrapped
    file keeps counting its byte-level traffic independently.
    """

    def __init__(self, inner: ByteFile, pagesize: int) -> None:
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        self.inner = inner
        self.pagesize = pagesize
        self.stats = IOStats()
        #: freed-page accounting (see repro.storage.freelist)
        self.freelist = FreeList()
        #: optional page-I/O trace callback ``(kind, pageno, nbytes)``
        self.on_page_io = None

    @property
    def path(self):
        return self.inner.path

    @property
    def readonly(self) -> bool:
        return self.inner.readonly

    def read_page(self, pageno: int) -> bytes:
        if pageno < 0:
            raise ValueError(f"negative page number {pageno}")
        data = self.inner.read_at_most(pageno * self.pagesize, self.pagesize)
        self.stats.record_read(len(data))
        cb = self.on_page_io
        if cb is not None:
            cb("read", pageno, len(data))
        if len(data) < self.pagesize:
            data += b"\0" * (self.pagesize - len(data))
        return data

    def write_page(self, pageno: int, data: bytes) -> None:
        if pageno < 0:
            raise ValueError(f"negative page number {pageno}")
        if len(data) > self.pagesize:
            raise ValueError(
                f"data of {len(data)} bytes exceeds pagesize {self.pagesize}"
            )
        if len(data) < self.pagesize:
            data = data + b"\0" * (self.pagesize - len(data))
        self.inner.write_at(pageno * self.pagesize, data)
        if self.freelist:
            self.freelist.discard(pageno)
        self.stats.record_write(len(data))
        cb = self.on_page_io
        if cb is not None:
            cb("write", pageno, len(data))

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        if start_pageno < 0:
            raise ValueError(f"negative page number {start_pageno}")
        if not data or len(data) % self.pagesize:
            raise ValueError(
                f"vectored write of {len(data)} bytes is not a whole number "
                f"of {self.pagesize}-byte pages"
            )
        self.inner.write_at(start_pageno * self.pagesize, data)
        n = len(data) // self.pagesize
        if self.freelist:
            for i in range(n):
                self.freelist.discard(start_pageno + i)
        self.stats.record_vector_write(n, len(data))
        cb = self.on_page_io
        if cb is not None:
            for i in range(n):
                cb("write", start_pageno + i, self.pagesize)

    def free_page(self, pageno: int) -> None:
        """Mark ``pageno`` free for reuse (bookkeeping only, no I/O)."""
        if self.readonly:
            raise OSError("free_page on readonly pager")
        if pageno >= self.npages():
            raise ValueError(
                f"cannot free page {pageno} past EOF ({self.npages()} pages)"
            )
        self.freelist.add(pageno)

    def alloc_page(self) -> int:
        """A usable page number: the lowest free page, else one past EOF."""
        if self.readonly:
            raise OSError("alloc_page on readonly pager")
        pageno = self.freelist.pop_lowest()
        return pageno if pageno is not None else self.npages()

    def sync(self) -> None:
        self.inner.sync()
        self.stats.record_syscall()

    def truncate(self, npages: int) -> None:
        self.inner.truncate_to(npages * self.pagesize)
        for pageno in [p for p in self.freelist.pages() if p >= npages]:
            self.freelist.discard(pageno)
        self.stats.record_syscall()

    def npages(self) -> int:
        size = self.inner.size()
        return (size + self.pagesize - 1) // self.pagesize

    def size_bytes(self) -> int:
        return self.inner.size()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def __enter__(self) -> "BytePagerAdapter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BytePagerAdapter pagesize={self.pagesize} over {self.inner!r}>"
