"""A fixed-size-page random-access file.

``PagedFile`` is the disk substrate under every disk-based hash table in this
repository (the new package and the dbm/sdbm/gdbm baselines).  It exposes the
operations the 1991 C implementations performed with lseek(2)/read(2)/
write(2) on raw file descriptors:

- read page *n* (a hole or EOF reads back as zeroes, matching sparse files),
- write page *n* (extending the file as needed),
- sync, truncate, close.

Every operation is counted in an :class:`~repro.storage.iostats.IOStats` so
benchmarks can report deterministic I/O figures.
"""

from __future__ import annotations

import os
import tempfile

from repro.storage.freelist import FreeList
from repro.storage.iostats import IOStats


class PagedFile:
    """Random access to fixed-size pages of a real file.

    Parameters
    ----------
    path:
        File path, or ``None`` for an anonymous temporary file (used by
        in-memory tables that spill to temp storage, as the paper's package
        does when the buffer pool overflows).
    pagesize:
        Size of every page in bytes.  Must be positive.
    create:
        If true, truncate/create the file; otherwise open an existing file.
    readonly:
        Open without write permission; writes raise ``OSError``.
    """

    def __init__(
        self,
        path: str | os.PathLike | None,
        pagesize: int,
        create: bool = False,
        readonly: bool = False,
    ) -> None:
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        if readonly and create:
            raise ValueError("cannot create a file readonly")
        self.pagesize = pagesize
        self.readonly = readonly
        self.stats = IOStats()
        #: freed-page accounting; persisted by the owning format via
        #: FreeList.persist/load (see repro.storage.freelist)
        self.freelist = FreeList()
        #: optional page-I/O trace callback ``(kind, pageno, nbytes)``,
        #: invoked on every read/write when set (see repro.obs.hooks)
        self.on_page_io = None
        self._closed = False
        if path is None:
            fd, tmppath = tempfile.mkstemp(prefix="repro-hash-")
            os.unlink(tmppath)
            self._fd = fd
            self.path = None
        else:
            self.path = os.fspath(path)
            if create:
                flags = os.O_RDWR | os.O_CREAT | os.O_TRUNC
            elif readonly:
                flags = os.O_RDONLY
            else:
                flags = os.O_RDWR
            self._fd = os.open(self.path, flags, 0o644)
        self.stats.record_syscall()  # the open itself

    # -- core page operations -------------------------------------------------

    def read_page(self, pageno: int) -> bytes:
        """Return page ``pageno`` as exactly ``pagesize`` bytes.

        Reads past EOF or into holes return zero bytes, the same behaviour a
        sparse .pag file gives dbm.
        """
        self._check_open()
        if pageno < 0:
            raise ValueError(f"negative page number {pageno}")
        data = os.pread(self._fd, self.pagesize, pageno * self.pagesize)
        self.stats.record_read(len(data))
        cb = self.on_page_io
        if cb is not None:
            cb("read", pageno, len(data))
        if len(data) < self.pagesize:
            data += b"\0" * (self.pagesize - len(data))
        return data

    def write_page(self, pageno: int, data: bytes) -> None:
        """Write exactly one page at ``pageno`` (data shorter than a page is
        zero-padded; longer is an error)."""
        self._check_open()
        if pageno < 0:
            raise ValueError(f"negative page number {pageno}")
        if len(data) > self.pagesize:
            raise ValueError(
                f"data of {len(data)} bytes exceeds pagesize {self.pagesize}"
            )
        if len(data) < self.pagesize:
            data = data + b"\0" * (self.pagesize - len(data))
        os.pwrite(self._fd, data, pageno * self.pagesize)
        if self.freelist:
            self.freelist.discard(pageno)  # a written page is live
        self.stats.record_write(len(data))
        cb = self.on_page_io
        if cb is not None:
            cb("write", pageno, len(data))

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        """Vectored write: a whole number of pages lands at
        ``start_pageno`` onward in one pwrite (one syscall, ``n`` page
        writes in the accounting)."""
        self._check_open()
        if start_pageno < 0:
            raise ValueError(f"negative page number {start_pageno}")
        if not data or len(data) % self.pagesize:
            raise ValueError(
                f"vectored write of {len(data)} bytes is not a whole number "
                f"of {self.pagesize}-byte pages"
            )
        os.pwrite(self._fd, data, start_pageno * self.pagesize)
        n = len(data) // self.pagesize
        if self.freelist:
            for i in range(n):
                self.freelist.discard(start_pageno + i)
        self.stats.record_vector_write(n, len(data))
        cb = self.on_page_io
        if cb is not None:
            for i in range(n):
                cb("write", start_pageno + i, self.pagesize)

    # -- page allocation -------------------------------------------------------

    def free_page(self, pageno: int) -> None:
        """Mark ``pageno`` free for reuse by :meth:`alloc_page`.

        Purely bookkeeping -- no I/O happens here; the page's bytes stay
        in place until something reuses or truncates them.  The owner of
        the file format persists the set via its freelist chain.
        """
        self._check_open()
        if self.readonly:
            raise OSError("free_page on readonly PagedFile")
        if pageno >= self.npages():
            raise ValueError(
                f"cannot free page {pageno} past EOF ({self.npages()} pages)"
            )
        self.freelist.add(pageno)

    def alloc_page(self) -> int:
        """Return a usable page number: the lowest free page, else EOF."""
        self._check_open()
        if self.readonly:
            raise OSError("alloc_page on readonly PagedFile")
        pageno = self.freelist.pop_lowest()
        return pageno if pageno is not None else self.npages()

    # -- maintenance -----------------------------------------------------------

    def sync(self) -> None:
        """Flush OS buffers to stable storage (fsync)."""
        self._check_open()
        os.fsync(self._fd)
        self.stats.record_syscall()

    def truncate(self, npages: int) -> None:
        """Shrink or extend the file to exactly ``npages`` pages."""
        self._check_open()
        os.ftruncate(self._fd, npages * self.pagesize)
        for pageno in [p for p in self.freelist.pages() if p >= npages]:
            self.freelist.discard(pageno)  # truncated away, no longer reusable
        self.stats.record_syscall()

    def npages(self) -> int:
        """Number of whole-or-partial pages currently in the file."""
        self._check_open()
        size = os.fstat(self._fd).st_size
        return (size + self.pagesize - 1) // self.pagesize

    def size_bytes(self) -> int:
        self._check_open()
        return os.fstat(self._fd).st_size

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed PagedFile")

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<PagedFile {self.path!r} pagesize={self.pagesize} {state}>"
