"""Per-pager freelist: freed pages are remembered and reused.

The 1991 package only ever grows its file: overflow pages free into the
header bitmaps, but a *physical* page, once allocated, is never handed
back (footnote 6: "the file never contracts").  This module adds the
missing half of the allocator.  Every base pager owns a :class:`FreeList`
-- an in-memory set of free page numbers -- and grows two protocol
methods on top of it:

- ``free_page(pageno)`` marks a page free for reuse;
- ``alloc_page()`` returns the lowest free page, or the page one past
  the current end of file when none is free.

Writing a page through any pager automatically clears its free mark, so
a page that a higher layer re-creates by address (the hash table's
``_fault(create=True)`` path does this after a merge is undone by a
re-split) can never stay accounted free.

On-disk persistence is intrusive, the classic UNIX filesystem trick: the
free pages themselves form a singly-linked chain.  Each free page starts
with an 8-byte record::

    offset  size  field
    0       4     magic  0x46524545 ("FREE", big-endian)
    4       4     next   page number of the next free page, or 0

and the chain head is a single page number stored by the *owner* of the
file format (the hash table keeps it in its header's ``free_head`` field
-- see docs/FORMAT.md).  ``0`` terminates the chain: page 0 is always
format metadata (a header or meta page), never free, so 0 doubles as
"none" and a zeroed header field from an older file reads back as an
empty freelist.

Persistence I/O goes through whatever pager the owner hands in --
a :class:`~repro.core.wal.WALPager` when durability is on -- so chain
writes are logged and replayed exactly like data pages: the freelist is
crash-consistent with the header that points at it.

``trim()`` turns logical frees into a physically smaller file by
truncating any run of free pages that touches EOF.
"""

from __future__ import annotations

import struct

__all__ = ["FREE_PAGE_MAGIC", "FreeList", "FreeListError"]

#: magic stamped on every chained free page ("FREE")
FREE_PAGE_MAGIC = 0x46524545

_CHAIN = struct.Struct(">II")  # magic, next pageno (0 = end of chain)


class FreeListError(ValueError):
    """A persisted freelist chain is malformed (bad magic, cycle, range)."""


class FreeList:
    """An in-memory set of free page numbers with intrusive persistence.

    The set itself is plain bookkeeping -- O(1) membership, lowest-first
    reuse -- and is owned by a single base pager.  ``persist``/``load``
    serialize it through the chain format above; ``dirty`` tracks whether
    the in-memory set has diverged from what was last persisted/loaded.
    """

    __slots__ = ("_free", "dirty")

    def __init__(self) -> None:
        self._free: set[int] = set()
        #: True when the set changed since the last persist()/load()
        self.dirty = False

    # -- set operations --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, pageno: int) -> bool:
        return pageno in self._free

    def __bool__(self) -> bool:
        return bool(self._free)

    def pages(self) -> tuple[int, ...]:
        """The free page numbers, ascending."""
        return tuple(sorted(self._free))

    def add(self, pageno: int) -> None:
        """Mark ``pageno`` free.  Page 0 (format metadata) is rejected."""
        if pageno <= 0:
            raise ValueError(f"cannot free page {pageno} (page 0 is metadata)")
        if pageno not in self._free:
            self._free.add(pageno)
            self.dirty = True

    def discard(self, pageno: int) -> None:
        """Clear the free mark on ``pageno`` (no-op when not free)."""
        if pageno in self._free:
            self._free.discard(pageno)
            self.dirty = True

    def pop_lowest(self) -> int | None:
        """Remove and return the lowest free page, or None when empty."""
        if not self._free:
            return None
        pageno = min(self._free)
        self._free.discard(pageno)
        self.dirty = True
        return pageno

    def clear(self) -> None:
        if self._free:
            self._free.clear()
            self.dirty = True

    def restore(self, pages) -> None:
        """Reset the set to ``pages`` (transaction-abort rollback)."""
        self._free = set(pages)
        self.dirty = True

    # -- persistence -----------------------------------------------------------

    def persist(self, io) -> int:
        """Write the chain through pager ``io`` and return its head.

        Every free page gets its 8-byte chain record (the rest of the
        page is left zero); the returned head page number -- 0 when the
        list is empty -- is for the caller to store in its own metadata.
        Writing the chain goes through ``io.write_page``, so under a WAL
        the chain commits or vanishes atomically with the header.
        """
        chain = sorted(self._free)
        # write_page clears free marks (a written page is live by
        # definition); re-establish the set after the chain lands.
        for i, pageno in enumerate(chain):
            nxt = chain[i + 1] if i + 1 < len(chain) else 0
            io.write_page(pageno, _CHAIN.pack(FREE_PAGE_MAGIC, nxt))
        self._free = set(chain)
        self.dirty = False
        return chain[0] if chain else 0

    def load(self, io, head: int, *, npages: int | None = None) -> int:
        """Replace the set with the chain starting at ``head``.

        Walks ``next`` pointers through ``io.read_page`` with full
        validation -- bad magic, out-of-range pages and cycles raise
        :class:`FreeListError` rather than silently corrupting the
        allocator.  Returns the number of pages loaded.
        """
        limit = npages if npages is not None else io.npages()
        free: set[int] = set()
        pageno = head
        while pageno:
            if pageno < 0 or pageno >= limit:
                raise FreeListError(
                    f"freelist chain points at page {pageno} outside the "
                    f"file ({limit} pages)"
                )
            if pageno in free:
                raise FreeListError(f"freelist chain cycles at page {pageno}")
            magic, nxt = _CHAIN.unpack_from(io.read_page(pageno))
            if magic != FREE_PAGE_MAGIC:
                raise FreeListError(
                    f"page {pageno} on the freelist chain has magic "
                    f"{magic:#010x}, expected {FREE_PAGE_MAGIC:#010x}"
                )
            free.add(pageno)
            pageno = nxt
        self._free = free
        self.dirty = False
        return len(free)

    def trim(self, io) -> int:
        """Truncate every free page touching EOF; returns pages cut.

        Only the tail run can be returned to the filesystem -- interior
        free pages stay chained for reuse.  Call at a quiescent point
        (sync/checkpoint): under a WAL, truncation bypasses the log, so
        it must not run while an open transaction could still roll back
        to a state that needs those pages.
        """
        n = io.npages()
        cut = 0
        while n > 0 and (n - 1) in self._free:
            self._free.discard(n - 1)
            n -= 1
            cut += 1
        if cut:
            self.dirty = True
            io.truncate(n)
        return cut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FreeList n={len(self._free)} dirty={self.dirty}>"
