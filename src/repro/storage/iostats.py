"""I/O accounting for the paged-file substrate.

The paper's evaluation reports *system time*, which on its 1991 testbed was
dominated by read(2)/write(2)/lseek(2) traffic to the database file.  In this
reproduction every page-level operation is counted, so benchmarks can report
a deterministic, machine-independent proxy for that system time alongside
wall-clock measurements.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class IOSnapshot:
    """An immutable point-in-time copy of a set of I/O counters."""

    page_reads: int = 0
    page_writes: int = 0
    syscalls: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def page_io(self) -> int:
        """Total page-granularity transfers (reads + writes)."""
        return self.page_reads + self.page_writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            syscalls=self.syscalls - other.syscalls,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            syscalls=self.syscalls + other.syscalls,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


@dataclass
class IOStats:
    """Mutable I/O counters attached to a paged file.

    ``syscalls`` counts each operation that would have been a system call in
    the C implementation (a seek+read pair is counted as one logical call,
    matching how the paper reasons about "each access requires a system
    call").
    """

    page_reads: int = 0
    page_writes: int = 0
    syscalls: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _marks: dict = field(default_factory=dict, repr=False)
    #: optional mutex installed by :meth:`make_threadsafe`; None keeps the
    #: single-threaded fast path lock-free
    _lock: threading.Lock | None = field(default=None, repr=False, compare=False)

    def make_threadsafe(self) -> "IOStats":
        """Serialize counter updates behind a mutex.

        ``x += 1`` on an attribute is a read-modify-write that two
        threads can interleave even under the GIL; tables opened with
        ``concurrent=True`` call this so concurrent readers never lose
        increments.  Idempotent; returns self for chaining."""
        if self._lock is None:
            self._lock = threading.Lock()
        return self

    def record_read(self, nbytes: int) -> None:
        lock = self._lock
        if lock is None:
            self.page_reads += 1
            self.syscalls += 1
            self.bytes_read += nbytes
            return
        with lock:
            self.page_reads += 1
            self.syscalls += 1
            self.bytes_read += nbytes

    def record_write(self, nbytes: int) -> None:
        lock = self._lock
        if lock is None:
            self.page_writes += 1
            self.syscalls += 1
            self.bytes_written += nbytes
            return
        with lock:
            self.page_writes += 1
            self.syscalls += 1
            self.bytes_written += nbytes

    def record_vector_write(self, npages: int, nbytes: int) -> None:
        """A coalesced multi-page write: one syscall covers ``npages``
        page transfers (the batched-flush saving the paper's buffer pool
        exists to realize)."""
        lock = self._lock
        if lock is None:
            self.page_writes += npages
            self.syscalls += 1
            self.bytes_written += nbytes
            return
        with lock:
            self.page_writes += npages
            self.syscalls += 1
            self.bytes_written += nbytes

    def record_syscall(self) -> None:
        """Count a bookkeeping call (open/close/sync/truncate)."""
        lock = self._lock
        if lock is None:
            self.syscalls += 1
            return
        with lock:
            self.syscalls += 1

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            syscalls=self.syscalls,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def reset(self) -> None:
        lock = self._lock
        if lock is not None:
            lock.acquire()
        try:
            self.page_reads = 0
            self.page_writes = 0
            self.syscalls = 0
            self.bytes_read = 0
            self.bytes_written = 0
        finally:
            if lock is not None:
                lock.release()

    @property
    def page_io(self) -> int:
        return self.page_reads + self.page_writes

    def as_dict(self) -> dict:
        """The counters as the plain dict ``db.stat()`` nests under 'io'."""
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "page_io": self.page_io,
            "syscalls": self.syscalls,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def merge(self, other: "IOStats | IOSnapshot") -> None:
        """Fold another counter set into this one (e.g. at file close)."""
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        self.syscalls += other.syscalls
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
