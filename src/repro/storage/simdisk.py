"""A simulated 1991 I/O stack: disk + OS buffer cache + syscall cost.

The paper's elapsed times come from a 33 MHz HP9000/370 running
4.3BSD-Reno with 16 MB of RAM and an HP7959S disk.  Three effects set
those numbers, and this wrapper models each -- without sleeping -- so
benchmarks can report *simulated 1991 seconds* (see EXPERIMENTS.md):

- **syscall + copy cost** (``syscall_ms``, default 0.5 ms): every
  read/write the library issues pays it, cached or not.  This is what
  made dbm slow even when its file sat in the buffer cache ("each access
  requires a system call"), and what the new package's user-level buffer
  pool avoids.
- **OS buffer cache** (``os_cache_bytes``, default 2 MB of the machine's
  16 MB): read hits cost only the syscall; 4.3BSD's delayed writes make
  write hits syscall-only too.
- **the disk** (``seek_ms`` 28 ms, ``transfer_bytes_s`` ~1 MB/s): misses
  pay a seek (skipped for sequential access) plus transfer.

``sync`` charges one seek (the flush of the create test).
"""

from __future__ import annotations

from collections import OrderedDict

#: HP7959S / 4.3BSD-era defaults.
DEFAULT_SEEK_MS = 28.0
DEFAULT_TRANSFER_BYTES_S = 1_000_000
DEFAULT_OS_CACHE_BYTES = 2 * 1024 * 1024
DEFAULT_SYSCALL_MS = 0.5


class SimulatedDisk:
    """Wrap a paged file; mirror its interface; accumulate simulated time.

    ``sim_seconds`` is the modelled I/O-stack time of every operation
    since creation.  The wrapped file does the real storage work, so
    results stay correct while the clock stays 1991.
    """

    def __init__(
        self,
        inner,
        *,
        seek_ms: float = DEFAULT_SEEK_MS,
        transfer_bytes_s: float = DEFAULT_TRANSFER_BYTES_S,
        os_cache_bytes: int = DEFAULT_OS_CACHE_BYTES,
        syscall_ms: float = DEFAULT_SYSCALL_MS,
    ) -> None:
        if seek_ms < 0 or transfer_bytes_s <= 0 or os_cache_bytes < 0:
            raise ValueError("invalid disk model parameters")
        if syscall_ms < 0:
            raise ValueError("invalid syscall cost")
        self.inner = inner
        self.seek_s = seek_ms / 1000.0
        self.transfer_bytes_s = transfer_bytes_s
        self.syscall_s = syscall_ms / 1000.0
        self.os_cache_pages = os_cache_bytes // inner.pagesize
        self.sim_seconds = 0.0
        self.seeks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._last_page: int | None = None
        self._os_cache: OrderedDict[int, None] = OrderedDict()

    # -- the model -------------------------------------------------------------

    def _cache_insert(self, pageno: int) -> None:
        if not self.os_cache_pages:
            return
        self._os_cache[pageno] = None
        self._os_cache.move_to_end(pageno)
        while len(self._os_cache) > self.os_cache_pages:
            self._os_cache.popitem(last=False)

    def _charge(self, pageno: int) -> None:
        """One page operation: syscall always; disk on a cache miss."""
        self.sim_seconds += self.syscall_s
        self._charge_disk(pageno)

    def _charge_disk(self, pageno: int) -> None:
        """The post-syscall part of the model: buffer cache, then seek +
        transfer on a miss."""
        if pageno in self._os_cache:
            self.cache_hits += 1
            self._os_cache.move_to_end(pageno)
            self._last_page = pageno
            return
        self.cache_misses += 1
        if self._last_page is None or pageno != self._last_page + 1:
            self.sim_seconds += self.seek_s
            self.seeks += 1
        self.sim_seconds += self.inner.pagesize / self.transfer_bytes_s
        self._last_page = pageno
        self._cache_insert(pageno)

    # -- paged-file interface -----------------------------------------------------

    @property
    def pagesize(self) -> int:
        return self.inner.pagesize

    @property
    def path(self):
        return self.inner.path

    @property
    def stats(self):
        return self.inner.stats

    @property
    def readonly(self) -> bool:
        return self.inner.readonly

    @property
    def on_page_io(self):
        return self.inner.on_page_io

    @on_page_io.setter
    def on_page_io(self, cb) -> None:
        self.inner.on_page_io = cb

    def read_page(self, pageno: int) -> bytes:
        self._charge(pageno)
        return self.inner.read_page(pageno)

    def write_page(self, pageno: int, data: bytes) -> None:
        self._charge(pageno)
        self.inner.write_page(pageno, data)

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        """A vectored write pays ONE syscall for the whole run; the pages
        after the first are sequential by construction, so only the first
        can seek -- exactly why batched flushing beats page-at-a-time."""
        self.sim_seconds += self.syscall_s
        for i in range(len(data) // self.inner.pagesize):
            self._charge_disk(start_pageno + i)
        self.inner.write_pages(start_pageno, data)

    def sync(self) -> None:
        self.sim_seconds += self.seek_s
        self.inner.sync()

    def truncate(self, npages: int) -> None:
        self.inner.truncate(npages)

    def free_page(self, pageno: int) -> None:
        # bookkeeping only -- no simulated I/O time
        self.inner.free_page(pageno)

    def alloc_page(self) -> int:
        return self.inner.alloc_page()

    @property
    def freelist(self):
        return self.inner.freelist

    def npages(self) -> int:
        return self.inner.npages()

    def size_bytes(self) -> int:
        return self.inner.size_bytes()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def __enter__(self) -> "SimulatedDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
