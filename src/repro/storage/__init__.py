"""Paged-file storage substrate.

The 1991 paper ran on raw UNIX files on an HP7959S disk.  This package is the
equivalent substrate for the reproduction: one :class:`Pager` protocol --
``read_page`` / ``write_page`` / ``write_pages`` / ``sync`` / ``truncate`` /
``close`` with mandatory :class:`IOStats` accounting and an ``on_page_io``
trace hook -- consumed by every access method and baseline, so benchmarks
report page reads/writes (the deterministic analogue of the paper's *system
time*) the same way regardless of backend.

Implementations sharing the protocol:

- :class:`PagedFile` -- a real file on disk (or an anonymous temp file),
  sparse-friendly, used for persistent hash tables.
- :class:`MemPagedFile` -- RAM-backed, used for pure in-memory tables and for
  fast deterministic tests.
- :class:`BytePagerAdapter` -- page-granular view of a byte-granular
  :class:`ByteFile` (the gdbm substrate).
- :class:`FaultyPager` -- wraps any pager with injected crash points, torn
  writes and I/O errors for recovery testing.
- :class:`repro.storage.simdisk.SimulatedDisk` -- wraps any pager with a
  modelled 1991 I/O-time clock.

Construct through :func:`open_pager` to stay coupled only to the protocol.
See docs/STORAGE.md.
"""

from repro.storage.iostats import IOStats, IOSnapshot
from repro.storage.pagedfile import PagedFile
from repro.storage.memfile import MemPagedFile
from repro.storage.bytefile import ByteFile
from repro.storage.pager import BytePagerAdapter, Pager, open_pager
from repro.storage.faulty import CrashPoint, FaultClock, FaultyPager, InjectedIOError

__all__ = [
    "IOStats",
    "IOSnapshot",
    "Pager",
    "open_pager",
    "PagedFile",
    "MemPagedFile",
    "ByteFile",
    "BytePagerAdapter",
    "FaultClock",
    "FaultyPager",
    "CrashPoint",
    "InjectedIOError",
]
