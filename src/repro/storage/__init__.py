"""Paged-file storage substrate.

The 1991 paper ran on raw UNIX files on an HP7959S disk.  This package is the
equivalent substrate for the reproduction: a fixed-size-page random-access
file abstraction with explicit I/O accounting so benchmarks can report page
reads/writes (the deterministic analogue of the paper's *system time*).

Two implementations share one interface:

- :class:`PagedFile` -- a real file on disk (or an anonymous temp file),
  sparse-friendly, used for persistent hash tables.
- :class:`MemPagedFile` -- RAM-backed, used for pure in-memory tables and for
  fast deterministic tests.
"""

from repro.storage.iostats import IOStats, IOSnapshot
from repro.storage.pagedfile import PagedFile
from repro.storage.memfile import MemPagedFile

__all__ = ["IOStats", "IOSnapshot", "PagedFile", "MemPagedFile"]
