"""Fault injection for any pager: crash points, torn writes, bad I/O.

Nothing in a 1991-style hash package survives ``kill -9`` by accident;
whether the *file* survives is a property you have to test.  ``FaultyPager``
wraps any storage object -- page-granular (:class:`Pager`) or
byte-granular (:class:`~repro.storage.bytefile.ByteFile`) -- and counts
every I/O operation.  At a chosen operation index it injects one of:

- ``'crash'``    -- the op does not happen; this and every later op raise
  :class:`CrashPoint`, as if the process died mid-call.  Reopen the path
  with a fresh pager to see exactly what a post-crash file looks like.
- ``'torn'``     -- like ``'crash'``, but a write lands HALF its bytes
  first (a torn page: the classic partial-sector failure).
- ``'oserror'``  -- the op raises :class:`InjectedIOError` once, then
  I/O continues normally (a transient fault, e.g. EIO on a flaky disk).
- ``'short_read'`` -- a read returns only half its bytes once (then
  normal).  Page reads violate the exactly-one-page contract on purpose.
- ``'bitflip'``  -- the op happens, but with ONE BIT flipped in its data
  (silent media corruption: the write lands whole and wrong, or the read
  returns a corrupted copy).  Nothing raises -- only a checksum can tell.
  The WAL's per-frame CRC exists exactly for this (docs/TRANSACTIONS.md).

The decorator exposes whichever interface its inner object has, so the
whole stack -- hash table, btree, recno, and the dbm/sdbm/gdbm baselines
-- can be swept with the same wrapper::

    table = HashTable.create(path, file_wrapper=lambda f: FaultyPager(f, fail_after=17))

Use :attr:`ops` after an un-faulted run to learn a workload's operation
count, then sweep ``fail_after`` over ``range(ops)`` -- the recovery test
in ``tests/test_crash_recovery.py`` does exactly that for every on-disk
format.

With a write-ahead log there are TWO files under test, and "crash at
op N" must mean the N-th I/O *anywhere*, not per-file.  A shared
:class:`FaultClock` gives several wrappers one op numbering::

    clock = FaultClock()
    table = HashTable.create(
        path,
        durability="wal",
        file_wrapper=lambda f: FaultyPager(f, fail_after=n, clock=clock),
        wal_wrapper=lambda f: FaultyPager(f, fail_after=n, clock=clock),
    )

and once one wrapper crashes, every wrapper on the clock refuses
further I/O -- the whole "process" is dead, not one file descriptor.
"""

from __future__ import annotations

__all__ = ["CrashPoint", "InjectedIOError", "FaultClock", "FaultyPager", "FAULT_MODES"]

FAULT_MODES = ("crash", "torn", "oserror", "short_read", "bitflip")


def _flip_one_bit(data) -> bytes:
    """One-bit corruption in the middle of ``data`` (silent, CRC-visible)."""
    if not data:
        return bytes(data)
    buf = bytearray(data)
    buf[len(buf) // 2] ^= 0x01
    return bytes(buf)


class FaultClock:
    """A single op counter shared by several :class:`FaultyPager` wrappers.

    All wrappers ticking one clock share its numbering, so a sweep over
    ``fail_after`` hits every I/O across every wrapped file exactly once;
    a crash on any wrapper kills them all (one process, one death).
    """

    __slots__ = ("ops", "crashed", "fired")

    def __init__(self) -> None:
        #: I/O operations issued through every wrapper on this clock
        self.ops = 0
        #: True once a crash fault fired (all further ops refuse)
        self.crashed = False
        #: True once any one-shot fault fired
        self.fired = False


class CrashPoint(OSError):
    """The injected kill: raised at the crash op and on every op after it."""


class InjectedIOError(OSError):
    """A transient injected I/O failure (the op fails, the pager lives)."""


class FaultyPager:
    """Wrap a pager (or byte file) with a fail-after-N-ops fault.

    Parameters
    ----------
    inner:
        Any object with the Pager protocol's operations, or a
        :class:`ByteFile` (``read_at``/``write_at``).  Non-operation
        attributes (``pagesize``, ``stats``, ``path`` ...) pass through.
    fail_after:
        0-based operation index at which the fault fires; ``None`` counts
        ops without ever faulting (the calibration run).
    mode:
        One of ``'crash'``, ``'torn'``, ``'oserror'``, ``'short_read'``,
        ``'bitflip'``.
    clock:
        Optional shared :class:`FaultClock`; wrappers on one clock share
        op numbering and die together.  Default: a private clock.
    """

    def __init__(
        self,
        inner,
        fail_after: int | None = None,
        mode: str = "crash",
        clock: FaultClock | None = None,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
        if fail_after is not None and fail_after < 0:
            raise ValueError(f"fail_after must be >= 0, got {fail_after}")
        self.inner = inner
        self.fail_after = fail_after
        self.mode = mode
        self.clock = clock if clock is not None else FaultClock()
        #: optional ``fn(payload)`` called the instant the fault fires,
        #: before the failure is raised -- the tracer's ``on_fault`` feed
        #: (so the flight recorder logs the injection ahead of the crash)
        self.on_fault = None

    @property
    def ops(self) -> int:
        """I/O operations issued through this wrapper's clock so far."""
        return self.clock.ops

    @property
    def crashed(self) -> bool:
        """True once the crash fault fired (all further ops refuse)."""
        return self.clock.crashed

    # -- the fault engine ------------------------------------------------------

    def _tick(self) -> bool:
        """Count one op; returns True when the fault fires on THIS op."""
        clock = self.clock
        if clock.crashed:
            raise CrashPoint(f"I/O after injected crash (op {clock.ops})")
        op = clock.ops
        clock.ops += 1
        if clock.fired or self.fail_after is None or op != self.fail_after:
            return False
        clock.fired = True
        if self.on_fault is not None:
            self.on_fault({"mode": self.mode, "op": op})
        return True

    def _fail_read(self):
        if self.mode in ("crash", "torn"):
            self.clock.crashed = True
            raise CrashPoint(f"injected crash at op {self.fail_after}")
        if self.mode == "oserror":
            raise InjectedIOError(f"injected I/O error at op {self.fail_after}")
        return None  # short_read: caller truncates

    def _fail_write(self, do_partial) -> None:
        if self.mode == "torn":
            do_partial()
            self.clock.crashed = True
            raise CrashPoint(f"injected torn write at op {self.fail_after}")
        if self.mode == "crash":
            self.clock.crashed = True
            raise CrashPoint(f"injected crash at op {self.fail_after}")
        raise InjectedIOError(f"injected I/O error at op {self.fail_after}")

    # -- page-granular operations ----------------------------------------------

    def read_page(self, pageno: int) -> bytes:
        if self._tick():
            if self.mode == "bitflip":
                return _flip_one_bit(self.inner.read_page(pageno))
            if self._fail_read() is None and self.mode == "short_read":
                data = self.inner.read_page(pageno)
                return data[: len(data) // 2]
        return self.inner.read_page(pageno)

    def write_page(self, pageno: int, data: bytes) -> None:
        if self._tick():
            if self.mode == "bitflip":
                self.inner.write_page(pageno, _flip_one_bit(data))
                return  # landed whole -- and wrong
            pagesize = self.inner.pagesize
            if len(data) < pagesize:
                data = data + b"\0" * (pagesize - len(data))
            self._fail_write(
                lambda: self.inner.write_page(pageno, data[: pagesize // 2])
            )
            return  # oserror: op lost, pager lives
        self.inner.write_page(pageno, data)

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        if self._tick():
            if self.mode == "bitflip":
                self.inner.write_pages(start_pageno, _flip_one_bit(data))
                return
            pagesize = self.inner.pagesize
            half = (len(data) // 2 // pagesize) * pagesize or pagesize
            self._fail_write(
                lambda: self.inner.write_pages(start_pageno, data[:half])
            )
            return
        self.inner.write_pages(start_pageno, data)

    # -- byte-granular operations (ByteFile) -------------------------------------

    def read_at(self, offset: int, nbytes: int) -> bytes:
        if self._tick():
            if self.mode == "bitflip":
                return _flip_one_bit(self.inner.read_at(offset, nbytes))
            if self._fail_read() is None and self.mode == "short_read":
                data = self.inner.read_at_most(offset, nbytes)
                return data[: len(data) // 2]
        return self.inner.read_at(offset, nbytes)

    def read_at_most(self, offset: int, nbytes: int) -> bytes:
        if self._tick():
            if self.mode == "bitflip":
                return _flip_one_bit(self.inner.read_at_most(offset, nbytes))
            if self._fail_read() is None and self.mode == "short_read":
                data = self.inner.read_at_most(offset, nbytes)
                return data[: len(data) // 2]
        return self.inner.read_at_most(offset, nbytes)

    def write_at(self, offset: int, data: bytes) -> None:
        if self._tick():
            if self.mode == "bitflip":
                self.inner.write_at(offset, _flip_one_bit(data))
                return
            self._fail_write(
                lambda: self.inner.write_at(offset, data[: max(1, len(data) // 2)])
            )
            return
        self.inner.write_at(offset, data)

    # -- maintenance operations ----------------------------------------------------

    def sync(self) -> None:
        if self._tick() and self.mode != "bitflip":
            self._fail_write(lambda: None)  # a torn sync syncs nothing
            return
        self.inner.sync()

    def truncate(self, npages: int) -> None:
        if self._tick() and self.mode != "bitflip":
            self._fail_write(lambda: None)
            return
        self.inner.truncate(npages)

    def truncate_to(self, nbytes: int) -> None:
        if self._tick() and self.mode != "bitflip":
            self._fail_write(lambda: None)
            return
        self.inner.truncate_to(nbytes)

    # -- non-faulting passthroughs ---------------------------------------------------

    # free_page/alloc_page are pure bookkeeping (no I/O), so they never
    # tick the fault clock: a crash cannot land "inside" them, only on
    # the page writes that make their effects durable.

    def free_page(self, pageno: int) -> None:
        self.inner.free_page(pageno)

    def alloc_page(self) -> int:
        return self.inner.alloc_page()

    @property
    def freelist(self):
        return self.inner.freelist

    def npages(self) -> int:
        return self.inner.npages()

    def size(self) -> int:
        return self.inner.size()

    def size_bytes(self) -> int:
        return self.inner.size_bytes()

    def close(self) -> None:
        # Closing is always allowed: post-crash cleanup must not raise.
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    @property
    def pagesize(self) -> int:
        return self.inner.pagesize

    @property
    def readonly(self) -> bool:
        return self.inner.readonly

    @property
    def path(self):
        return self.inner.path

    @property
    def stats(self):
        return self.inner.stats

    @property
    def on_page_io(self):
        return self.inner.on_page_io

    @on_page_io.setter
    def on_page_io(self, cb) -> None:
        self.inner.on_page_io = cb

    @property
    def on_io(self):
        return self.inner.on_io

    @on_io.setter
    def on_io(self, cb) -> None:
        self.inner.on_io = cb

    def __enter__(self) -> "FaultyPager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else f"ops={self.ops}"
        return (
            f"<FaultyPager mode={self.mode} fail_after={self.fail_after} "
            f"{state} over {self.inner!r}>"
        )
