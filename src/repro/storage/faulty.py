"""Fault injection for any pager: crash points, torn writes, bad I/O.

Nothing in a 1991-style hash package survives ``kill -9`` by accident;
whether the *file* survives is a property you have to test.  ``FaultyPager``
wraps any storage object -- page-granular (:class:`Pager`) or
byte-granular (:class:`~repro.storage.bytefile.ByteFile`) -- and counts
every I/O operation.  At a chosen operation index it injects one of:

- ``'crash'``    -- the op does not happen; this and every later op raise
  :class:`CrashPoint`, as if the process died mid-call.  Reopen the path
  with a fresh pager to see exactly what a post-crash file looks like.
- ``'torn'``     -- like ``'crash'``, but a write lands HALF its bytes
  first (a torn page: the classic partial-sector failure).
- ``'oserror'``  -- the op raises :class:`InjectedIOError` once, then
  I/O continues normally (a transient fault, e.g. EIO on a flaky disk).
- ``'short_read'`` -- a read returns only half its bytes once (then
  normal).  Page reads violate the exactly-one-page contract on purpose.

The decorator exposes whichever interface its inner object has, so the
whole stack -- hash table, btree, recno, and the dbm/sdbm/gdbm baselines
-- can be swept with the same wrapper::

    table = HashTable.create(path, file_wrapper=lambda f: FaultyPager(f, fail_after=17))

Use :attr:`ops` after an un-faulted run to learn a workload's operation
count, then sweep ``fail_after`` over ``range(ops)`` -- the recovery test
in ``tests/test_crash_recovery.py`` does exactly that for every on-disk
format.
"""

from __future__ import annotations

__all__ = ["CrashPoint", "InjectedIOError", "FaultyPager", "FAULT_MODES"]

FAULT_MODES = ("crash", "torn", "oserror", "short_read")


class CrashPoint(OSError):
    """The injected kill: raised at the crash op and on every op after it."""


class InjectedIOError(OSError):
    """A transient injected I/O failure (the op fails, the pager lives)."""


class FaultyPager:
    """Wrap a pager (or byte file) with a fail-after-N-ops fault.

    Parameters
    ----------
    inner:
        Any object with the Pager protocol's operations, or a
        :class:`ByteFile` (``read_at``/``write_at``).  Non-operation
        attributes (``pagesize``, ``stats``, ``path`` ...) pass through.
    fail_after:
        0-based operation index at which the fault fires; ``None`` counts
        ops without ever faulting (the calibration run).
    mode:
        One of ``'crash'``, ``'torn'``, ``'oserror'``, ``'short_read'``.
    """

    def __init__(self, inner, fail_after: int | None = None, mode: str = "crash") -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
        if fail_after is not None and fail_after < 0:
            raise ValueError(f"fail_after must be >= 0, got {fail_after}")
        self.inner = inner
        self.fail_after = fail_after
        self.mode = mode
        #: I/O operations issued through this wrapper so far
        self.ops = 0
        #: True once the crash fault fired (all further ops refuse)
        self.crashed = False
        self._fired = False
        #: optional ``fn(payload)`` called the instant the fault fires,
        #: before the failure is raised -- the tracer's ``on_fault`` feed
        #: (so the flight recorder logs the injection ahead of the crash)
        self.on_fault = None

    # -- the fault engine ------------------------------------------------------

    def _tick(self) -> bool:
        """Count one op; returns True when the fault fires on THIS op."""
        if self.crashed:
            raise CrashPoint(f"I/O after injected crash (op {self.ops})")
        op = self.ops
        self.ops += 1
        if self._fired or self.fail_after is None or op != self.fail_after:
            return False
        self._fired = True
        if self.on_fault is not None:
            self.on_fault({"mode": self.mode, "op": op})
        return True

    def _fail_read(self):
        if self.mode in ("crash", "torn"):
            self.crashed = True
            raise CrashPoint(f"injected crash at op {self.fail_after}")
        if self.mode == "oserror":
            raise InjectedIOError(f"injected I/O error at op {self.fail_after}")
        return None  # short_read: caller truncates

    def _fail_write(self, do_partial) -> None:
        if self.mode == "torn":
            do_partial()
            self.crashed = True
            raise CrashPoint(f"injected torn write at op {self.fail_after}")
        if self.mode == "crash":
            self.crashed = True
            raise CrashPoint(f"injected crash at op {self.fail_after}")
        raise InjectedIOError(f"injected I/O error at op {self.fail_after}")

    # -- page-granular operations ----------------------------------------------

    def read_page(self, pageno: int) -> bytes:
        if self._tick():
            if self._fail_read() is None and self.mode == "short_read":
                data = self.inner.read_page(pageno)
                return data[: len(data) // 2]
        return self.inner.read_page(pageno)

    def write_page(self, pageno: int, data: bytes) -> None:
        if self._tick():
            pagesize = self.inner.pagesize
            if len(data) < pagesize:
                data = data + b"\0" * (pagesize - len(data))
            self._fail_write(
                lambda: self.inner.write_page(pageno, data[: pagesize // 2])
            )
            return  # oserror: op lost, pager lives
        self.inner.write_page(pageno, data)

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        if self._tick():
            pagesize = self.inner.pagesize
            half = (len(data) // 2 // pagesize) * pagesize or pagesize
            self._fail_write(
                lambda: self.inner.write_pages(start_pageno, data[:half])
            )
            return
        self.inner.write_pages(start_pageno, data)

    # -- byte-granular operations (ByteFile) -------------------------------------

    def read_at(self, offset: int, nbytes: int) -> bytes:
        if self._tick():
            if self._fail_read() is None and self.mode == "short_read":
                data = self.inner.read_at_most(offset, nbytes)
                return data[: len(data) // 2]
        return self.inner.read_at(offset, nbytes)

    def read_at_most(self, offset: int, nbytes: int) -> bytes:
        if self._tick():
            if self._fail_read() is None and self.mode == "short_read":
                data = self.inner.read_at_most(offset, nbytes)
                return data[: len(data) // 2]
        return self.inner.read_at_most(offset, nbytes)

    def write_at(self, offset: int, data: bytes) -> None:
        if self._tick():
            self._fail_write(
                lambda: self.inner.write_at(offset, data[: max(1, len(data) // 2)])
            )
            return
        self.inner.write_at(offset, data)

    # -- maintenance operations ----------------------------------------------------

    def sync(self) -> None:
        if self._tick():
            self._fail_write(lambda: None)  # a torn sync syncs nothing
            return
        self.inner.sync()

    def truncate(self, npages: int) -> None:
        if self._tick():
            self._fail_write(lambda: None)
            return
        self.inner.truncate(npages)

    def truncate_to(self, nbytes: int) -> None:
        if self._tick():
            self._fail_write(lambda: None)
            return
        self.inner.truncate_to(nbytes)

    # -- non-faulting passthroughs ---------------------------------------------------

    def npages(self) -> int:
        return self.inner.npages()

    def size(self) -> int:
        return self.inner.size()

    def size_bytes(self) -> int:
        return self.inner.size_bytes()

    def close(self) -> None:
        # Closing is always allowed: post-crash cleanup must not raise.
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    @property
    def pagesize(self) -> int:
        return self.inner.pagesize

    @property
    def readonly(self) -> bool:
        return self.inner.readonly

    @property
    def path(self):
        return self.inner.path

    @property
    def stats(self):
        return self.inner.stats

    @property
    def on_page_io(self):
        return self.inner.on_page_io

    @on_page_io.setter
    def on_page_io(self, cb) -> None:
        self.inner.on_page_io = cb

    @property
    def on_io(self):
        return self.inner.on_io

    @on_io.setter
    def on_io(self, cb) -> None:
        self.inner.on_io = cb

    def __enter__(self) -> "FaultyPager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else f"ops={self.ops}"
        return (
            f"<FaultyPager mode={self.mode} fail_after={self.fail_after} "
            f"{state} over {self.inner!r}>"
        )
