"""Byte-offset random-access file (for the gdbm baseline).

gdbm's database "is a singular, non-sparse file" holding variable-size
records at arbitrary byte offsets, so it needs byte-granular I/O rather
than the page-granular :class:`~repro.storage.pagedfile.PagedFile`.  Same
I/O accounting contract.
"""

from __future__ import annotations

import os

from repro.storage.iostats import IOStats


class ByteFile:
    """pread/pwrite at byte offsets with I/O accounting."""

    def __init__(
        self,
        path: str | os.PathLike,
        create: bool = False,
        readonly: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.readonly = readonly
        self.stats = IOStats()
        #: optional byte-I/O trace callback ``(kind, offset, nbytes)`` --
        #: the byte-granular twin of the pagers' ``on_page_io``, invoked on
        #: every read/write so gdbm-style baselines are visible to I/O
        #: tracing and ``prof`` like everything else (see repro.obs.hooks)
        self.on_io = None
        if create:
            flags = os.O_RDWR | os.O_CREAT | os.O_TRUNC
        elif readonly:
            flags = os.O_RDONLY
        else:
            flags = os.O_RDWR
        self._fd = os.open(self.path, flags, 0o644)
        self._closed = False
        self.stats.record_syscall()

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """Read exactly ``nbytes`` at ``offset`` (short reads are an error:
        gdbm files are non-sparse, every addressed byte must exist)."""
        self._check_open()
        data = os.pread(self._fd, nbytes, offset)
        self.stats.record_read(len(data))
        cb = self.on_io
        if cb is not None:
            cb("read", offset, len(data))
        if len(data) != nbytes:
            raise EOFError(
                f"short read at offset {offset}: wanted {nbytes}, got {len(data)}"
            )
        return data

    def read_at_most(self, offset: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` at ``offset``; reads past EOF simply
        return fewer bytes (the page-adapter's zero-fill contract)."""
        self._check_open()
        data = os.pread(self._fd, nbytes, offset)
        self.stats.record_read(len(data))
        cb = self.on_io
        if cb is not None:
            cb("read", offset, len(data))
        return data

    def write_at(self, offset: int, data: bytes) -> None:
        self._check_open()
        os.pwrite(self._fd, data, offset)
        self.stats.record_write(len(data))
        cb = self.on_io
        if cb is not None:
            cb("write", offset, len(data))

    def size(self) -> int:
        self._check_open()
        return os.fstat(self._fd).st_size

    def truncate_to(self, nbytes: int) -> None:
        """Shrink or extend the file to exactly ``nbytes`` bytes."""
        self._check_open()
        os.ftruncate(self._fd, nbytes)
        self.stats.record_syscall()

    def sync(self) -> None:
        self._check_open()
        os.fsync(self._fd)
        self.stats.record_syscall()

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed ByteFile")

    def __enter__(self) -> "ByteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
