"""RAM-backed implementation of the paged-file interface.

Used for pure in-memory hash tables (the hsearch-style use case) and for
fast, deterministic tests.  It still counts I/O so that "page transfers"
remain observable even without a disk.
"""

from __future__ import annotations

from repro.storage.freelist import FreeList
from repro.storage.iostats import IOStats


class MemPagedFile:
    """In-memory dict of pages with the same interface as ``PagedFile``."""

    def __init__(self, pagesize: int, create: bool = True, readonly: bool = False) -> None:
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        self.pagesize = pagesize
        self.readonly = readonly
        self.path = None
        self.stats = IOStats()
        #: freed-page accounting (see repro.storage.freelist)
        self.freelist = FreeList()
        #: optional page-I/O trace callback ``(kind, pageno, nbytes)``,
        #: invoked on every read/write when set (see repro.obs.hooks)
        self.on_page_io = None
        self._pages: dict[int, bytes] = {}
        self._closed = False
        self._zero = b"\0" * pagesize

    def read_page(self, pageno: int) -> bytes:
        self._check_open()
        if pageno < 0:
            raise ValueError(f"negative page number {pageno}")
        data = self._pages.get(pageno, self._zero)
        self.stats.record_read(len(data))
        cb = self.on_page_io
        if cb is not None:
            cb("read", pageno, len(data))
        return data

    def write_page(self, pageno: int, data: bytes) -> None:
        self._check_open()
        if self.readonly:
            raise OSError("write to readonly MemPagedFile")
        if pageno < 0:
            raise ValueError(f"negative page number {pageno}")
        if len(data) > self.pagesize:
            raise ValueError(
                f"data of {len(data)} bytes exceeds pagesize {self.pagesize}"
            )
        if len(data) < self.pagesize:
            data = data + b"\0" * (self.pagesize - len(data))
        self._pages[pageno] = bytes(data)
        if self.freelist:
            self.freelist.discard(pageno)  # a written page is live
        self.stats.record_write(len(data))
        cb = self.on_page_io
        if cb is not None:
            cb("write", pageno, len(data))

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        """Vectored write: same single-syscall accounting as the disk
        pager, so cache-policy experiments see the batching too."""
        self._check_open()
        if self.readonly:
            raise OSError("write to readonly MemPagedFile")
        if start_pageno < 0:
            raise ValueError(f"negative page number {start_pageno}")
        if not data or len(data) % self.pagesize:
            raise ValueError(
                f"vectored write of {len(data)} bytes is not a whole number "
                f"of {self.pagesize}-byte pages"
            )
        n = len(data) // self.pagesize
        for i in range(n):
            self._pages[start_pageno + i] = bytes(
                data[i * self.pagesize : (i + 1) * self.pagesize]
            )
            if self.freelist:
                self.freelist.discard(start_pageno + i)
        self.stats.record_vector_write(n, len(data))
        cb = self.on_page_io
        if cb is not None:
            for i in range(n):
                cb("write", start_pageno + i, self.pagesize)

    def free_page(self, pageno: int) -> None:
        """Mark ``pageno`` free for reuse (bookkeeping only, no I/O)."""
        self._check_open()
        if self.readonly:
            raise OSError("free_page on readonly MemPagedFile")
        if pageno >= self.npages():
            raise ValueError(
                f"cannot free page {pageno} past EOF ({self.npages()} pages)"
            )
        self.freelist.add(pageno)

    def alloc_page(self) -> int:
        """Return a usable page number: the lowest free page, else EOF."""
        self._check_open()
        if self.readonly:
            raise OSError("alloc_page on readonly MemPagedFile")
        pageno = self.freelist.pop_lowest()
        return pageno if pageno is not None else self.npages()

    def sync(self) -> None:
        self._check_open()
        self.stats.record_syscall()

    def truncate(self, npages: int) -> None:
        self._check_open()
        self._pages = {n: p for n, p in self._pages.items() if n < npages}
        for pageno in [p for p in self.freelist.pages() if p >= npages]:
            self.freelist.discard(pageno)
        self.stats.record_syscall()

    def npages(self) -> int:
        self._check_open()
        return max(self._pages) + 1 if self._pages else 0

    def size_bytes(self) -> int:
        self._check_open()
        return self.npages() * self.pagesize

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed MemPagedFile")

    def __enter__(self) -> "MemPagedFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<MemPagedFile pagesize={self.pagesize} npages={len(self._pages)} {state}>"
