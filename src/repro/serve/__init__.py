"""repro.serve -- the network serving layer.

An asyncio TCP server speaking a length-prefixed, pipelined binary
protocol (GET/PUT/DELETE/BATCH/STAT/PING with request ids, so responses
may return out of order) over one open table, with a request coalescer
that funnels pipelined ops from every connection into the engine's
``put_many``/``get_many`` batch API, per-connection backpressure, a
graceful drain-checkpoint-close shutdown, and an HTTP/JSON + Prometheus
facade on a second port.  See docs/SERVING.md.

Quickstart::

    import repro
    from repro.serve import Server, ServerConfig, ServerThread, Client

    db = repro.open("data.db", concurrent=True, durability="wal")
    with ServerThread(db, ServerConfig(port=0), owns_db=True) as st:
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
            assert c.get(b"k") == b"v"

Or from the shell: ``python -m repro.serve serve data.db`` and
``python -m repro.serve repl``.
"""

from repro.serve.client import Client, ServerError
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.serve.server import Server, ServerConfig, ServerThread

__all__ = [
    "Server",
    "ServerConfig",
    "ServerThread",
    "Client",
    "ServerError",
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "DEFAULT_MAX_FRAME",
]
