"""The wire protocol of ``repro.serve``: length-prefixed, pipelined frames.

One frame is a fixed 12-byte header followed by ``length`` payload bytes::

    offset  size  field        notes
    0       2     magic        0xC3DB, network order
    2       1     version      protocol version, currently 1
    3       1     opcode       request opcode, or response status
    4       4     request_id   echoed verbatim in the response
    8       4     length       payload bytes that follow

Requests and responses share the framing; a response reuses the
``opcode`` slot for its status code and echoes the request id, so any
number of requests may be in flight on one connection and responses may
come back **out of order** -- the id, not the position, pairs them up.

**Version 2 frames** carry a trace context: when the version byte is 2,
the first 16 payload bytes are ``u64 trace_id, u64 span_id`` (network
order) and ``length`` counts them, so a v2 frame's *logical* payload is
``payload[16:]``.  The context is optional per frame -- a traced client
stamps requests it wants attributed and sends plain v1 frames otherwise,
and servers always answer in v1, so v1-only peers interoperate unchanged
(a v1 server rejects v2 frames with a fatal typed error rather than
misparsing them).  A v2 frame whose length is under 16 is a framing
error: the stream offset can't be trusted, so the connection closes.

Two failure tiers, chosen so a client can always tell them apart:

- **framing-intact errors** (unknown opcode, malformed payload, key
  missing): the server answers with a typed error status and the
  connection stays usable;
- **framing-broken errors** (bad magic, bad version, a declared length
  over the frame limit): the stream position can no longer be trusted,
  so the server sends one final typed error frame and closes.

All multi-byte integers are network order.  Payload encodings:

======== ========================================== =============================
opcode    request payload                            OK response payload
======== ========================================== =============================
PING      opaque bytes (echoed)                      the same bytes
GET       key                                        value (NOT_FOUND: empty)
PUT       u8 flags (bit0 replace) u32 klen key value u8 stored (0/1)
DELETE    key                                        u8 found (NOT_FOUND: 0)
BATCH     u32 count, then per op:                    u32 count, then per op:
          u8 opcode u32 len payload                  u8 status u32 len payload
STAT      empty                                      JSON stat tree (UTF-8)
======== ========================================== =============================
"""

from __future__ import annotations

import struct

__all__ = [
    "MAGIC",
    "VERSION",
    "VERSION_TRACED",
    "TRACE_CTX",
    "WireFrame",
    "HEADER",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME",
    "OP_PING",
    "OP_GET",
    "OP_PUT",
    "OP_DELETE",
    "OP_BATCH",
    "OP_STAT",
    "REQUEST_OPCODES",
    "ST_OK",
    "ST_NOT_FOUND",
    "ST_BAD_REQUEST",
    "ST_TOO_BIG",
    "ST_SERVER_ERROR",
    "ERROR_STATUSES",
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "encode_put",
    "decode_put",
    "encode_batch",
    "decode_batch",
    "encode_batch_results",
    "decode_batch_results",
]

MAGIC = 0xC3DB
VERSION = 1
#: version byte of a frame carrying a 16-byte trace context before its payload
VERSION_TRACED = 2

HEADER = struct.Struct("!HBBII")  # magic, version, opcode/status, request_id, length
HEADER_SIZE = HEADER.size

TRACE_CTX = struct.Struct("!QQ")  # trace_id, span_id
TRACE_CTX_SIZE = TRACE_CTX.size

#: refuse frames whose declared payload exceeds this (server and client)
DEFAULT_MAX_FRAME = 16 * 1024 * 1024

# -- request opcodes -----------------------------------------------------------
OP_PING = 0x01
OP_GET = 0x02
OP_PUT = 0x03
OP_DELETE = 0x04
OP_BATCH = 0x05
OP_STAT = 0x06

REQUEST_OPCODES = frozenset(
    (OP_PING, OP_GET, OP_PUT, OP_DELETE, OP_BATCH, OP_STAT)
)

#: opcodes allowed inside a BATCH frame (no nesting, no control ops)
BATCHABLE_OPCODES = frozenset((OP_GET, OP_PUT, OP_DELETE))

# -- response statuses ---------------------------------------------------------
ST_OK = 0x80
ST_NOT_FOUND = 0x81
ST_BAD_REQUEST = 0xE0  #: framing intact; this one request was malformed
ST_TOO_BIG = 0xE1  #: declared length over the limit; connection closes
ST_SERVER_ERROR = 0xE2  #: the engine raised; the message names the error

ERROR_STATUSES = frozenset((ST_BAD_REQUEST, ST_TOO_BIG, ST_SERVER_ERROR))

_PUT_HDR = struct.Struct("!BI")  # flags, klen
_U32 = struct.Struct("!I")
_SUBOP = struct.Struct("!BI")  # opcode/status, length


class ProtocolError(Exception):
    """A malformed frame or payload.

    ``status`` is the typed response status a server should answer with;
    ``request_id`` is the id to echo (0 when the stream was too mangled
    to recover one); ``fatal`` says whether the byte stream can still be
    trusted after answering (False) or the connection must close (True).
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = ST_BAD_REQUEST,
        request_id: int = 0,
        fatal: bool = False,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.request_id = request_id
        self.fatal = fatal


class WireFrame(tuple):
    """One decoded frame: an ``(opcode, request_id, payload)`` triple.

    Equality, hashing, and unpacking behave exactly like the plain tuple
    (v1 callers never notice the subclass); ``trace`` carries the
    ``(trace_id, span_id)`` of a version-2 frame, or ``None``.
    """

    def __new__(
        cls,
        opcode: int,
        request_id: int,
        payload: bytes,
        trace: tuple[int, int] | None = None,
    ) -> "WireFrame":
        self = super().__new__(cls, (opcode, request_id, payload))
        self.trace = trace
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        base = super().__repr__()
        return f"WireFrame{base}" if self.trace is None else f"WireFrame{base}+{self.trace}"


def encode_frame(
    opcode: int,
    request_id: int,
    payload: bytes = b"",
    trace: tuple[int, int] | None = None,
) -> bytes:
    """One wire frame: header + payload.

    With ``trace=(trace_id, span_id)`` the frame is emitted as version 2
    with the 16-byte context prepended to (and counted in) the payload;
    without it the bytes are identical to every frame this module ever
    produced.
    """
    if trace is None:
        return HEADER.pack(MAGIC, VERSION, opcode, request_id, len(payload)) + payload
    ctx = TRACE_CTX.pack(trace[0] & 0xFFFFFFFFFFFFFFFF, trace[1] & 0xFFFFFFFFFFFFFFFF)
    return (
        HEADER.pack(MAGIC, VERSION_TRACED, opcode, request_id, len(ctx) + len(payload))
        + ctx
        + payload
    )


class FrameDecoder:
    """Incremental frame reassembly: feed arbitrary byte chunks, get
    complete frames out.

    Bytes may arrive split at any boundary (including inside the
    header); the decoder buffers exactly one partial frame.  Violations
    of the framing raise :class:`ProtocolError` with ``fatal=True`` --
    after a bad magic or an oversized length the stream offset is
    meaningless, so callers must stop feeding and drop the connection.
    """

    __slots__ = ("max_frame", "_buf", "_dead")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buf = bytearray()
        self._dead = False

    @property
    def pending(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[WireFrame]:
        """Absorb ``data``; return every complete frame it finished as a
        :class:`WireFrame` ``(opcode, request_id, payload)`` with the
        version-2 trace context (if any) on ``.trace``."""
        if self._dead:
            raise ProtocolError("decoder is dead after a framing error", fatal=True)
        self._buf += data
        frames: list[WireFrame] = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                return frames
            magic, version, opcode, request_id, length = HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                self._dead = True
                raise ProtocolError(
                    f"bad magic 0x{magic:04X} (want 0x{MAGIC:04X})", fatal=True
                )
            if version not in (VERSION, VERSION_TRACED):
                self._dead = True
                raise ProtocolError(
                    f"unsupported protocol version {version}",
                    request_id=request_id,
                    fatal=True,
                )
            if version == VERSION_TRACED and length < TRACE_CTX_SIZE:
                self._dead = True
                raise ProtocolError(
                    f"v2 frame length {length} cannot hold its "
                    f"{TRACE_CTX_SIZE}-byte trace context",
                    request_id=request_id,
                    fatal=True,
                )
            if length > self.max_frame:
                self._dead = True
                raise ProtocolError(
                    f"declared payload of {length} bytes exceeds the "
                    f"{self.max_frame}-byte frame limit",
                    status=ST_TOO_BIG,
                    request_id=request_id,
                    fatal=True,
                )
            if len(self._buf) < HEADER_SIZE + length:
                return frames
            payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
            del self._buf[: HEADER_SIZE + length]
            trace = None
            if version == VERSION_TRACED:
                trace = TRACE_CTX.unpack_from(payload)
                payload = payload[TRACE_CTX_SIZE:]
            frames.append(WireFrame(opcode, request_id, payload, trace))


# -- op payload codecs ---------------------------------------------------------


def _check_key(key: bytes, request_id: int = 0) -> bytes:
    if not key:
        raise ProtocolError("empty key", request_id=request_id)
    return key


def encode_put(key: bytes, value: bytes, replace: bool = True) -> bytes:
    _check_key(key)
    return _PUT_HDR.pack(1 if replace else 0, len(key)) + key + value


def decode_put(payload: bytes, request_id: int = 0) -> tuple[bytes, bytes, bool]:
    """``payload -> (key, value, replace)``."""
    if len(payload) < _PUT_HDR.size:
        raise ProtocolError("PUT payload shorter than its header", request_id=request_id)
    flags, klen = _PUT_HDR.unpack_from(payload)
    if _PUT_HDR.size + klen > len(payload):
        raise ProtocolError(
            f"PUT key length {klen} overruns the {len(payload)}-byte payload",
            request_id=request_id,
        )
    key = payload[_PUT_HDR.size : _PUT_HDR.size + klen]
    _check_key(key, request_id)
    value = payload[_PUT_HDR.size + klen :]
    return key, value, bool(flags & 1)


def encode_batch(ops: list[tuple[int, bytes]]) -> bytes:
    """``[(opcode, payload), ...] -> BATCH frame payload``."""
    parts = [_U32.pack(len(ops))]
    for opcode, payload in ops:
        if opcode not in BATCHABLE_OPCODES:
            raise ProtocolError(f"opcode 0x{opcode:02X} is not batchable")
        parts.append(_SUBOP.pack(opcode, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _decode_subframes(payload: bytes, what: str, request_id: int) -> list[tuple[int, bytes]]:
    if len(payload) < _U32.size:
        raise ProtocolError(f"{what} payload missing its count", request_id=request_id)
    (count,) = _U32.unpack_from(payload)
    out: list[tuple[int, bytes]] = []
    off = _U32.size
    for _ in range(count):
        if off + _SUBOP.size > len(payload):
            raise ProtocolError(f"truncated {what} payload", request_id=request_id)
        code, length = _SUBOP.unpack_from(payload, off)
        off += _SUBOP.size
        if off + length > len(payload):
            raise ProtocolError(
                f"{what} sub-frame overruns the payload", request_id=request_id
            )
        out.append((code, payload[off : off + length]))
        off += length
    if off != len(payload):
        raise ProtocolError(
            f"{len(payload) - off} trailing bytes after the {what} sub-frames",
            request_id=request_id,
        )
    return out


def decode_batch(payload: bytes, request_id: int = 0) -> list[tuple[int, bytes]]:
    """``BATCH payload -> [(opcode, payload), ...]`` (validated)."""
    ops = _decode_subframes(payload, "BATCH", request_id)
    for opcode, _body in ops:
        if opcode not in BATCHABLE_OPCODES:
            raise ProtocolError(
                f"opcode 0x{opcode:02X} is not batchable", request_id=request_id
            )
    return ops


def encode_batch_results(results: list[tuple[int, bytes]]) -> bytes:
    """``[(status, payload), ...] -> BATCH response payload``."""
    parts = [_U32.pack(len(results))]
    for status, payload in results:
        parts.append(_SUBOP.pack(status, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_batch_results(payload: bytes, request_id: int = 0) -> list[tuple[int, bytes]]:
    """``BATCH response payload -> [(status, payload), ...]``."""
    return _decode_subframes(payload, "BATCH result", request_id)
