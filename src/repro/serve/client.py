"""Synchronous client library for the ``repro.serve`` binary protocol.

:class:`Client` wraps one TCP connection.  The simple methods
(``get``/``put``/``delete``/``batch``/``stat``/``ping``) are one round
trip each; the pipelining primitives split that round trip so any number
of requests ride the wire before the first response is read::

    with Client(port=port) as c:
        rids = [c.send("get", key) for key in keys]   # all writes first
        values = [c.result(rid) for rid in rids]      # then all reads

Responses may arrive out of order (the server completes requests as the
engine does); the client files them by request id, so ``result`` can be
called in any order.  Server-side error statuses raise
:class:`ServerError` with the status code and message.

:meth:`Client.enable_tracing` gives the client its own tracer: every
request opens a ``client.<op>`` span closed when its response is
claimed, and requests go out as **version-2 frames** carrying the
client's trace id + the request span's id -- a tracing server adopts
that context, so the client-side span and the server's whole causal tree
share one trace (merge them with
:func:`repro.obs.export.merge_chrome_traces`).  Untraced clients keep
sending byte-identical v1 frames.

``repl()`` is the interactive shell behind
``python -m repro.serve repl``.
"""

from __future__ import annotations

import json
import os
import socket
import sys

from repro.serve import protocol as proto
from repro.serve.protocol import FrameDecoder, ProtocolError

__all__ = ["Client", "ServerError", "repl"]


class ServerError(Exception):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"status 0x{status:02X}: {message}")
        self.status = status
        self.message = message


class Client:
    """One connection to a ``repro.serve`` server.  Not thread-safe:
    give each thread its own Client (connections are cheap; the server
    multiplexes them all into one op stream anyway)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5433,
        *,
        timeout: float | None = 30.0,
        max_frame: int = proto.DEFAULT_MAX_FRAME,
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(max_frame)
        self._next_id = 0
        #: request id -> (status, payload) responses not yet claimed
        self._responses: dict[int, tuple[int, bytes]] = {}
        #: request id -> op descriptor, for decoding the response
        self._sent: dict[int, tuple] = {}
        #: set by enable_tracing(); None keeps the wire pure v1
        self.tracer = None
        self.trace_id: int | None = None
        #: request id -> open client-side span
        self._spans: dict[int, object] = {}

    def enable_tracing(self, *, ring_capacity: int | None = None):
        """Give this client its own tracer and start stamping requests
        with a trace context (v2 frames).  Returns the tracer; its
        recorder holds the ``client.<op>`` spans, exportable alongside a
        server-side dump via ``merge_chrome_traces``.  Idempotent."""
        if self.tracer is not None:
            return self.tracer
        from repro.obs.trace import FlightRecorder, Tracer

        self.tracer = Tracer(
            enabled=True, recorder=FlightRecorder(capacity=ring_capacity)
        )
        # 64-bit random trace id; low bit forced so it is never zero
        self.trace_id = int.from_bytes(os.urandom(8), "big") | 1
        return self.tracer

    # -- pipelining primitives ---------------------------------------------------

    def send(self, op: str, *args, **kwargs) -> int:
        """Write one request; returns its request id (claim the response
        later with :meth:`result`).  Ops: ``ping [payload]``,
        ``get key``, ``put key value [replace=]``, ``delete key``,
        ``batch ops``, ``stat``."""
        self._next_id += 1
        rid = self._next_id
        ctx = None
        if self.tracer is not None:
            # the request span: opened at send, closed when the response
            # is claimed; its id rides the wire so the server's tree
            # hangs off this client-side span
            span = self.tracer.open_span(
                "client." + op, "client",
                {"rid": rid, "trace_id": f"{self.trace_id:016x}"},
            )
            self._spans[rid] = span
            ctx = (self.trace_id, span.id)
        if op == "ping":
            payload = args[0] if args else b""
            frame = proto.encode_frame(proto.OP_PING, rid, payload, ctx)
            self._sent[rid] = ("ping",)
        elif op == "get":
            frame = proto.encode_frame(proto.OP_GET, rid, _b(args[0]), ctx)
            self._sent[rid] = ("get",)
        elif op == "put":
            replace = kwargs.get("replace", True)
            payload = proto.encode_put(_b(args[0]), _b(args[1]), replace)
            frame = proto.encode_frame(proto.OP_PUT, rid, payload, ctx)
            self._sent[rid] = ("put",)
        elif op == "delete":
            frame = proto.encode_frame(proto.OP_DELETE, rid, _b(args[0]), ctx)
            self._sent[rid] = ("delete",)
        elif op == "batch":
            subops, kinds = _encode_batch_ops(args[0])
            frame = proto.encode_frame(
                proto.OP_BATCH, rid, proto.encode_batch(subops), ctx
            )
            self._sent[rid] = ("batch", kinds)
        elif op == "stat":
            frame = proto.encode_frame(proto.OP_STAT, rid, b"", ctx)
            self._sent[rid] = ("stat",)
        else:
            if self.tracer is not None:
                del self._spans[rid]
            raise ValueError(f"unknown op {op!r}")
        self.sock.sendall(frame)
        return rid

    def result(self, rid: int):
        """Block until the response for ``rid`` arrives; decode it."""
        kind = self._sent.pop(rid)
        while rid not in self._responses:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for status, resp_id, payload in self._decoder.feed(data):
                self._responses[resp_id] = (status, payload)
        status, payload = self._responses.pop(rid)
        span = self._spans.pop(rid, None)
        if span is not None:
            self.tracer.close_span(span, {"status": status})
        return _decode_result(kind, status, payload)

    # -- one-round-trip conveniences ---------------------------------------------

    def ping(self, payload: bytes = b"") -> bytes:
        return self.result(self.send("ping", payload))

    def get(self, key) -> bytes | None:
        return self.result(self.send("get", key))

    def put(self, key, value, *, replace: bool = True) -> bool:
        """Store; returns whether the value was stored (False only when
        ``replace=False`` found an existing key)."""
        return self.result(self.send("put", key, value, replace=replace))

    def delete(self, key) -> bool:
        """Remove; returns whether the key existed."""
        return self.result(self.send("delete", key))

    def batch(self, ops) -> list:
        """Run ``[("put", k, v), ("get", k), ("delete", k), ...]`` as one
        frame; returns per-op results in order (sequential semantics:
        later ops see earlier ones' effects)."""
        return self.result(self.send("batch", ops))

    def stat(self) -> dict:
        return self.result(self.send("stat"))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _b(value) -> bytes:
    if isinstance(value, str):
        return value.encode("utf-8")
    return bytes(value)


def _encode_batch_ops(ops) -> tuple[list[tuple[int, bytes]], list[str]]:
    subops: list[tuple[int, bytes]] = []
    kinds: list[str] = []
    for op in ops:
        kind = op[0]
        if kind == "get":
            subops.append((proto.OP_GET, _b(op[1])))
        elif kind == "put":
            replace = op[3] if len(op) > 3 else True
            subops.append((proto.OP_PUT, proto.encode_put(_b(op[1]), _b(op[2]), replace)))
        elif kind == "delete":
            subops.append((proto.OP_DELETE, _b(op[1])))
        else:
            raise ValueError(f"unknown batch op {kind!r}")
        kinds.append(kind)
    return subops, kinds


def _decode_single(kind: str, status: int, payload: bytes):
    if status in proto.ERROR_STATUSES:
        raise ServerError(status, payload.decode("utf-8", "replace"))
    if kind == "get":
        return payload if status == proto.ST_OK else None
    if kind == "put":
        return bool(payload and payload[0])
    if kind == "delete":
        return status == proto.ST_OK
    if kind == "ping":
        return payload
    raise ProtocolError(f"unexpected status 0x{status:02X} for {kind}")


def _decode_result(kind: tuple, status: int, payload: bytes):
    if kind[0] == "batch":
        if status in proto.ERROR_STATUSES:
            raise ServerError(status, payload.decode("utf-8", "replace"))
        results = proto.decode_batch_results(payload)
        if len(results) != len(kind[1]):
            raise ProtocolError(
                f"batch answered {len(results)} results for {len(kind[1])} ops"
            )
        return [
            _decode_single(k, st, body) for k, (st, body) in zip(kind[1], results)
        ]
    if kind[0] == "stat":
        if status in proto.ERROR_STATUSES:
            raise ServerError(status, payload.decode("utf-8", "replace"))
        return json.loads(payload.decode("utf-8"))
    return _decode_single(kind[0], status, payload)


# -- the REPL ------------------------------------------------------------------

_REPL_HELP = """\
commands:
  get KEY              print the value (or (nil))
  put KEY VALUE        store (overwrites)
  add KEY VALUE        store only if absent (replace=False)
  del KEY              delete
  ping [TEXT]          round trip
  stat                 server + db metric tree (JSON)
  help                 this text
  quit                 exit
"""


def repl(host: str, port: int, *, stdin=None, stdout=None) -> int:
    """Line-oriented interactive client (keys/values as UTF-8 text)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    interactive = hasattr(stdin, "isatty") and stdin.isatty()

    def say(text: str) -> None:
        stdout.write(text + "\n")
        stdout.flush()

    try:
        client = Client(host, port)
    except OSError as exc:
        say(f"connect failed: {exc}")
        return 1
    say(f"connected to {host}:{port} (help for commands)")
    with client:
        while True:
            if interactive:
                stdout.write("repro> ")
                stdout.flush()
            line = stdin.readline()
            if not line:
                break
            words = line.split()
            if not words:
                continue
            cmd, args = words[0].lower(), words[1:]
            try:
                if cmd in ("quit", "exit"):
                    break
                elif cmd == "help":
                    say(_REPL_HELP.rstrip())
                elif cmd == "get" and len(args) == 1:
                    value = client.get(args[0])
                    say("(nil)" if value is None else value.decode("utf-8", "replace"))
                elif cmd == "put" and len(args) >= 2:
                    client.put(args[0], " ".join(args[1:]))
                    say("OK")
                elif cmd == "add" and len(args) >= 2:
                    stored = client.put(args[0], " ".join(args[1:]), replace=False)
                    say("OK" if stored else "EXISTS")
                elif cmd == "del" and len(args) == 1:
                    say("OK" if client.delete(args[0]) else "(nil)")
                elif cmd == "ping":
                    say(client.ping(" ".join(args).encode()).decode("utf-8", "replace") or "PONG")
                elif cmd == "stat":
                    say(json.dumps(client.stat(), indent=1, default=repr))
                else:
                    say(f"bad command (try help): {line.strip()}")
            except (ServerError, ProtocolError) as exc:
                say(f"error: {exc}")
            except ConnectionError as exc:
                say(f"connection lost: {exc}")
                return 1
    say("bye")
    return 0
