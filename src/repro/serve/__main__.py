"""CLI entry point: ``python -m repro.serve {serve,repl} ...``.

``serve`` opens (or creates) a database and serves it::

    python -m repro.serve serve data.db --port 5433 --http-port 9090 \\
        --durability wal --nelem 100000

On startup it prints one machine-parseable line to stdout --
``LISTENING port=<kv> http=<http|-> path=<db>`` -- which subprocess
harnesses use as the readiness signal.  SIGINT/SIGTERM trigger the
graceful shutdown (drain, checkpoint, close).

``repl`` connects the interactive client::

    python -m repro.serve repl --port 5433
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.serve.client import repl
from repro.serve.server import Server, ServerConfig


def _build_db(args):
    from repro.access.db import db_open

    params: dict = {"concurrent": not args.no_concurrent}
    if args.durability != "none":
        params["durability"] = args.durability
    if args.bsize:
        params["bsize"] = args.bsize
    if args.nelem:
        params["nelem"] = args.nelem
    path = None if args.path == ":memory:" else args.path
    return db_open(path, args.type, args.flag, **params)


async def _amain(server: Server, db_path: str) -> int:
    await server.start()
    http = server.http_port if server.http_port is not None else "-"
    print(f"LISTENING port={server.port} http={http} path={db_path}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    await stop.wait()
    print("shutting down (drain, checkpoint, close)", file=sys.stderr, flush=True)
    await server.stop()
    return 0


def _cmd_serve(args) -> int:
    db = _build_db(args)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        max_inflight=args.max_inflight,
        max_batch=args.max_batch,
        slow_ms=args.slow_ms,
        slow_capacity=args.slow_capacity,
        timeseries_interval=args.timeseries_interval,
        timeseries_retention=args.timeseries_retention,
    )
    if args.trace:
        db.enable_tracing(ring_capacity=args.trace_ring or None)
    server = Server(db, config, owns_db=True)
    try:
        return asyncio.run(_amain(server, args.path))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


def _cmd_repl(args) -> int:
    return repl(args.host, args.port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve", description="network serving layer for repro databases"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="serve a database over TCP (+ optional HTTP facade)")
    p.add_argument("path", help="database file (':memory:' for an in-memory table)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=5433, help="KV port (0 = ephemeral)")
    p.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="HTTP/Prometheus facade port (0 = ephemeral; omit to disable)",
    )
    p.add_argument(
        "--type", choices=("hash", "btree", "recno"), default="hash",
        help="access method when creating (default hash)",
    )
    p.add_argument(
        "--flag", choices=("r", "w", "c", "n"), default="c",
        help="open flag, dbm-style (default c: create if missing)",
    )
    p.add_argument(
        "--durability", choices=("none", "wal", "wal+fsync"), default="none",
        help="write-ahead logging; acked writes are committed before the ack",
    )
    p.add_argument(
        "--no-concurrent", action="store_true",
        help="open the table without thread-safety (single-threaded engines)",
    )
    p.add_argument("--bsize", type=int, default=0, help="bucket/page size when creating")
    p.add_argument("--nelem", type=int, default=0, help="presize hint when creating")
    p.add_argument("--max-inflight", type=int, default=128,
                   help="per-connection inflight request window")
    p.add_argument("--max-batch", type=int, default=512,
                   help="largest coalesced engine batch")
    p.add_argument("--trace", action="store_true",
                   help="enable span tracing (serves /trace on the HTTP facade)")
    p.add_argument("--trace-ring", type=int, default=0,
                   help="flight-recorder ring capacity (0 = unbounded)")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="capture requests slower than this to /debug/slow")
    p.add_argument("--slow-capacity", type=int, default=64,
                   help="slow-op capture ring size (default 64)")
    p.add_argument("--timeseries-interval", type=float, default=1.0,
                   help="metric-delta sampling interval for /debug/timeseries "
                        "(seconds; 0 disables; needs the HTTP facade)")
    p.add_argument("--timeseries-retention", type=int, default=120,
                   help="samples kept in the /debug/timeseries ring")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("repl", help="interactive client shell")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=5433)
    p.set_defaults(fn=_cmd_repl)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
