"""The request coalescer: pipelined ops from every connection funnel
into the engine's batch API.

Each decoded operation becomes part of one :class:`_Run` on a single
FIFO queue, in network-arrival order; the dispatcher task drains the
queue, cuts a batch at the first *incompatible* run (different kind, or
a different ``replace`` flag), and executes the whole thing in a worker
thread through ``put_many``/``get_many`` -- one lock acquisition, one
page-pin cycle and one trace span per batch instead of per op.

Single ops (``submit``) are runs of one.  A BATCH frame's consecutive
same-kind sub-ops arrive as one multi-op run (``submit_run``): one
future and one queue entry for the whole stretch, which is what makes
the pipelined-BATCH path cheap -- the per-op cost is a list append, not
an ``asyncio.Future``.

Correctness comes from two invariants:

- **arrival order is execution order**: batches are cut, never
  reordered, so the engine sees the exact global sequence the network
  delivered and per-key outcomes stay linearizable;
- **acks follow durability**: on a table opened with
  ``durability='wal'``/``'wal+fsync'`` every mutating batch runs inside
  an explicit transaction, and the op futures resolve only after
  ``commit()`` returned -- an acknowledged write has reached the log
  before the client hears about it.

The dispatcher is strictly one-batch-at-a-time, which is what makes the
transaction wrapping safe (transactions are thread-affine and the whole
batch runs in a single ``asyncio.to_thread`` call).
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["Batcher"]

#: queue sentinel that tells the dispatcher to exit
_STOP = object()


class _Run:
    """A stretch of same-kind ops sharing one future.

    ``single`` runs resolve to their only op's result; multi-op runs
    resolve to the list of per-op results, in order.
    """

    __slots__ = ("kind", "keys", "values", "replace", "future", "single",
                 "span_id", "t_submit")

    def __init__(self, kind, keys, values, replace, future, single,
                 span_id=None, t_submit=0.0):
        self.kind = kind
        self.keys = keys
        self.values = values
        self.replace = replace
        self.future = future
        self.single = single
        #: request span id when the submitting request is traced -- the
        #: causal hook the coalescer hangs queue_wait/batch_exec spans on
        self.span_id = span_id
        self.t_submit = t_submit


class Batcher:
    """Funnel ops from all connections into the engine's batch API.

    ``submit``/``submit_run`` are called from the event-loop thread and
    return a future resolving to the op's result (or the run's result
    list): the value (or None) for ``get``, ``True``/``False`` stored
    for ``put``, ``True``/``False`` found for ``delete``.  ``obs`` is an
    optional :class:`~repro.obs.registry.Registry` node for coalescing
    metrics.
    """

    def __init__(self, db, *, max_batch: int = 512, obs=None) -> None:
        self.db = db
        self.max_batch = max_batch
        self.queue: asyncio.Queue = asyncio.Queue()
        self._held = None
        self._task: asyncio.Task | None = None
        self._closing = False
        #: explicit transactions wrap write batches only when the table has a WAL
        self.transactional = getattr(db, "durability", "none") in ("wal", "wal+fsync")
        if obs is not None:
            self._c_batches = obs.counter("batches")
            self._c_ops = obs.counter("ops")
            self._h_size = obs.histogram("batch_size", unit="ops")
        else:
            from repro.obs.registry import NULL_COUNTER, NULL_HISTOGRAM

            self._c_batches = self._c_ops = NULL_COUNTER
            self._h_size = NULL_HISTOGRAM
        if obs is not None:
            # live pressure: ops waiting in the queue right now (runs
            # count their ops), plus the held-back incompatible run
            obs.gauge("queue_depth").set_function(self._depth)

    def _depth(self) -> int:
        return self.queue.qsize() + (1 if self._held is not None else 0)

    # -- event-loop side ---------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain every already-submitted op, then stop the dispatcher."""
        if self._task is None:
            return
        self._closing = True
        self.queue.put_nowait(_STOP)
        await self._task
        self._task = None

    def submit(self, kind: str, key=None, value=None, replace: bool = True,
               span_id: int | None = None):
        """Enqueue one op; returns a future for its result.  Calls must
        come from the event-loop thread (ops are ordered by this call).
        ``span_id`` parents this op's coalescer spans when traced."""
        if self._closing:
            raise RuntimeError("server is shutting down")
        fut = asyncio.get_running_loop().create_future()
        t_sub = time.perf_counter() if span_id is not None else 0.0
        self.queue.put_nowait(
            _Run(kind, (key,), (value,), replace, fut, True, span_id, t_sub)
        )
        return fut

    def submit_run(self, kind: str, keys, values=None, replace: bool = True,
                   span_id: int | None = None):
        """Enqueue a stretch of same-kind ops as ONE queue entry; returns
        a future resolving to the list of per-op results.  ``values`` is
        the parallel list for puts (ignored for get/delete)."""
        if self._closing:
            raise RuntimeError("server is shutting down")
        fut = asyncio.get_running_loop().create_future()
        if values is None:
            values = (None,) * len(keys)
        t_sub = time.perf_counter() if span_id is not None else 0.0
        self.queue.put_nowait(
            _Run(kind, keys, values, replace, fut, False, span_id, t_sub)
        )
        return fut

    # -- the dispatcher ----------------------------------------------------------

    @staticmethod
    def _compatible(a: _Run, b: _Run) -> bool:
        return a.kind == b.kind and (a.kind != "put" or a.replace == b.replace)

    async def _run(self) -> None:
        while True:
            run = self._held
            self._held = None
            if run is None:
                run = await self.queue.get()
            if run is _STOP:
                return
            batch = [run]
            total = len(run.keys)
            while total < self.max_batch:
                try:
                    nxt = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP or not self._compatible(run, nxt):
                    self._held = nxt
                    break
                batch.append(nxt)
                total += len(nxt.keys)
            self._c_batches.inc()
            self._c_ops.inc(total)
            self._h_size.observe(total)
            if len(batch) == 1:
                keys, values = run.keys, run.values
            else:
                keys = [k for r in batch for k in r.keys]
                values = [v for r in batch for v in r.values]
            # One engine batch may serve N traced requests: per-request
            # queue_wait spans close here, one coalesce.exec span linked
            # to every member covers the engine work, and per-request
            # batch_exec spans attribute that shared interval back to
            # each request after it finishes.
            tracer = getattr(self.db, "tracer", None)
            bspan = None
            members = ()
            if tracer is not None and tracer.enabled:
                members = [r for r in batch if r.span_id is not None]
            if members:
                now = time.perf_counter()
                for r in members:
                    tracer.complete(
                        "queue_wait", r.t_submit, now - r.t_submit, "serve",
                        {"ops": len(r.keys)}, parent_id=r.span_id,
                    )
                bspan = tracer.open_span(
                    "coalesce.exec", "serve",
                    {"kind": run.kind, "runs": len(batch), "ops": total},
                    links=[r.span_id for r in members],
                )
            t_exec = time.perf_counter() if bspan is not None else 0.0
            try:
                results = await asyncio.to_thread(
                    self._execute, run.kind, keys, values, run.replace, bspan
                )
            except BaseException as exc:  # noqa: BLE001 - relayed per run
                if bspan is not None:
                    tracer.close_span(bspan, {"error": type(exc).__name__})
                for r in batch:
                    if not r.future.done():
                        r.future.set_exception(exc)
            else:
                if bspan is not None:
                    t_done = time.perf_counter()
                    tracer.close_span(bspan)
                    for r in members:
                        tracer.complete(
                            "batch_exec", t_exec, t_done - t_exec, "serve",
                            {"ops": len(r.keys)}, parent_id=r.span_id,
                        )
                off = 0
                for r in batch:
                    n = len(r.keys)
                    if not r.future.done():
                        r.future.set_result(
                            results[off] if r.single else results[off : off + n]
                        )
                    off += n

    # -- worker-thread side ------------------------------------------------------

    def _execute(self, kind: str, keys, values, replace: bool, bspan=None) -> list:
        if bspan is not None:
            # runs on the worker thread: lend the coalescer's span to this
            # thread so engine spans (put_many, lock_wait, wal_fsync...)
            # nest under it
            with self.db.tracer.attach(bspan):
                return self._execute_ops(kind, keys, values, replace)
        return self._execute_ops(kind, keys, values, replace)

    def _execute_ops(self, kind: str, keys, values, replace: bool) -> list:
        db = self.db
        if kind == "get":
            return db.get_many(keys)
        if kind == "put":
            if self.transactional:
                with db.transaction():
                    return self._do_puts(keys, values, replace)
            return self._do_puts(keys, values, replace)
        if kind == "delete":
            if self.transactional:
                with db.transaction():
                    return [db.delete(k) == 0 for k in keys]
            return [db.delete(k) == 0 for k in keys]
        raise ValueError(f"unknown op kind {kind!r}")

    def _do_puts(self, keys, values, replace: bool) -> list:
        db = self.db
        if replace:
            db.put_many(list(zip(keys, values)))
            return [True] * len(keys)
        # replace=False needs the per-key existed/stored verdict, which the
        # aggregate count from put_many cannot give back
        return [db.put(k, v, replace=False) == 0 for k, v in zip(keys, values)]
