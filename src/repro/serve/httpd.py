"""The HTTP/JSON + Prometheus facade of :class:`repro.serve.server.Server`.

A deliberately tiny HTTP/1.0-style handler (one request per connection,
``Connection: close``) so the server needs no web framework to be
scrape-able and curl-able:

========  =================  ==============================================
method    path               behavior
========  =================  ==============================================
GET       /metrics           Prometheus text exposition of ``server.stat()``
GET       /stat              the same tree as JSON
GET       /healthz           ``ok`` (liveness)
GET       /trace             flight-recorder NDJSON (404 unless tracing on)
GET       /debug/slow        slow-request captures, JSON (404 unless --slow-ms)
GET       /debug/timeseries  metric-delta ring, JSON (404 unless sampling on)
GET       /kv/<key>          value bytes, 404 when absent
PUT       /kv/<key>          body is the value; 204 on store
DELETE    /kv/<key>          204 on delete, 404 when absent
========  =================  ==============================================

Keys are percent-decoded to raw bytes, so any key the engine accepts is
addressable.  The KV routes go through the server's batcher -- the HTTP
facade and the binary protocol share one op stream, one set of metrics
and the same durability (ack-after-commit) contract.
"""

from __future__ import annotations

import json
from urllib.parse import unquote_to_bytes

from repro.obs.export import to_ndjson, to_prometheus

__all__ = ["handle_http"]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_BYTES = 32768

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


async def _respond(
    writer, status: int, body: bytes = b"", content_type: str = "text/plain; charset=utf-8"
) -> None:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def handle_http(server, reader, writer) -> None:
    try:
        try:
            status, body, ctype = await _handle(server, reader)
        except Exception as exc:  # noqa: BLE001 - typed to the client
            status = 500
            body = f"{type(exc).__name__}: {exc}".encode()
            ctype = "text/plain; charset=utf-8"
        await _respond(writer, status, body, ctype)
    except (ConnectionError, OSError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _handle(server, reader) -> tuple[int, bytes, str]:
    text = "text/plain; charset=utf-8"
    line = await reader.readline()
    if not line or len(line) > _MAX_REQUEST_LINE:
        return 400, b"bad request line", text
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3:
        return 400, b"bad request line", text
    method, target, _version = parts
    content_length = 0
    seen = 0
    while True:
        header = await reader.readline()
        seen += len(header)
        if seen > _MAX_HEADER_BYTES:
            return 400, b"headers too large", text
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1", "replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return 400, b"bad content-length", text
    if content_length > server.config.max_frame:
        return 413, b"body exceeds the frame limit", text
    body = await reader.readexactly(content_length) if content_length else b""

    path = target.split("?", 1)[0]
    if path == "/healthz":
        if method != "GET":
            return 405, b"method not allowed", text
        return 200, b"ok\n", text
    if path == "/metrics":
        if method != "GET":
            return 405, b"method not allowed", text
        stat = await _stat(server)
        return 200, to_prometheus(stat).encode(), "text/plain; version=0.0.4; charset=utf-8"
    if path == "/stat":
        if method != "GET":
            return 405, b"method not allowed", text
        stat = await _stat(server)
        return 200, json.dumps(stat, default=repr).encode(), "application/json"
    if path == "/trace":
        if method != "GET":
            return 405, b"method not allowed", text
        tracer = getattr(server.db, "tracer", None)
        if tracer is None or not tracer.enabled:
            return 404, b"tracing is not enabled on the served table\n", text
        return 200, to_ndjson(tracer.recorder.events()).encode(), "application/x-ndjson"
    if path == "/debug/slow":
        if method != "GET":
            return 405, b"method not allowed", text
        slowlog = server.slowlog
        if slowlog is None:
            return 404, b"slow-op capture is not enabled (start with --slow-ms)\n", text
        return (
            200,
            json.dumps(slowlog.as_dict(), default=repr).encode(),
            "application/json",
        )
    if path == "/debug/timeseries":
        if method != "GET":
            return 405, b"method not allowed", text
        ts = server.timeseries
        if ts is None:
            return 404, b"time-series sampling is not enabled\n", text
        return 200, json.dumps(ts.as_dict()).encode(), "application/json"
    if path.startswith("/kv/"):
        key = unquote_to_bytes(path[len("/kv/") :])
        if not key:
            return 400, b"empty key", text
        if method == "GET":
            value = await server.batcher.submit("get", key)
            if value is None:
                return 404, b"not found\n", text
            return 200, value, "application/octet-stream"
        if method == "PUT":
            await server.batcher.submit("put", key, body, True)
            return 204, b"", text
        if method == "DELETE":
            found = await server.batcher.submit("delete", key)
            if not found:
                return 404, b"not found\n", text
            return 204, b"", text
        return 405, b"method not allowed", text
    return 404, b"not found\n", text


async def _stat(server) -> dict:
    import asyncio

    return await asyncio.to_thread(server.stat)
