"""The asyncio key-value server: pipelined binary protocol over one table.

One :class:`Server` owns a database handle (any access method; open it
with ``concurrent=True`` so worker threads may share it), a
:class:`~repro.serve.batching.Batcher` that coalesces pipelined ops from
every connection into the engine's batch API, a TCP listener speaking
the :mod:`repro.serve.protocol` framing, and an optional HTTP/JSON +
Prometheus facade on a second port (:mod:`repro.serve.httpd`).

Flow control is per connection and two-layered:

- a **bounded inflight window** (``max_inflight``): the read loop stops
  pulling bytes off the socket while that many requests are being
  served, so one firehose client cannot queue unbounded work;
- **write draining**: every response write awaits ``drain()``, so a
  client that stops reading stalls its own responses (and, once the
  window fills, its own requests) instead of growing the server's
  buffers.

Graceful shutdown (``stop()``) stops accepting, waits for open
connections to drain (bounded by ``drain_timeout``, then force-closes),
retires the batcher, checkpoints/syncs the table and -- when the server
owns the handle -- closes it.

Request latency is recorded twice: into ``server.latency.<op>``
millisecond histograms (exported by ``/metrics``), and -- whenever the
table's tracer is enabled -- as ``serve.<op>`` spans with a ``time_ms``
payload in the shared flight recorder, so ``repro.tools top`` ranks
server ops alongside engine ops (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass

from repro.obs.registry import Registry
from repro.serve import protocol as proto
from repro.serve.batching import Batcher
from repro.serve.protocol import FrameDecoder, ProtocolError

__all__ = ["ServerConfig", "Server", "ServerThread"]

#: opcode -> short span/metric name
OP_NAMES = {
    proto.OP_PING: "ping",
    proto.OP_GET: "get",
    proto.OP_PUT: "put",
    proto.OP_DELETE: "delete",
    proto.OP_BATCH: "batch",
    proto.OP_STAT: "stat",
}


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (read it back from ``server.port``)
    port: int = 0
    #: None disables the HTTP facade; 0 picks an ephemeral port
    http_port: int | None = None
    max_frame: int = proto.DEFAULT_MAX_FRAME
    #: per-connection bounded inflight window (backpressure)
    max_inflight: int = 128
    #: largest run the coalescer hands to put_many/get_many at once
    max_batch: int = 512
    #: seconds stop() waits for connections to drain before force-closing
    drain_timeout: float = 5.0
    #: capture requests slower than this many ms into the slow log
    #: (``/debug/slow``, ``repro.tools slow``); None disables capture
    slow_ms: float | None = None
    #: slow-log ring size (oldest captures fall out first)
    slow_capacity: int = 64
    #: sampling interval (seconds) for the ``/debug/timeseries`` ring;
    #: the sampler only runs while the HTTP facade is up, and <= 0
    #: disables it entirely
    timeseries_interval: float = 1.0
    #: samples kept in the time-series ring
    timeseries_retention: int = 120


class _Conn:
    """Per-connection state: decoder, inflight window, write lock."""

    __slots__ = ("reader", "writer", "decoder", "inflight", "wlock", "tasks")

    def __init__(self, reader, writer, config: ServerConfig) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(config.max_frame)
        self.inflight = asyncio.Semaphore(config.max_inflight)
        self.wlock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()


class Server:
    """The serving layer over one open database handle.

    ``owns_db=True`` makes :meth:`stop` close the handle after the final
    checkpoint; otherwise the caller keeps ownership.
    """

    def __init__(self, db, config: ServerConfig | None = None, *, owns_db: bool = False) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.owns_db = owns_db
        self.registry = Registry("server").make_threadsafe()
        self._lat = self.registry.child("latency")
        self._ops = self.registry.child("ops")
        self._errors = self.registry.counter("errors")
        self._conn_total = self.registry.counter("connections_total")
        self.batcher = Batcher(
            db, max_batch=self.config.max_batch, obs=self.registry.child("batch")
        )
        self._conns: set[_Conn] = set()
        self._server: asyncio.base_events.Server | None = None
        self._http: asyncio.base_events.Server | None = None
        self._closing = False
        self._drained = asyncio.Event()
        self.port: int | None = None
        self.http_port: int | None = None
        #: requests inside the inflight window right now, across all conns
        self._inflight = 0
        self.registry.gauge("connections_active").set_function(lambda: len(self._conns))
        self.registry.gauge("inflight").set_function(lambda: self._inflight)
        self.slowlog = None
        if self.config.slow_ms is not None:
            from repro.obs.slowlog import SlowLog

            self.slowlog = SlowLog(
                self.config.slow_ms, self.config.slow_capacity
            ).make_threadsafe()
        #: built in start() when the HTTP facade (its only consumer) is up
        self.timeseries = None
        self._ts_task: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        self.batcher.start()
        self._server = await asyncio.start_server(self._on_conn, cfg.host, cfg.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if cfg.http_port is not None:
            from repro.serve.httpd import handle_http

            async def on_http(reader, writer):
                await handle_http(self, reader, writer)

            self._http = await asyncio.start_server(on_http, cfg.host, cfg.http_port)
            self.http_port = self._http.sockets[0].getsockname()[1]
            if cfg.timeseries_interval > 0:
                from repro.obs.timeseries import TimeSeries

                self.timeseries = TimeSeries(
                    self.stat,
                    interval=cfg.timeseries_interval,
                    retention=cfg.timeseries_retention,
                )
                self.timeseries.sample()  # baseline: primes the deltas
                self._ts_task = asyncio.get_running_loop().create_task(
                    self._sample_timeseries()
                )

    async def _sample_timeseries(self) -> None:
        """Periodic sampler behind ``/debug/timeseries``: one ``stat()``
        per interval, taken on a worker thread."""
        while True:
            await asyncio.sleep(self.timeseries.interval)
            stat = await asyncio.to_thread(self.stat)
            self.timeseries.sample(stat)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, checkpoint, close."""
        if self._closing:
            return
        self._closing = True
        if self._ts_task is not None:
            self._ts_task.cancel()
            try:
                await self._ts_task
            except asyncio.CancelledError:
                pass
            self._ts_task = None
        for listener in (self._server, self._http):
            if listener is not None:
                listener.close()
        if self._server is not None:
            await self._server.wait_closed()
        if self._http is not None:
            await self._http.wait_closed()
        # Drain: connections finish naturally as clients disconnect; after
        # the timeout, force-close whatever is left.
        if self._conns:
            self._drained.clear()
            try:
                await asyncio.wait_for(
                    self._drained.wait(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                for conn in list(self._conns):
                    conn.writer.close()
                while self._conns:
                    await asyncio.sleep(0)
        await self.batcher.stop()
        await asyncio.to_thread(self._final_sync)

    def _final_sync(self) -> None:
        db = self.db
        try:
            if getattr(db, "durability", "none") in ("wal", "wal+fsync"):
                db.checkpoint()
            else:
                db.sync()
        finally:
            if self.owns_db:
                db.close()

    # -- observability -----------------------------------------------------------

    def stat(self) -> dict:
        """The combined metric tree: ``server`` (this layer) + ``db``."""
        return {"server": self.registry.as_dict(), "db": self.db.stat()}

    def _observe(self, name: str, t0: float, status: int, span=None) -> None:
        dur = time.perf_counter() - t0
        self._lat.histogram(name, unit="ms").observe(dur * 1e3)
        self._ops.counter(name).inc()
        if status in proto.ERROR_STATUSES:
            self._errors.inc()
        tracer = getattr(self.db, "tracer", None)
        traced = tracer is not None and tracer.enabled
        if traced:
            if span is not None:
                # close the request's root span (opened before dispatch so
                # the coalescer could parent its queue_wait/batch_exec
                # spans on it); time_ms mirrors the recorded dur exactly
                span.t1 = tracer.now()
                span.attrs["time_ms"] = round((span.t1 - span.t0) * 1e3, 3)
                span.attrs["status"] = status
                tracer._record_span(span)
            else:
                # tracing flipped on mid-request: fall back to the
                # pre-measured span so the op still shows up
                tracer.complete(
                    "serve." + name,
                    t0,
                    dur,
                    "serve",
                    {"time_ms": round(dur * 1e3, 3), "status": status},
                )
        slowlog = self.slowlog
        if slowlog is not None:
            if traced and span is not None:
                slowlog.observe(
                    "serve." + name,
                    dur * 1e3,
                    status=status,
                    root_span_id=span.id,
                    recorder=tracer.recorder,
                )
            else:
                slowlog.observe("serve." + name, dur * 1e3, status=status)

    # -- the KV listener ---------------------------------------------------------

    async def _on_conn(self, reader, writer) -> None:
        conn = _Conn(reader, writer, self.config)
        self._conns.add(conn)
        self._conn_total.inc()
        try:
            await self._read_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            self._conns.discard(conn)
            if not self._conns:
                self._drained.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(self, conn: _Conn) -> None:
        while True:
            data = await conn.reader.read(65536)
            if not data:
                return
            try:
                frames = conn.decoder.feed(data)
            except ProtocolError as exc:
                # framing broken: answer once, typed, then disconnect
                await self._send(
                    conn, exc.status, exc.request_id, str(exc).encode()
                )
                self._errors.inc()
                return
            for frame in frames:
                opcode, request_id, payload = frame
                await conn.inflight.acquire()  # bounded inflight window
                self._inflight += 1
                task = asyncio.get_running_loop().create_task(
                    self._serve_request(
                        conn, opcode, request_id, payload, frame.trace
                    )
                )
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)

    async def _send(self, conn: _Conn, status: int, request_id: int, payload: bytes) -> None:
        frame = proto.encode_frame(status, request_id, payload)
        try:
            async with conn.wlock:
                conn.writer.write(frame)
                await conn.writer.drain()  # write-drain backpressure
        except (ConnectionError, OSError):
            pass  # client went away; its futures are already resolved

    async def _serve_request(
        self,
        conn: _Conn,
        opcode: int,
        request_id: int,
        payload: bytes,
        trace: tuple[int, int] | None = None,
    ) -> None:
        t0 = time.perf_counter()
        name = OP_NAMES.get(opcode, "unknown")
        status = proto.ST_SERVER_ERROR
        tracer = getattr(self.db, "tracer", None)
        span = None
        if tracer is not None and tracer.enabled:
            # open (don't stack) the request's root span now so its id can
            # parent the coalescer's spans; a v2 frame's wire context makes
            # this server span a continuation of the client's trace
            attrs: dict = {"rid": request_id}
            if trace is not None:
                attrs["trace_id"] = f"{trace[0]:016x}"
                attrs["remote_span"] = trace[1]
            span = tracer.open_span("serve." + name, "serve", attrs)
        try:
            try:
                status, body = await self._dispatch(opcode, request_id, payload, span)
            except ProtocolError as exc:
                status, body = exc.status, str(exc).encode()
            except Exception as exc:  # noqa: BLE001 - typed to the client
                body = f"{type(exc).__name__}: {exc}".encode()
            await self._send(conn, status, request_id, body)
        finally:
            conn.inflight.release()
            self._inflight -= 1
            self._observe(name, t0, status, span)

    async def _dispatch(
        self, opcode: int, request_id: int, payload: bytes, span=None
    ) -> tuple[int, bytes]:
        sid = span.id if span is not None else None
        if opcode == proto.OP_PING:
            return proto.ST_OK, payload
        if opcode == proto.OP_GET:
            if not payload:
                raise ProtocolError("empty key", request_id=request_id)
            value = await self.batcher.submit("get", payload, span_id=sid)
            if value is None:
                return proto.ST_NOT_FOUND, b""
            return proto.ST_OK, value
        if opcode == proto.OP_PUT:
            key, value, replace = proto.decode_put(payload, request_id)
            stored = await self.batcher.submit(
                "put", key, value, replace, span_id=sid
            )
            return proto.ST_OK, b"\x01" if stored else b"\x00"
        if opcode == proto.OP_DELETE:
            if not payload:
                raise ProtocolError("empty key", request_id=request_id)
            found = await self.batcher.submit("delete", payload, span_id=sid)
            if found:
                return proto.ST_OK, b"\x01"
            return proto.ST_NOT_FOUND, b"\x00"
        if opcode == proto.OP_BATCH:
            return await self._dispatch_batch(payload, request_id, span)
        if opcode == proto.OP_STAT:
            stat = await asyncio.to_thread(self.stat)
            return proto.ST_OK, json.dumps(stat, default=repr).encode()
        raise ProtocolError(
            f"unknown opcode 0x{opcode:02X}", request_id=request_id
        )

    async def _dispatch_batch(
        self, payload: bytes, request_id: int, span=None
    ) -> tuple[int, bytes]:
        # Decode the WHOLE frame before submitting anything: a malformed
        # sub-op rejects the frame without half its ops already queued.
        decoded: list[tuple[str, bytes, bytes | None, bool]] = []
        for opcode, body in proto.decode_batch(payload, request_id):
            if opcode == proto.OP_PUT:
                key, value, replace = proto.decode_put(body, request_id)
                decoded.append(("put", key, value, replace))
            else:  # OP_GET / OP_DELETE (decode_batch validated the opcode set)
                if not body:
                    raise ProtocolError("empty key in BATCH", request_id=request_id)
                kind = "get" if opcode == proto.OP_GET else "delete"
                decoded.append((kind, body, None, True))
        # Group consecutive same-kind (same-replace for puts) sub-ops into
        # runs: one future per run, submitted in one synchronous burst so
        # the coalescer sees them contiguously and in order (sequential
        # semantics within the batch: a GET after a PUT of the same key
        # sees the new value).
        # The whole BATCH frame carries ONE trace context (the request
        # span); each run gets its own child span so sub-op stretches are
        # distinguishable in the trace, and the run span's id -- not the
        # frame's -- parents that run's queue_wait/batch_exec spans.
        tracer = getattr(self.db, "tracer", None) if span is not None else None
        if tracer is not None and not tracer.enabled:
            tracer = None
        runs: list[tuple[str, int, "asyncio.Future", object]] = []
        i = 0
        while i < len(decoded):
            kind, _, _, replace = decoded[i]
            j = i + 1
            while (
                j < len(decoded)
                and decoded[j][0] == kind
                and (kind != "put" or decoded[j][3] == replace)
            ):
                j += 1
            run_span = None
            if tracer is not None:
                run_span = tracer.open_span(
                    f"batch.run.{kind}", "serve", {"ops": j - i},
                    parent_id=span.id,
                )
            fut = self.batcher.submit_run(
                kind,
                [d[1] for d in decoded[i:j]],
                [d[2] for d in decoded[i:j]],
                replace,
                span_id=run_span.id if run_span is not None else None,
            )
            runs.append((kind, j - i, fut, run_span))
            i = j
        results: list[tuple[int, bytes]] = []
        for kind, count, fut, run_span in runs:
            try:
                values = await fut
            except Exception as exc:  # noqa: BLE001 - typed per sub-op
                if run_span is not None:
                    tracer.close_span(run_span, {"error": type(exc).__name__})
                err = (proto.ST_SERVER_ERROR, f"{type(exc).__name__}: {exc}".encode())
                results.extend([err] * count)
                continue
            if run_span is not None:
                tracer.close_span(run_span)
            if kind == "get":
                results.extend(
                    (proto.ST_NOT_FOUND, b"") if v is None else (proto.ST_OK, v)
                    for v in values
                )
            elif kind == "put":
                results.extend(
                    (proto.ST_OK, b"\x01" if v else b"\x00") for v in values
                )
            else:
                results.extend(
                    (proto.ST_OK, b"\x01") if v else (proto.ST_NOT_FOUND, b"\x00")
                    for v in values
                )
        return proto.ST_OK, proto.encode_batch_results(results)


class ServerThread:
    """The reusable in-process server: a :class:`Server` on a private
    event loop in a daemon thread.

    This is the fixture the test harness and benchmarks build on::

        with ServerThread(db, ServerConfig(port=0)) as st:
            client = Client(port=st.port)

    ``start()`` blocks until the listeners are bound (or re-raises the
    startup error); ``stop()`` runs the server's graceful shutdown on
    its loop, then joins the thread.
    """

    def __init__(self, db, config: ServerConfig | None = None, *, owns_db: bool = False) -> None:
        self.server = Server(db, config, owns_db=owns_db)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> int | None:
        return self.server.http_port

    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not start")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - re-raised in start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
        finally:
            loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        fut = asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
        fut.result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
