"""``db_open``: the single entry point of the access package.

Mirrors 4.4BSD's ``dbopen(3)``: one call, a DBTYPE, and back comes an
object with the uniform get/put/delete/seq interface, "allowing application
implementations to be largely independent of the database type".
"""

from __future__ import annotations

import os

from repro.access.api import DB_BTREE, DB_HASH, DB_RECNO, AccessMethod
from repro.access.btree.btree import BTree
from repro.access.hash_adapter import HashAccess
from repro.access.recno.recno import Recno
from repro.core.errors import InvalidParameterError


def db_open(
    path: str | os.PathLike | None,
    type: str = DB_HASH,  # noqa: A002 - dbopen's parameter name
    flag: str = "c",
    **params,
) -> AccessMethod:
    """Open or create a database of the given access method.

    ``flag`` follows the dbm-style letters: ``'r'`` read-only, ``'w'``
    read-write existing, ``'c'`` create if missing, ``'n'`` always create.
    ``params`` are forwarded to the method (hash: bsize/ffactor/nelem/
    cachesize/hashfn/min_fill; btree: bsize/cachesize; recno: reclen/bpad/
    bsize/cachesize).  ``path=None`` creates an in-memory database.

    Space reclamation (see docs/STORAGE.md): hash tables accept
    ``min_fill=`` -- a utilization floor below which delete churn
    contracts the bucket address space (the inverse of the paper's
    splits; the default 0.0 keeps the paper's never-contract policy) --
    and every method supports ``db.compact()``, an online rewrite into
    minimal form that reclaims dead pages in place.

    ``concurrent=True`` (any method) makes the handle safe for multiple
    threads: shared readers, exclusive writers, fail-fast cursors -- see
    docs/CONCURRENCY.md.  The default pays zero locking overhead.

    ``durability='wal'`` or ``'wal+fsync'`` (any method) puts a
    write-ahead log in front of the file and enables the transaction
    API -- ``begin``/``commit``/``abort`` and ``with db.transaction():``
    -- with crash recovery on reopen; ``'wal+fsync'`` additionally
    fsyncs every commit, shared among concurrent committers by group
    commit.  See docs/TRANSACTIONS.md.

    Every method offers batched ``put_many``/``get_many``/``delete_many``
    (hash amortizes locks, page pins and trace spans across the batch),
    and hash adds ``bulk_load(items, nelem=...)`` -- a presized, zero-split
    load of an empty table -- see docs/PERFORMANCE.md.
    """
    if flag not in ("r", "w", "c", "n"):
        raise InvalidParameterError(f"flag must be 'r', 'w', 'c' or 'n', got {flag!r}")
    try:
        cls = {DB_HASH: HashAccess, DB_BTREE: BTree, DB_RECNO: Recno}[type]
    except KeyError:
        raise InvalidParameterError(
            f"unknown access method {type!r}; choose from "
            f"{DB_HASH!r}, {DB_BTREE!r}, {DB_RECNO!r}"
        ) from None
    if path is None:
        return cls.create(None, in_memory=True, **params)
    path = os.fspath(path)
    exists = os.path.exists(path)
    if flag == "n" or (flag == "c" and not exists):
        return cls.create(path, **params)
    return cls.open_file(path, readonly=(flag == "r"), **params)


def open(  # noqa: A001 - deliberately shadows builtins.open, like dbm.open
    path: str | os.PathLike | None = None,
    flag: str = "c",
    *,
    type: str = DB_HASH,  # noqa: A002
    **params,
) -> AccessMethod:
    """``repro.open``: one call for any access method.

    ``repro.open(path)`` opens (creating if missing) a hash database;
    ``type=`` selects btree or recno; ``params`` forward to the method
    exactly as in :func:`db_open` (including ``durability='wal'`` /
    ``'wal+fsync'`` for transactions and crash recovery).  The returned
    object is both the db(3) interface and a mapping (``db[key]``,
    ``len(db)``, iteration), with ``str`` keys and values UTF-8 encoded
    -- see :class:`repro.access.api.AccessMethod`.
    """
    return db_open(path, type, flag, **params)
