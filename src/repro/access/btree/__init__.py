"""The btree access method (paged B+tree)."""

from repro.access.btree.btree import BTree

__all__ = ["BTree"]
