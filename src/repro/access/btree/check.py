"""Structural verification of btree files (fsck for the btree method).

Checks, beyond :meth:`BTree.check_invariants`' leaf-level walk:

- tree shape: every root-to-leaf path has the same depth; internal
  separators bound their subtrees; child pointers are in range;
- page accounting: every page ``1..npages-1`` is reachable exactly once
  as a node, an overflow-chain member, or a free-list member (orphans and
  double-uses are errors);
- big-data references: chains exist, are acyclic and cover the recorded
  length;
- the meta key count matches a full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.access.btree.btree import BTree
from repro.access.btree.nodes import (
    T_FREE,
    T_INTERNAL,
    T_LEAF,
    T_OVERFLOW,
    NodeView,
)


@dataclass
class BtreeReport:
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)

    def render(self) -> str:
        lines = [f"ERROR: {e}" for e in self.errors]
        lines += [f"WARN:  {w}" for w in self.warnings]
        lines += [f"{k}: {v}" for k, v in sorted(self.stats.items())]
        lines.append("clean" if self.ok else f"{len(self.errors)} error(s)")
        return "\n".join(lines)


def verify_btree(tree: BTree) -> BtreeReport:
    """Verify an open btree (read-only walk)."""
    report = BtreeReport()
    claimed: dict[int, str] = {}  # pgno -> role
    counts = {"leaves": 0, "internals": 0, "overflow": 0, "free": 0, "nkeys": 0}

    def claim(pgno: int, role: str) -> bool:
        if pgno <= 0 or pgno >= tree.npages:
            report.error(f"{role}: page {pgno} out of range (npages={tree.npages})")
            return False
        if pgno in claimed:
            report.error(
                f"page {pgno} claimed as {role} but already {claimed[pgno]}"
            )
            return False
        claimed[pgno] = role
        return True

    def walk_overflow(head: int, total: int, where: str) -> None:
        got = 0
        pgno = head
        while pgno and got < total:
            if not claim(pgno, f"overflow of {where}"):
                return
            view = NodeView(tree.pool.get(pgno).page)
            if view.type != T_OVERFLOW:
                report.error(f"{where}: page {pgno} not an overflow page")
                return
            got += view.nslots
            pgno = view.next
            counts["overflow"] += 1
        if got < total:
            report.error(f"{where}: overflow chain short ({got}/{total} bytes)")

    def walk(pgno: int, depth: int, lo: bytes | None, hi: bytes | None) -> int:
        """Returns the leaf depth of the subtree; -1 on error."""
        if not claim(pgno, "node"):
            return -1
        view = NodeView(tree.pool.get(pgno).page)
        if view.type == T_LEAF:
            counts["leaves"] += 1
            prev = None
            for i in range(view.nslots):
                key, payload, big = view.leaf_entry(i)
                if prev is not None and not tree._lt(prev, key):
                    report.error(f"leaf {pgno}: keys out of order at slot {i}")
                prev = key
                if lo is not None and tree._lt(key, lo):
                    report.error(f"leaf {pgno}: key below subtree bound")
                if hi is not None and not tree._lt(key, hi):
                    report.error(f"leaf {pgno}: key above subtree bound")
                if big:
                    head, total = NodeView.unpack_big_ref(payload)
                    walk_overflow(head, total, f"leaf {pgno} slot {i}")
                counts["nkeys"] += 1
            return depth
        if view.type == T_INTERNAL:
            counts["internals"] += 1
            if view.nslots < 1:
                report.error(f"internal {pgno}: no entries")
                return -1
            if view.int_key(0) != b"":
                report.error(f"internal {pgno}: slot 0 key not minus-infinity")
            depths = set()
            for i in range(view.nslots):
                key, child = view.int_entry(i)
                child_lo = lo if i == 0 else key
                child_hi = (
                    hi if i == view.nslots - 1 else view.int_key(i + 1)
                )
                d = walk(child, depth + 1, child_lo, child_hi)
                if d >= 0:
                    depths.add(d)
            if len(depths) > 1:
                report.error(f"internal {pgno}: uneven leaf depths {depths}")
            return depths.pop() if depths else -1
        report.error(f"page {pgno}: unexpected node type {view.type} in tree")
        return -1

    walk(tree.root, 0, None, None)

    # free list
    pgno = tree.free_head
    hops = 0
    while pgno:
        if not claim(pgno, "free list"):
            break
        view = NodeView(tree.pool.get(pgno).page)
        if view.type != T_FREE:
            report.error(f"free list: page {pgno} has type {view.type}")
            break
        counts["free"] += 1
        pgno = view.next
        hops += 1
        if hops > tree.npages:
            report.error("free list longer than the file (cycle)")
            break

    # orphan accounting
    orphans = [p for p in range(1, tree.npages) if p not in claimed]
    if orphans:
        report.warn(f"{len(orphans)} orphan page(s): {orphans[:10]}")

    if counts["nkeys"] != tree.nkeys:
        report.error(f"meta nkeys {tree.nkeys} but scan found {counts['nkeys']}")

    report.stats.update(counts)
    report.stats["npages"] = tree.npages
    return report


def verify_btree_file(path, **open_kwargs) -> BtreeReport:
    tree = BTree.open_file(path, readonly=True, **open_kwargs)
    try:
        return verify_btree(tree)
    finally:
        tree.close()
