"""B+tree node page layout.

Every page of a btree file (except the meta page) is one of:

- **leaf** -- sorted ``(key, data)`` entries, doubly linked to sibling
  leaves for sequential scans;
- **internal** -- sorted ``(key, child)`` entries; slot 0's key is empty
  and acts as minus-infinity, so a child always exists for any search key;
- **overflow** -- a chunk of an oversized data item, chained by page
  number;
- **free** -- on the free list, chained by page number.

Layout (16-byte header, slot table growing up, entries packed down)::

    u8 type | u8 pad | u16 nslots | u16 data_off | u16 pad |
    u32 next | u32 prev | slots (u16 offset each) ... free ... entries

Leaf entry:     ``u16 klen | u16 dlen(+BIG flag) | key | data-or-bigref``
Internal entry: ``u16 klen | u32 child | key``
Big-data ref:   ``u32 head page | u32 total length`` (in place of data)
"""

from __future__ import annotations

import struct
from typing import Iterator

NODE_HDR_SIZE = 16
SLOT_SIZE = 2

#: node types
T_INVALID = 0
T_LEAF = 1
T_INTERNAL = 2
T_OVERFLOW = 3
T_FREE = 4

#: flag bit in a leaf entry's dlen field: data lives on an overflow chain
BIG_FLAG = 0x8000
LEN_MASK = 0x7FFF

#: bytes of a big-data reference (head page number + total length)
BIG_REF_SIZE = 8

_LEAF_ENT = struct.Struct(">HH")
_INT_ENT = struct.Struct(">HI")
_BIG_REF = struct.Struct(">II")

# Overflow pages reuse the node header fields: ``next`` chains pages and
# ``nslots`` holds the payload byte count; payload starts at NODE_HDR_SIZE.


class NodeView:
    """Structured access to one btree page buffer (mutates in place)."""

    __slots__ = ("buf", "bsize")

    def __init__(self, buf: bytearray) -> None:
        self.buf = buf
        self.bsize = len(buf)

    # -- header ----------------------------------------------------------------

    @property
    def type(self) -> int:
        return self.buf[0]

    @type.setter
    def type(self, value: int) -> None:
        self.buf[0] = value

    @property
    def nslots(self) -> int:
        return struct.unpack_from(">H", self.buf, 2)[0]

    @nslots.setter
    def nslots(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 2, value)

    @property
    def data_off(self) -> int:
        return struct.unpack_from(">H", self.buf, 4)[0]

    @data_off.setter
    def data_off(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 4, value)

    @property
    def next(self) -> int:
        return struct.unpack_from(">I", self.buf, 8)[0]

    @next.setter
    def next(self, value: int) -> None:
        struct.pack_into(">I", self.buf, 8, value)

    @property
    def prev(self) -> int:
        return struct.unpack_from(">I", self.buf, 12)[0]

    @prev.setter
    def prev(self, value: int) -> None:
        struct.pack_into(">I", self.buf, 12, value)

    def initialize(self, node_type: int) -> None:
        self.buf[:] = b"\0" * self.bsize
        self.buf[0] = node_type
        self.data_off = self.bsize

    # -- space ------------------------------------------------------------------

    @property
    def free_space(self) -> int:
        return self.data_off - (NODE_HDR_SIZE + self.nslots * SLOT_SIZE)

    def fits(self, entry_len: int) -> bool:
        return SLOT_SIZE + entry_len <= self.free_space

    # -- slot table ----------------------------------------------------------------

    def _slot_off(self, i: int) -> int:
        if not 0 <= i < self.nslots:
            raise IndexError(f"slot {i} out of range (nslots={self.nslots})")
        return struct.unpack_from(">H", self.buf, NODE_HDR_SIZE + i * SLOT_SIZE)[0]

    def _insert_entry(self, slot: int, entry: bytes) -> None:
        """Place entry bytes at the packing frontier and splice a slot at
        ``slot`` (entry bytes need not be in key order; slots are)."""
        if not self.fits(len(entry)):
            raise ValueError("entry does not fit (caller must split first)")
        if not 0 <= slot <= self.nslots:
            raise IndexError(f"slot {slot} out of range for insert")
        new_off = self.data_off - len(entry)
        self.buf[new_off : new_off + len(entry)] = entry
        tbl = NODE_HDR_SIZE
        start = tbl + slot * SLOT_SIZE
        end = tbl + self.nslots * SLOT_SIZE
        self.buf[start + SLOT_SIZE : end + SLOT_SIZE] = self.buf[start:end]
        struct.pack_into(">H", self.buf, start, new_off)
        self.nslots += 1
        self.data_off = new_off

    def delete_slot(self, i: int, entry_len: int) -> None:
        """Remove slot ``i`` and compact the entry bytes."""
        off = self._slot_off(i)
        lo = self.data_off
        if off > lo:
            self.buf[lo + entry_len : off + entry_len] = self.buf[lo:off]
        # fix offsets of entries that moved (those below `off`)
        n = self.nslots
        for j in range(n):
            joff = struct.unpack_from(
                ">H", self.buf, NODE_HDR_SIZE + j * SLOT_SIZE
            )[0]
            if joff < off:
                struct.pack_into(
                    ">H", self.buf, NODE_HDR_SIZE + j * SLOT_SIZE, joff + entry_len
                )
        # close the slot-table gap
        tbl = NODE_HDR_SIZE
        start = tbl + (i + 1) * SLOT_SIZE
        end = tbl + n * SLOT_SIZE
        self.buf[start - SLOT_SIZE : end - SLOT_SIZE] = self.buf[start:end]
        self.nslots = n - 1
        self.data_off = lo + entry_len
        self.buf[lo : lo + entry_len] = b"\0" * entry_len
        self.buf[end - SLOT_SIZE : end] = b"\0\0"

    # -- leaf entries -----------------------------------------------------------------

    def leaf_entry(self, i: int) -> tuple[bytes, bytes, bool]:
        """``(key, payload, is_big)``; payload is the data itself or the
        8-byte big-data reference."""
        off = self._slot_off(i)
        klen, dfield = _LEAF_ENT.unpack_from(self.buf, off)
        big = bool(dfield & BIG_FLAG)
        dlen = BIG_REF_SIZE if big else dfield & LEN_MASK
        kstart = off + _LEAF_ENT.size
        key = bytes(self.buf[kstart : kstart + klen])
        payload = bytes(self.buf[kstart + klen : kstart + klen + dlen])
        return key, payload, big

    def leaf_key(self, i: int) -> bytes:
        off = self._slot_off(i)
        klen, _dfield = _LEAF_ENT.unpack_from(self.buf, off)
        kstart = off + _LEAF_ENT.size
        return bytes(self.buf[kstart : kstart + klen])

    def leaf_entry_len(self, i: int) -> int:
        off = self._slot_off(i)
        klen, dfield = _LEAF_ENT.unpack_from(self.buf, off)
        dlen = BIG_REF_SIZE if dfield & BIG_FLAG else dfield & LEN_MASK
        return _LEAF_ENT.size + klen + dlen

    @staticmethod
    def pack_leaf_entry(key: bytes, data: bytes) -> bytes:
        return _LEAF_ENT.pack(len(key), len(data)) + key + data

    @staticmethod
    def pack_big_leaf_entry(key: bytes, head_pgno: int, total_dlen: int) -> bytes:
        return (
            _LEAF_ENT.pack(len(key), BIG_FLAG)
            + key
            + _BIG_REF.pack(head_pgno, total_dlen)
        )

    @staticmethod
    def unpack_big_ref(payload: bytes) -> tuple[int, int]:
        return _BIG_REF.unpack(payload)

    # -- internal entries ----------------------------------------------------------------

    def int_entry(self, i: int) -> tuple[bytes, int]:
        off = self._slot_off(i)
        klen, child = _INT_ENT.unpack_from(self.buf, off)
        kstart = off + _INT_ENT.size
        return bytes(self.buf[kstart : kstart + klen]), child

    def int_key(self, i: int) -> bytes:
        return self.int_entry(i)[0]

    def int_entry_len(self, i: int) -> int:
        off = self._slot_off(i)
        klen, _child = _INT_ENT.unpack_from(self.buf, off)
        return _INT_ENT.size + klen

    def set_int_child(self, i: int, child: int) -> None:
        off = self._slot_off(i)
        struct.pack_into(">I", self.buf, off + 2, child)

    @staticmethod
    def pack_int_entry(key: bytes, child: int) -> bytes:
        return _INT_ENT.pack(len(key), child) + key

    # -- search -------------------------------------------------------------------------------

    def leaf_search(self, key: bytes, compare=None) -> tuple[int, bool]:
        """Binary search: ``(slot, exact)`` where slot is the insertion
        point (first slot with key >= target).  ``compare`` is an optional
        db(3)-style ``bt_compare`` returning <0/0/>0."""
        lo, hi = 0, self.nslots
        if compare is None:
            while lo < hi:
                mid = (lo + hi) // 2
                if self.leaf_key(mid) < key:
                    lo = mid + 1
                else:
                    hi = mid
            exact = lo < self.nslots and self.leaf_key(lo) == key
        else:
            while lo < hi:
                mid = (lo + hi) // 2
                if compare(self.leaf_key(mid), key) < 0:
                    lo = mid + 1
                else:
                    hi = mid
            exact = lo < self.nslots and compare(self.leaf_key(lo), key) == 0
        return lo, exact

    def int_search(self, key: bytes, compare=None) -> int:
        """Rightmost slot whose key is <= target (slot 0's empty key is
        minus-infinity, so the result is always >= 0)."""
        lo, hi = 1, self.nslots
        if compare is None:
            while lo < hi:
                mid = (lo + hi) // 2
                if self.int_key(mid) <= key:
                    lo = mid + 1
                else:
                    hi = mid
        else:
            while lo < hi:
                mid = (lo + hi) // 2
                if compare(self.int_key(mid), key) <= 0:
                    lo = mid + 1
                else:
                    hi = mid
        return lo - 1

    def iter_leaf(self) -> Iterator[tuple[bytes, bytes, bool]]:
        for i in range(self.nslots):
            yield self.leaf_entry(i)
