"""Btree statistics (the btree half of ``repro.tools stat``)."""

from __future__ import annotations

from repro.access.btree.btree import BTree
from repro.access.btree.nodes import (
    NODE_HDR_SIZE,
    T_INTERNAL,
    T_LEAF,
    NodeView,
)


def collect_btree_stats(tree: BTree) -> dict:
    """Gather shape and utilization figures from an open btree."""
    level_counts: list[int] = []
    leaf_used = 0
    leaf_pages = 0
    internal_used = 0
    internal_pages = 0
    big_items = 0

    def walk(pgno: int, depth: int) -> None:
        nonlocal leaf_used, leaf_pages, internal_used, internal_pages, big_items
        while len(level_counts) <= depth:
            level_counts.append(0)
        level_counts[depth] += 1
        view = NodeView(tree.pool.get(pgno).page)
        used = tree.bsize - NODE_HDR_SIZE - view.free_space
        if view.type == T_LEAF:
            leaf_pages += 1
            leaf_used += used
            for i in range(view.nslots):
                if view.leaf_entry(i)[2]:
                    big_items += 1
            return
        if view.type == T_INTERNAL:
            internal_pages += 1
            internal_used += used
            for i in range(view.nslots):
                _k, child = view.int_entry(i)
                walk(child, depth + 1)

    walk(tree.root, 0)

    # free-list length
    free = 0
    pgno = tree.free_head
    while pgno and free <= tree.npages:
        free += 1
        pgno = NodeView(tree.pool.get(pgno).page).next

    return {
        "path": getattr(tree._file, "path", None),
        "bsize": tree.bsize,
        "nkeys": tree.nkeys,
        "npages": tree.npages,
        "depth": len(level_counts),
        "level_counts": level_counts,
        "leaf_pages": leaf_pages,
        "internal_pages": internal_pages,
        "free_pages": free,
        "big_items": big_items,
        "leaf_utilization": round(leaf_used / (leaf_pages * (tree.bsize - NODE_HDR_SIZE)), 3)
        if leaf_pages
        else 0.0,
        "internal_utilization": round(
            internal_used / (internal_pages * (tree.bsize - NODE_HDR_SIZE)), 3
        )
        if internal_pages
        else 0.0,
    }


def format_btree_stats(tree: BTree) -> str:
    stats = collect_btree_stats(tree)
    lines = [f"btree statistics for {stats['path'] or '<memory>'}"]
    for key in (
        "bsize",
        "nkeys",
        "npages",
        "depth",
        "leaf_pages",
        "internal_pages",
        "free_pages",
        "big_items",
        "leaf_utilization",
        "internal_utilization",
    ):
        lines.append(f"  {key:<22} {stats[key]}")
    lines.append("  nodes per level (root first):")
    for depth, count in enumerate(stats["level_counts"]):
        lines.append(f"    {depth:>3}: {count}")
    return "\n".join(lines)
