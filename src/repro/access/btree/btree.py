"""The btree access method: a paged B+tree.

Shares the substrate of the hash package -- any :class:`repro.storage.Pager`
under an LRU :class:`BufferPool` -- and exposes the
db(3) interface of :class:`repro.access.api.AccessMethod`, with keys kept
in sorted order (optionally under a user comparator, db(3)'s
``bt_compare``).

Structural notes (matching 4.4BSD's btree where the paper is silent):

- leaves are doubly linked for sequential scans in both directions;
- oversized data goes to overflow-page chains; keys must fit in a quarter
  page (4.4BSD's bound);
- deletion is lazy: entries are removed and overflow chains reclaimed, but
  nodes are never merged (empty leaves stay linked and are skipped by the
  cursor), the same policy as the historical implementation;
- freed pages are kept on a free list inside the file and reused.
"""

from __future__ import annotations

import os
import struct
import threading
import time

from repro.access.api import (
    DB_BTREE,
    AccessMethod,
    Cursor,
)
from repro.access.btree.nodes import (
    NODE_HDR_SIZE,
    SLOT_SIZE,
    T_FREE,
    T_INTERNAL,
    T_LEAF,
    T_OVERFLOW,
    NodeView,
)
from repro.core.buffer import BufferPool
from repro.core.errors import (
    BadFileError,
    ClosedError,
    InvalidParameterError,
    ReadOnlyError,
    TransactionError,
)
from repro.core.locking import NULL_GUARD, RWLock
from repro.core.wal import (
    DEFAULT_CHECKPOINT_BYTES,
    DURABILITY_LEVELS,
    MemByteStore,
    TransactionContext,
    TransactionManager,
    WALPager,
    WriteAheadLog,
    wal_path_for,
)
from repro.core.wal import recover as wal_recover
from repro.obs.hooks import TraceHooks
from repro.obs.registry import Registry
from repro.obs.trace import TraceSupport
from repro.storage.bytefile import ByteFile
from repro.storage.pager import open_pager

BTREE_MAGIC = 0x42543931  # "BT91"
BTREE_VERSION = 1

_META = struct.Struct(">IIIIIIQ")
META_PGNO = 0

DEFAULT_BSIZE = 4096
MIN_BSIZE = 512
MAX_BSIZE = 65536
DEFAULT_CACHESIZE = 256 * 1024


class BTree(TraceSupport, AccessMethod):
    """A B+tree of byte-string pairs with sorted iteration."""

    type = DB_BTREE

    # ------------------------------------------------------------------ setup

    def __init__(
        self,
        file,
        readonly: bool,
        cachesize: int,
        compare=None,
        observability: bool = True,
        concurrent: bool = False,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_wrapper=None,
        wal_fresh: bool = False,
    ) -> None:
        if durability not in DURABILITY_LEVELS:
            raise InvalidParameterError(
                f"durability must be one of {DURABILITY_LEVELS}, "
                f"got {durability!r}"
            )
        self._file = file
        self.readonly = readonly
        self._closed = False
        #: table-level rwlock and reusable guards (see docs/CONCURRENCY.md);
        #: no-op objects when single-threaded
        self.concurrent = concurrent
        self._lock = RWLock() if concurrent else None
        self._rd = self._lock.reader if concurrent else NULL_GUARD
        self._wr = self._lock.writer if concurrent else NULL_GUARD
        self._stats_lock = threading.Lock() if concurrent else None
        #: metrics tree rooted at this tree; ``stat()`` renders it
        self.obs = Registry("btree", enabled=observability)
        if concurrent:
            self.obs.make_threadsafe()
            file.stats.make_threadsafe()
        self.hooks = TraceHooks()
        # Durability: same interposition as the hash method -- the WAL
        # sits between the buffer pool and the real pager, so write-back
        # lands in the log and the tree file is only written by
        # checkpoints/recovery (see repro.core.wal).
        self.durability = durability if not readonly else "none"
        self._wal: WriteAheadLog | None = None
        self._txn: TransactionManager | None = None
        self.wal_recovery: dict | None = None
        if self.durability != "none":
            path = getattr(file, "path", None)
            if path is None:
                # RAM trees get transaction semantics, no durable sidecar
                store = MemByteStore()
                fresh = True
            else:
                wpath = wal_path_for(path)
                fresh = wal_fresh or not os.path.exists(wpath)
                store = ByteFile(wpath, create=fresh)
            if wal_wrapper is not None:
                store = wal_wrapper(store)
            if concurrent:
                store.stats.make_threadsafe()
            self._wal = WriteAheadLog(store, file.pagesize, fresh=fresh)
            self._file = WALPager(file, self._wal)
        self.pool = BufferPool(
            self._file,
            file.pagesize,
            cachesize,
            lambda pgno: pgno,
            obs=self.obs.child("buffer"),
            hooks=self.hooks,
            concurrent=concurrent,
        )
        _ops = self.obs.child("ops")
        self._h_get = _ops.histogram("get")
        self._h_put = _ops.histogram("put")
        self._h_delete = _ops.histogram("delete")
        self._h_split = _ops.histogram("split")
        self._clock = time.perf_counter if observability else None
        self._file.on_page_io = self._page_io_event
        # tracer (disabled) + fault/lock-wait emit adapters (obs.trace)
        self._init_tracing()
        if hasattr(file, "on_fault"):
            file.on_fault = self._fault_event
        if concurrent:
            self._lock.wait_hook = self._lock_wait_event
        self._gets = 0
        self._puts = 0
        self._deletes = 0
        self._leaf_splits = 0
        self._internal_splits = 0
        self._compactions = 0
        self.bsize = file.pagesize
        #: db(3)'s bt_compare: optional ``(a, b) -> <0/0/>0`` key order.
        #: Like the C library, it is not stored in the file -- reopen with
        #: the same comparator or the tree misbehaves.
        self._compare = compare
        # meta fields
        self.root = 0
        self.free_head = 0
        self.npages = 0
        self.nkeys = 0
        if self._wal is not None:
            self._txn = TransactionManager(
                wal=self._wal,
                walpager=self._file,
                inner=file,
                pool=self.pool,
                write_meta=self._write_meta,
                snapshot=self._txn_snapshot,
                restore=self._txn_restore,
                check=self._check_writable,
                guard=self._wr,
                hooks=self.hooks,
                obs=self.obs.child("wal"),
                fsync=(self.durability == "wal+fsync"),
                checkpoint_bytes=wal_checkpoint_bytes,
            )

    def _page_io_event(self, kind: str, pageno: int, nbytes: int) -> None:
        hooks = self.hooks
        if hooks.on_page_io:
            hooks.emit(
                "on_page_io", {"kind": kind, "pageno": pageno, "nbytes": nbytes}
            )

    def _ge(self, a: bytes, b: bytes) -> bool:
        if self._compare is None:
            return a >= b
        return self._compare(a, b) >= 0

    def _lt(self, a: bytes, b: bytes) -> bool:
        if self._compare is None:
            return a < b
        return self._compare(a, b) < 0

    @classmethod
    def create(
        cls,
        path: str | os.PathLike | None = None,
        *,
        bsize: int = DEFAULT_BSIZE,
        cachesize: int = DEFAULT_CACHESIZE,
        in_memory: bool = False,
        compare=None,
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_wrapper=None,
    ) -> "BTree":
        """Create a new btree (``path=None`` + ``in_memory`` for RAM).

        ``compare`` is db(3)'s ``bt_compare``: a total order over keys as
        ``(a, b) -> <0/0/>0``.  Supply the same function on every reopen.
        ``file_wrapper`` post-wraps the pager (SimulatedDisk for modelled
        I/O time, FaultyPager for crash injection).  ``durability``
        selects the crash-safety level ('none' | 'wal' | 'wal+fsync',
        see docs/TRANSACTIONS.md) and enables ``begin``/``commit``/
        ``abort``; ``wal_wrapper`` decorates the log's byte store.
        """
        if bsize < MIN_BSIZE or bsize > MAX_BSIZE or bsize & (bsize - 1):
            raise InvalidParameterError(
                f"bsize must be a power of two in [{MIN_BSIZE}, {MAX_BSIZE}], "
                f"got {bsize}"
            )
        t_open = time.perf_counter()
        file = open_pager(
            path, pagesize=bsize, create=True, in_memory=in_memory,
            wrapper=file_wrapper,
        )
        tree = cls(
            file,
            readonly=False,
            cachesize=cachesize,
            compare=compare,
            observability=observability,
            concurrent=concurrent,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
            wal_wrapper=wal_wrapper,
            wal_fresh=True,
        )
        tree.npages = 1  # the meta page
        root_hdr = tree._new_page(T_LEAF)
        tree.root = root_hdr.key
        tree._write_meta()
        if tree._txn is not None:
            # materialize the fresh file (creation must not live only in
            # the log: a probe-on-reopen needs a real meta page)
            tree.checkpoint()
        if tracing:
            tree._trace_open(t_open, "create")
        return tree

    @classmethod
    def open_file(
        cls,
        path: str | os.PathLike,
        *,
        cachesize: int = DEFAULT_CACHESIZE,
        readonly: bool = False,
        compare=None,
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_wrapper=None,
    ) -> "BTree":
        t_open = time.perf_counter()
        # Replay any committed-but-uncheckpointed transactions from a
        # previous incarnation BEFORE probing the meta page: the probe
        # must see the recovered file.
        recovery = wal_recover(
            path, file_wrapper=file_wrapper, wal_wrapper=wal_wrapper
        )
        probe = open_pager(path, pagesize=MIN_BSIZE, readonly=True)
        try:
            if probe.size_bytes() < _META.size:
                raise BadFileError(f"{os.fspath(path)}: too small to be a btree")
            raw = probe.read_page(0)
        finally:
            probe.close()
        magic, version, bsize, _root, _free, _npages, _nkeys = _META.unpack_from(raw, 0)
        if magic != BTREE_MAGIC:
            raise BadFileError(f"{os.fspath(path)}: bad btree magic {magic:#x}")
        if version != BTREE_VERSION:
            raise BadFileError(f"unsupported btree version {version}")
        if bsize < MIN_BSIZE or bsize > MAX_BSIZE or bsize & (bsize - 1):
            raise BadFileError(f"corrupt btree meta: bsize {bsize}")
        file = open_pager(
            path, pagesize=bsize, readonly=readonly, wrapper=file_wrapper
        )
        tree = cls(
            file,
            readonly=readonly,
            cachesize=cachesize,
            compare=compare,
            observability=observability,
            concurrent=concurrent,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
            wal_wrapper=wal_wrapper,
        )
        tree._read_meta()
        if recovery["frames"]:
            tree.wal_recovery = recovery
        if tracing:
            tree._trace_open(t_open, "open")
        return tree

    def _write_meta(self) -> None:
        raw = _META.pack(
            BTREE_MAGIC,
            BTREE_VERSION,
            self.bsize,
            self.root,
            self.free_head,
            self.npages,
            self.nkeys,
        )
        self._file.write_page(META_PGNO, raw)

    def _read_meta(self) -> None:
        raw = self._file.read_page(META_PGNO)
        magic, version, bsize, root, free_head, npages, nkeys = _META.unpack_from(
            raw, 0
        )
        if magic != BTREE_MAGIC or version != BTREE_VERSION:
            raise BadFileError("corrupt btree meta page")
        if bsize != self.bsize:
            raise BadFileError(f"meta bsize {bsize} != file pagesize {self.bsize}")
        self.root = root
        self.free_head = free_head
        self.npages = npages
        self.nkeys = nkeys

    # ---------------------------------------------------------------- paging

    def _new_page(self, node_type: int):
        """Allocate a page (free list first) and return its pinned-free
        buffer header, initialized to ``node_type``."""
        if self.free_head:
            pgno = self.free_head
            hdr = self.pool.get(pgno)
            self.free_head = NodeView(hdr.page).next
            view = NodeView(hdr.page)
            view.initialize(node_type)
            hdr.dirty = True
            return hdr
        pgno = self.npages
        self.npages += 1
        hdr = self.pool.get(pgno, create=True)
        NodeView(hdr.page).initialize(node_type)
        hdr.dirty = True
        return hdr

    def _free_page(self, pgno: int) -> None:
        hdr = self.pool.get(pgno)
        view = NodeView(hdr.page)
        view.initialize(T_FREE)
        view.next = self.free_head
        hdr.dirty = True
        self.free_head = pgno

    # ----------------------------------------------------------- size limits

    @property
    def _max_key_len(self) -> int:
        """Keys must fit four to a page (4.4BSD's constraint), so splits
        always succeed."""
        return (self.bsize - NODE_HDR_SIZE) // 4 - SLOT_SIZE - 8

    @property
    def _big_threshold(self) -> int:
        """Leaf entries above a third of a page push their data to
        overflow chains."""
        return (self.bsize - NODE_HDR_SIZE) // 3 - SLOT_SIZE

    # --------------------------------------------------------------- overflow

    def _store_overflow(self, data: bytes) -> int:
        """Write ``data`` to a chain of overflow pages; returns head pgno.

        Overflow pages reuse the node header: ``next`` is the chain link,
        ``nslots`` holds the payload byte count, payload follows the
        header.
        """
        cap = self.bsize - NODE_HDR_SIZE
        head = 0
        prev_hdr = None
        pos = 0
        while pos < len(data) or head == 0:
            hdr = self._new_page(T_OVERFLOW)
            if self.hooks.on_overflow_link:
                # bucket=None: btree overflow chains hang off leaf entries,
                # not hash buckets
                self.hooks.emit(
                    "on_overflow_link", {"bucket": None, "oaddr": hdr.key}
                )
            hdr.pin()
            chunk = data[pos : pos + cap]
            hdr.page[NODE_HDR_SIZE : NODE_HDR_SIZE + len(chunk)] = chunk
            view = NodeView(hdr.page)
            view.nslots = len(chunk)
            hdr.dirty = True
            pos += len(chunk)
            if head == 0:
                head = hdr.key
            else:
                NodeView(prev_hdr.page).next = hdr.key
                prev_hdr.dirty = True
                prev_hdr.unpin()
            prev_hdr = hdr
        prev_hdr.unpin()
        return head

    def _read_overflow(self, head: int, total: int) -> bytes:
        parts = []
        got = 0
        pgno = head
        while pgno and got < total:
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            used = view.nslots
            parts.append(bytes(hdr.page[NODE_HDR_SIZE : NODE_HDR_SIZE + used]))
            got += used
            pgno = view.next
        data = b"".join(parts)
        if len(data) < total:
            raise BadFileError("truncated overflow chain")
        return data[:total]

    def _free_overflow(self, head: int) -> None:
        pgno = head
        while pgno:
            hdr = self.pool.get(pgno)
            nxt = NodeView(hdr.page).next
            self._free_page(pgno)
            pgno = nxt

    def _leaf_payload(self, view: NodeView, slot: int) -> bytes:
        key, payload, big = view.leaf_entry(slot)
        if not big:
            return payload
        head, total = NodeView.unpack_big_ref(payload)
        return self._read_overflow(head, total)

    def _release_entry_data(self, view: NodeView, slot: int) -> None:
        """Free the overflow chain of a big leaf entry, if any."""
        _key, payload, big = view.leaf_entry(slot)
        if big:
            head, _total = NodeView.unpack_big_ref(payload)
            self._free_overflow(head)

    # ----------------------------------------------------------------- search

    def _descend(self, key: bytes) -> tuple[list[tuple[int, int]], int]:
        """Walk from the root to the leaf for ``key``.

        Returns ``(path, leaf_pgno)`` where path lists ``(internal pgno,
        slot taken)`` from root downward.
        """
        path: list[tuple[int, int]] = []
        pgno = self.root
        for _depth in range(64):  # cycle guard
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            if view.type == T_LEAF:
                return path, pgno
            if view.type != T_INTERNAL:
                raise BadFileError(f"page {pgno} has bad node type {view.type}")
            slot = view.int_search(key, self._compare)
            path.append((pgno, slot))
            _k, pgno = view.int_entry(slot)
        raise BadFileError("btree deeper than 64 levels (cycle?)")

    def get(self, key: bytes) -> bytes | None:
        if self.tracer.enabled:
            return self._traced_op("get", self._h_get, self._rd, self._get_impl, key)
        with self._rd:
            clock = self._clock
            if clock is None:
                return self._get_impl(key)
            t0 = clock()
            try:
                return self._get_impl(key)
            finally:
                self._h_get.observe(clock() - t0)

    def _bump_gets(self) -> None:
        # the one counter bumped under a shared lock (+= is not atomic)
        lock = self._stats_lock
        if lock is None:
            self._gets += 1
            return
        with lock:
            self._gets += 1

    def _get_impl(self, key: bytes) -> bytes | None:
        self._check_open()
        self._bump_gets()
        _path, leaf = self._descend(key)
        hdr = self.pool.get(leaf)
        view = NodeView(hdr.page)
        slot, exact = view.leaf_search(key, self._compare)
        if not exact:
            return None
        return self._leaf_payload(view, slot)

    # ----------------------------------------------------------------- insert

    def _put(self, key: bytes, data: bytes, replace: bool) -> int:
        if self.tracer.enabled:
            return self._traced_op(
                "put", self._h_put, self._wr, self._put_impl, key, data, replace
            )
        with self._wr:
            clock = self._clock
            if clock is None:
                return self._put_impl(key, data, replace)
            t0 = clock()
            try:
                return self._put_impl(key, data, replace)
            finally:
                self._h_put.observe(clock() - t0)

    def _put_impl(self, key: bytes, data: bytes, replace: bool = True) -> int:
        self._check_writable()
        self._puts += 1
        if not isinstance(key, (bytes, bytearray)) or not isinstance(
            data, (bytes, bytearray)
        ):
            raise TypeError("keys and values must be bytes")
        key, data = bytes(key), bytes(data)
        if len(key) > self._max_key_len:
            raise InvalidParameterError(
                f"key of {len(key)} bytes exceeds the btree key limit "
                f"({self._max_key_len} for {self.bsize}-byte pages)"
            )
        path, leaf = self._descend(key)
        hdr = self.pool.get(leaf)
        hdr.pin()
        try:
            view = NodeView(hdr.page)
            slot, exact = view.leaf_search(key, self._compare)
            if exact:
                if not replace:
                    return 1
                self._release_entry_data(view, slot)
                view.delete_slot(slot, view.leaf_entry_len(slot))
                hdr.dirty = True
                self.nkeys -= 1
            # build the entry (big data goes to an overflow chain first)
            inline_len = 4 + len(key) + len(data)
            if inline_len > self._big_threshold:
                head = self._store_overflow(data)
                view = NodeView(hdr.page)
                entry = NodeView.pack_big_leaf_entry(key, head, len(data))
            else:
                entry = NodeView.pack_leaf_entry(key, data)
            slot, _exact = NodeView(hdr.page).leaf_search(key, self._compare)
            self._insert_into_leaf(path, leaf, hdr, slot, entry, key)
            self.nkeys += 1
        finally:
            hdr.unpin()
        return 0

    def _insert_into_leaf(self, path, leaf_pgno, hdr, slot, entry, key) -> None:
        view = NodeView(hdr.page)
        if view.fits(len(entry)):
            view._insert_entry(slot, entry)
            hdr.dirty = True
            return
        # -- split the leaf ---------------------------------------------------
        clock = self._clock
        t0 = clock() if clock is not None else 0.0
        self._leaf_splits += 1
        right_hdr = self._new_page(T_LEAF)
        right_hdr.pin()
        try:
            view = NodeView(hdr.page)
            right = NodeView(right_hdr.page)
            n = view.nslots
            mid = n // 2
            # move upper half to the right node
            for i in range(mid, n):
                k, payload, big = view.leaf_entry(i)
                raw_off = view._slot_off(i)
                length = view.leaf_entry_len(i)
                right._insert_entry(
                    right.nslots, bytes(view.buf[raw_off : raw_off + length])
                )
            for _ in range(n - mid):
                view.delete_slot(mid, view.leaf_entry_len(mid))
            # leaf links
            right.next = view.next
            right.prev = hdr.key
            if view.next:
                nxt_hdr = self.pool.get(view.next)
                NodeView(nxt_hdr.page).prev = right_hdr.key
                nxt_hdr.dirty = True
                view = NodeView(hdr.page)
                right = NodeView(right_hdr.page)
            view.next = right_hdr.key
            hdr.dirty = True
            right_hdr.dirty = True
            separator = right.leaf_key(0)
            # place the new entry
            target_hdr = right_hdr if self._ge(key, separator) else hdr
            tview = NodeView(target_hdr.page)
            tslot, _exact = tview.leaf_search(key, self._compare)
            tview._insert_entry(tslot, entry)
            target_hdr.dirty = True
            self._insert_into_parent(path, hdr.key, separator, right_hdr.key)
            if self.hooks.on_split:
                self.hooks.emit(
                    "on_split",
                    {
                        "old_bucket": hdr.key,
                        "new_bucket": right_hdr.key,
                        "reason": "structural",
                        "nkeys": self.nkeys,
                    },
                )
        finally:
            right_hdr.unpin()
            if clock is not None:
                self._h_split.observe(clock() - t0)

    def _insert_into_parent(self, path, left_pgno, separator, right_pgno) -> None:
        entry = NodeView.pack_int_entry(separator, right_pgno)
        if not path:
            # root split: make a new root
            new_root = self._new_page(T_INTERNAL)
            view = NodeView(new_root.page)
            view._insert_entry(0, NodeView.pack_int_entry(b"", left_pgno))
            view._insert_entry(1, entry)
            new_root.dirty = True
            self.root = new_root.key
            return
        parent_pgno, slot = path[-1]
        hdr = self.pool.get(parent_pgno)
        hdr.pin()
        try:
            view = NodeView(hdr.page)
            if view.fits(len(entry)):
                view._insert_entry(slot + 1, entry)
                hdr.dirty = True
                return
            # -- split the internal node ----------------------------------------
            self._internal_splits += 1
            right_hdr = self._new_page(T_INTERNAL)
            right_hdr.pin()
            try:
                view = NodeView(hdr.page)
                right = NodeView(right_hdr.page)
                n = view.nslots
                mid = n // 2
                # the key at `mid` moves UP as the parent separator; its
                # child becomes the right node's minus-infinity entry
                up_key, mid_child = view.int_entry(mid)
                right._insert_entry(0, NodeView.pack_int_entry(b"", mid_child))
                for i in range(mid + 1, n):
                    k, child = view.int_entry(i)
                    right._insert_entry(
                        right.nslots, NodeView.pack_int_entry(k, child)
                    )
                for _ in range(n - mid):
                    view.delete_slot(mid, view.int_entry_len(mid))
                hdr.dirty = True
                right_hdr.dirty = True
                # now place the pending entry in the correct half
                if self._ge(separator, up_key):
                    tview = NodeView(right_hdr.page)
                    tslot = tview.int_search(separator, self._compare)
                    tview._insert_entry(
                        tslot + 1, NodeView.pack_int_entry(separator, right_pgno)
                    )
                    right_hdr.dirty = True
                else:
                    tview = NodeView(hdr.page)
                    tslot = tview.int_search(separator, self._compare)
                    tview._insert_entry(
                        tslot + 1, NodeView.pack_int_entry(separator, right_pgno)
                    )
                    hdr.dirty = True
                self._insert_into_parent(
                    path[:-1], parent_pgno, up_key, right_hdr.key
                )
            finally:
                right_hdr.unpin()
        finally:
            hdr.unpin()

    # ----------------------------------------------------------------- delete

    def delete(self, key: bytes) -> int:
        if self.tracer.enabled:
            return self._traced_op(
                "delete", self._h_delete, self._wr, self._delete_impl, key
            )
        with self._wr:
            clock = self._clock
            if clock is None:
                return self._delete_impl(key)
            t0 = clock()
            try:
                return self._delete_impl(key)
            finally:
                self._h_delete.observe(clock() - t0)

    def _delete_impl(self, key: bytes) -> int:
        self._check_writable()
        self._deletes += 1
        _path, leaf = self._descend(key)
        hdr = self.pool.get(leaf)
        view = NodeView(hdr.page)
        slot, exact = view.leaf_search(key, self._compare)
        if not exact:
            return 1
        hdr.pin()
        try:
            self._release_entry_data(view, slot)
            view = NodeView(hdr.page)
            view.delete_slot(slot, view.leaf_entry_len(slot))
            hdr.dirty = True
            self.nkeys -= 1
        finally:
            hdr.unpin()
        # lazy deletion: empty leaves stay linked (4.4BSD policy); open
        # cursors reposition themselves by key on their next move
        return 0

    # -------------------------------------------------------------- sequencing

    def _leftmost_leaf(self) -> int:
        pgno = self.root
        for _ in range(64):
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            if view.type == T_LEAF:
                return pgno
            _k, pgno = view.int_entry(0)
        raise BadFileError("btree deeper than 64 levels")

    def _rightmost_leaf(self) -> int:
        pgno = self.root
        for _ in range(64):
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            if view.type == T_LEAF:
                return pgno
            _k, pgno = view.int_entry(view.nslots - 1)
        raise BadFileError("btree deeper than 64 levels")

    def _advance_pos(self, pgno: int, slot: int) -> tuple[int, int] | None:
        """First occupied (leaf, slot) at or after the given position,
        skipping empty leaves."""
        while True:
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            if slot < view.nslots:
                return pgno, slot
            if not view.next:
                return None
            pgno, slot = view.next, 0

    def _retreat_pos(self, pgno: int, slot: int) -> tuple[int, int] | None:
        """Last occupied (leaf, slot) at or before the given position,
        skipping empty leaves (slot past the end clamps to the last)."""
        while True:
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            if view.nslots:
                if slot >= view.nslots:
                    slot = view.nslots - 1
                if slot >= 0:
                    return pgno, slot
            if not view.prev:
                return None
            prev_hdr = self.pool.get(view.prev)
            pgno, slot = view.prev, NodeView(prev_hdr.page).nslots - 1

    def cursor(self) -> "BTreeCursor":
        """A fresh bidirectional cursor; any number may be open at once."""
        self._check_open()
        return BTreeCursor(self)

    # ----------------------------------------------------------- transactions

    def _require_txn(self) -> TransactionManager:
        if self._txn is None:
            raise TransactionError(
                "transactions require opening the btree with "
                "durability='wal' or 'wal+fsync'"
            )
        return self._txn

    def begin(self) -> None:
        """Open an explicit transaction (atomic across crashes, undone by
        :meth:`abort`); holds the write lock until commit/abort."""
        self._check_writable()
        self._require_txn().begin()

    def commit(self) -> None:
        """Commit the open transaction (group commit shares fsyncs under
        ``durability='wal+fsync'``)."""
        self._check_open()
        self._require_txn().commit()

    def abort(self) -> None:
        """Roll back the open transaction to its :meth:`begin` point."""
        self._check_open()
        self._require_txn().abort()

    def transaction(self) -> TransactionContext:
        """``with tree.transaction(): ...`` -- commit on clean exit,
        abort if the body raises."""
        return TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.in_transaction

    def checkpoint(self) -> int:
        """Force a WAL checkpoint; returns pages transferred.  Raises
        :class:`TransactionError` inside an open transaction (or without
        ``durability=``)."""
        self._check_writable()
        txn = self._require_txn()
        with self._wr:
            return txn.checkpoint_locked()

    def _txn_snapshot(self) -> tuple:
        """The volatile meta state abort must rewind; page bytes need no
        snapshot (abort drops their buffers, rereads old images)."""
        return (self.root, self.free_head, self.npages, self.nkeys)

    def _txn_restore(self, snap: tuple) -> None:
        self.root, self.free_head, self.npages, self.nkeys = snap

    # -------------------------------------------------------------- compaction

    def _scan_items(self) -> list[tuple[bytes, bytes]]:
        """Every (key, data) pair in order, caller holds a lock.  Each
        leaf is pinned while its entries are copied out, then big data is
        resolved from overflow chains (which may evict the leaf)."""
        out: list[tuple[bytes, bytes]] = []
        pgno = self._leftmost_leaf()
        while pgno:
            hdr = self.pool.get(pgno)
            hdr.pin()
            try:
                view = NodeView(hdr.page)
                entries = [view.leaf_entry(i) for i in range(view.nslots)]
                nxt = view.next
            finally:
                hdr.unpin()
            for key, payload, big in entries:
                if big:
                    head, total = NodeView.unpack_big_ref(payload)
                    out.append((key, self._read_overflow(head, total)))
                else:
                    out.append((key, payload))
            pgno = nxt
        return out

    def compact(self) -> dict:
        """Rewrite the tree into its minimal on-disk form in place.

        The btree's deletion policy is lazy (empty leaves stay linked,
        freed pages queue on an in-file free list), so delete churn
        leaves the file bigger than the data.  Compact rebuilds the tree
        from its live pairs -- no free pages, no empty leaves, no orphan
        overflow chains -- and swaps the image in.

        Mostly-online, like the hash method's: the pairs are snapshotted
        under the *read* lock, the replacement tree is built without any
        lock, and only the final swap holds the write lock (a writer
        slipping in between forces one exclusive rebuild).  Returns the
        shared report dict (``before``/``after`` page and byte sizes,
        ``pages_reclaimed``, ``nkeys``).

        Under a WAL the swap is bracketed by checkpoints, so a crash
        leaves either the old tree or the new one, never a mix.  Raises
        :class:`TransactionError` inside an open transaction.
        """
        self._check_writable()
        if self._txn is not None and self._txn.in_transaction:
            raise TransactionError(
                "compact() inside an open transaction; commit or abort first"
            )
        span = self.tracer.start("compact") if self.tracer.enabled else None
        try:
            report = self._compact_impl()
        finally:
            if span is not None:
                self.tracer.end(span)
        if self.hooks.on_compact:
            self.hooks.emit("on_compact", dict(report))
        return report

    def _compact_impl(self) -> dict:
        with self._rd:
            self._check_writable()
            items = self._scan_items()
            marker = (self._puts, self._deletes)
        temp = self._build_compact_image(items)
        try:
            with self._wr:
                if (self._puts, self._deletes) != marker:
                    # Writers slipped in between snapshot and swap: redo
                    # the scan and build while exclusive (rare).
                    temp.close()
                    items = self._scan_items()
                    temp = self._build_compact_image(items)
                return self._compact_swap(temp, len(items))
        finally:
            temp.close()

    def _build_compact_image(self, items) -> "BTree":
        """A pristine RAM twin of this tree holding ``items`` (already
        sorted) -- the swap source of :meth:`compact`."""
        temp = BTree.create(
            None,
            in_memory=True,
            bsize=self.bsize,
            compare=self._compare,
            observability=False,
        )
        try:
            for key, data in items:
                temp._put_impl(key, data, True)
            temp._sync_impl()  # flush pages + meta into the RAM file
        except BaseException:
            temp.close()
            raise
        return temp

    def _compact_swap(self, temp: "BTree", nkeys: int) -> dict:
        """Replace this tree's file contents with ``temp``'s image.
        Caller holds the write lock; ``temp`` is flushed and in RAM."""
        # logical size: unflushed pages live only in the pool, so the
        # meta counter can be ahead of the file
        before_pages = max(self._file.npages(), self.npages)
        before_bytes = max(self._file.size_bytes(), self.npages * self.bsize)
        txn = self._txn
        if txn is not None:
            # Quiesce: materialize everything logged so far, so the copy
            # below is the only pending work in the log.
            txn.checkpoint_locked()
        self.pool.discard(lambda hdr: True)
        src = temp._file
        new_n = src.npages()
        i = 0
        while i < new_n:
            j = min(new_n, i + 64)
            blob = b"".join(src.read_page(p) for p in range(i, j))
            self._file.write_pages(i, blob)
            i = j
        self.root = temp.root
        self.free_head = temp.free_head
        self.npages = temp.npages
        self.nkeys = temp.nkeys
        self._file.freelist.clear()
        if txn is not None:
            # Commit + transfer the new image, THEN drop the tail: the
            # truncate only ever follows a fully materialized file.
            txn.checkpoint_locked()
            if self._file.npages() > new_n:
                self._file.truncate(new_n)
                self._file.sync()
        else:
            self._write_meta()
            if self._file.npages() > new_n:
                self._file.truncate(new_n)
            self._file.sync()
        self.pool._hole_threshold = new_n
        self._compactions += 1
        after_pages = self._file.npages()
        return {
            "nkeys": nkeys,
            "before": {"pages": before_pages, "bytes": before_bytes},
            "after": {"pages": after_pages, "bytes": self._file.size_bytes()},
            "pages_reclaimed": max(0, before_pages - after_pages),
            "pagesize": self.bsize,
        }

    # -------------------------------------------------------------- maintenance

    def sync(self) -> None:
        """Batched page write-back, meta write, one group sync -- the
        shared flush-before-sync ordering (see docs/STORAGE.md).  In WAL
        mode this is a full checkpoint and raises
        :class:`TransactionError` inside an open transaction."""
        if self.tracer.enabled:
            self._traced_op("sync", None, self._wr, self._sync_impl)
            return
        with self._wr:
            self._sync_impl()

    def _sync_impl(self) -> None:
        self._check_open()
        if self._txn is not None:
            self._txn.checkpoint_locked()
            return
        self.pool.flush()
        self._write_meta()
        self._file.sync()

    def close(self) -> None:
        """Flush, sync and release; idempotent like every backend's.  An
        open uncommitted transaction is ROLLED BACK first -- close never
        half-flushes work that was never committed."""
        with self._wr:
            if self._closed:
                return
            txn = self._txn
            if not self.readonly:
                if txn is not None:
                    txn.abort_for_close()
                    txn.checkpoint_locked()
                    self.pool.drop_all()
                else:
                    self.pool.drop_all()
                    self._write_meta()
                    self._file.sync()
            self._closed = True
            self._file.close()
            if txn is not None:
                txn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self.nkeys

    def stat(self) -> dict:
        """The tree's metrics as the shared nested-dict shape (same
        top-level keys as the hash method's ``stat``)."""
        with self._rd:
            return self._stat_impl()

    def _stat_impl(self) -> dict:
        self._check_open()
        wal = {} if self._txn is None else {"wal": self._txn.metrics()}
        return {
            "type": "btree",
            **wal,
            "nkeys": self.nkeys,
            "ops": {
                "counts": {
                    "gets": self._gets,
                    "puts": self._puts,
                    "deletes": self._deletes,
                    "splits": self._leaf_splits + self._internal_splits,
                },
                "latency": {
                    "get": self._h_get.as_value(),
                    "put": self._h_put.as_value(),
                    "delete": self._h_delete.as_value(),
                    "split": self._h_split.as_value(),
                },
            },
            "buffer": self.pool.metrics(),
            "io": self._file.stats.as_dict(),
            "method": {
                "bsize": self.bsize,
                "npages": self.npages,
                "root": self.root,
                "leaf_splits": self._leaf_splits,
                "internal_splits": self._internal_splits,
                "compactions": self._compactions,
            },
        }

    @property
    def io_stats(self):
        return self._file.stats

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("operation on closed BTree")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ReadOnlyError("btree is read-only")

    # -------------------------------------------------------------- inspection

    def check_invariants(self) -> None:
        """Structural verification: sorted leaves, consistent links, key
        count, and separator correctness (used by the test suite)."""
        with self._rd:
            self._check_invariants_impl()

    def _check_invariants_impl(self) -> None:
        count = 0
        prev_key: bytes | None = None
        pgno = self._leftmost_leaf()
        seen = set()
        expected_prev = 0
        while pgno:
            assert pgno not in seen, f"leaf cycle at page {pgno}"
            seen.add(pgno)
            hdr = self.pool.get(pgno)
            view = NodeView(hdr.page)
            assert view.type == T_LEAF
            assert view.prev == expected_prev, (
                f"leaf {pgno} prev={view.prev} expected {expected_prev}"
            )
            for i in range(view.nslots):
                k = view.leaf_key(i)
                if prev_key is not None:
                    assert self._lt(prev_key, k), f"unsorted keys {prev_key!r} !< {k!r}"
                prev_key = k
                count += 1
            expected_prev = pgno
            pgno = view.next
        assert count == self.nkeys, f"scan found {count}, meta says {self.nkeys}"


class BTreeCursor(Cursor):
    """A bidirectional, key-addressed cursor over one :class:`BTree`.

    The cursor remembers the key it last returned plus a (leaf page, slot)
    hint.  Each move first checks the hint; if an insert, delete or split
    has reorganized that page, the cursor re-descends by the remembered
    key, so it stays correct under mutation: ``next`` continues at the
    smallest key greater than the last one returned (even if that key was
    just deleted), ``prev`` symmetrically.
    """

    __slots__ = ("tree", "_lastkey", "_hint")

    def __init__(self, tree: BTree) -> None:
        self.tree = tree
        self._lastkey: bytes | None = None
        self._hint: tuple[int, int] | None = None

    def _return(self, pos: tuple[int, int] | None):
        if pos is None:
            return None
        pgno, slot = pos
        hdr = self.tree.pool.get(pgno)
        view = NodeView(hdr.page)
        key = view.leaf_key(slot)
        data = self.tree._leaf_payload(view, slot)
        self._lastkey = key
        self._hint = (pgno, slot)
        return key, data

    def _locate(self) -> tuple[int, int, bool]:
        """(leaf pgno, slot, exact) of the last-returned key: the hint if
        still valid, else a fresh descent (exact=False means the key is
        gone and slot is where it would insert)."""
        t = self.tree
        pgno, slot = self._hint
        if pgno < t.npages:  # compact() may have truncated the hint away
            hdr = t.pool.get(pgno)
            view = NodeView(hdr.page)
            if (
                view.type == T_LEAF
                and slot < view.nslots
                and view.leaf_key(slot) == self._lastkey
            ):
                return pgno, slot, True
        _path, leaf = t._descend(self._lastkey)
        hdr = t.pool.get(leaf)
        slot, exact = NodeView(hdr.page).leaf_search(self._lastkey, t._compare)
        return leaf, slot, exact

    def _step(self, name: str, fn, *args):
        """Run one cursor movement under the read lock, as a root span
        when the tree's tracer is on."""
        t = self.tree
        if t.tracer.enabled:
            return t._traced_op(name, None, t._rd, fn, *args)
        with t._rd:
            return fn(*args)

    def first(self):
        return self._step("cursor_first", self._first_impl)

    def _first_impl(self):
        t = self.tree
        t._check_open()
        return self._return(t._advance_pos(t._leftmost_leaf(), 0))

    def last(self):
        return self._step("cursor_last", self._last_impl)

    def _last_impl(self):
        t = self.tree
        t._check_open()
        leaf = t._rightmost_leaf()
        hdr = t.pool.get(leaf)
        return self._return(t._retreat_pos(leaf, NodeView(hdr.page).nslots - 1))

    def next(self):
        return self._step("cursor_next", self._next_impl)

    def _next_impl(self):
        t = self.tree
        t._check_open()
        if self._lastkey is None:
            return self._return(t._advance_pos(t._leftmost_leaf(), 0))
        pgno, slot, exact = self._locate()
        return self._return(t._advance_pos(pgno, slot + 1 if exact else slot))

    def prev(self):
        return self._step("cursor_prev", self._prev_impl)

    def _prev_impl(self):
        t = self.tree
        t._check_open()
        if self._lastkey is None:
            leaf = t._rightmost_leaf()
            hdr = t.pool.get(leaf)
            return self._return(
                t._retreat_pos(leaf, NodeView(hdr.page).nslots - 1)
            )
        pgno, slot, _exact = self._locate()
        return self._return(t._retreat_pos(pgno, slot - 1))

    def seek(self, key: bytes):
        return self._step("cursor_seek", self._seek_impl, key)

    def _seek_impl(self, key: bytes):
        t = self.tree
        t._check_open()
        _path, leaf = t._descend(key)
        hdr = t.pool.get(leaf)
        slot, _exact = NodeView(hdr.page).leaf_search(key, t._compare)
        return self._return(t._advance_pos(leaf, slot))
