"""The uniform key/data interface shared by every access method.

Mirrors 4.4BSD db(3): ``get``/``put``/``delete``/``seq``/``sync``/``close``
with the historical flag values.  Keys and data are ``bytes``; recno keys
are 1-based record numbers encoded by the recno method itself, so "all of
the access methods ... appear identical to the application layer".
"""

from __future__ import annotations

from typing import Iterator

# -- access-method selectors (db.h's DBTYPE) ----------------------------------
DB_BTREE = "btree"
DB_HASH = "hash"
DB_RECNO = "recno"

# -- seq/put flags (db.h's R_* values) -------------------------------------------
R_CURSOR = 1  #: seq: position at (or after) a supplied key
R_FIRST = 7  #: seq: first record
R_LAST = 8  #: seq: last record
R_NEXT = 9  #: seq: next record
R_PREV = 10  #: seq: previous record
R_NOOVERWRITE = 11  #: put: fail (return 1) if the key exists


class AccessMethod:
    """Abstract base: the db(3) operations every method implements."""

    #: the DBTYPE string of the concrete method
    type: str = "abstract"

    def get(self, key: bytes) -> bytes | None:
        """Data stored under ``key``, or None."""
        raise NotImplementedError

    def put(self, key: bytes, data: bytes, flags: int = 0) -> int:
        """Store ``key -> data``.  Returns 0, or 1 when R_NOOVERWRITE found
        an existing key."""
        raise NotImplementedError

    def delete(self, key: bytes) -> int:
        """Remove ``key``.  Returns 0, or 1 if the key was absent."""
        raise NotImplementedError

    def seq(
        self, flag: int, key: bytes | None = None
    ) -> tuple[bytes, bytes] | None:
        """Sequential access: R_FIRST/R_NEXT/R_LAST/R_PREV/R_CURSOR.
        Returns ``(key, data)`` or None at either end."""
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- conveniences shared by all methods -----------------------------------

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate in the method's native order (sorted for btree, record
        order for recno, bucket order for hash)."""
        rec = self.seq(R_FIRST)
        while rec is not None:
            yield rec
            rec = self.seq(R_NEXT)

    def keys(self) -> Iterator[bytes]:
        for k, _d in self.items():
            yield k

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __enter__(self) -> "AccessMethod":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
