"""The uniform key/data interface shared by every access method.

Mirrors 4.4BSD db(3) -- ``get``/``put``/``delete``/``sync``/``close`` with
the historical flag values -- with two modernizations over the 1991
interface:

- **cursors are first-class**: :meth:`AccessMethod.cursor` returns an
  independent :class:`Cursor` (``first``/``last``/``next``/``prev``/
  ``seek``), any number of which may scan one database concurrently.  The
  stateful db(3) ``seq(flag)`` call survives as a thin compatibility shim
  over a hidden default cursor.
- **databases are mappings**: ``db[key]``, ``key in db``, ``len(db)``,
  iteration, ``pop`` and ``update`` work on every method, with ``str``
  keys/values transparently UTF-8 encoded.

Keys and data are ``bytes``; recno keys are 1-based record numbers encoded
by the recno method itself, so "all of the access methods ... appear
identical to the application layer".
"""

from __future__ import annotations

import warnings
from typing import Iterator

from repro.core.errors import TransactionError
from repro.core.wal import TransactionContext

# -- access-method selectors (db.h's DBTYPE) ----------------------------------
DB_BTREE = "btree"
DB_HASH = "hash"
DB_RECNO = "recno"

# -- seq/put flags (db.h's R_* values) -------------------------------------------
R_CURSOR = 1  #: seq: position at (or after) a supplied key
R_FIRST = 7  #: seq: first record
R_LAST = 8  #: seq: last record
R_NEXT = 9  #: seq: next record
R_PREV = 10  #: seq: previous record
R_NOOVERWRITE = 11  #: put: fail (return 1) if the key exists


def _to_bytes(value) -> bytes:
    """UTF-8 encode ``str``; anything else passes through for the concrete
    method's own type checking."""
    if isinstance(value, str):
        return value.encode("utf-8")
    return value


class Cursor:
    """A first-class scan position over one database.

    Every positioning method returns the ``(key, data)`` pair now under the
    cursor, or ``None`` past either end.  Methods an access method cannot
    support raise ``ValueError`` (hash has no order, so only ``first`` and
    ``next`` work there -- as in 4.4BSD).

    Cursors are independent: each tracks its own position, and any number
    may be open on one database.  A cursor is also an iterator (resuming
    from its current position, starting at the first pair if never
    positioned) and a context manager.
    """

    def first(self) -> tuple[bytes, bytes] | None:
        raise NotImplementedError

    def last(self) -> tuple[bytes, bytes] | None:
        raise NotImplementedError

    def next(self) -> tuple[bytes, bytes] | None:
        raise NotImplementedError

    def prev(self) -> tuple[bytes, bytes] | None:
        raise NotImplementedError

    def seek(self, key: bytes) -> tuple[bytes, bytes] | None:
        """Position at ``key``, or the smallest key greater than it
        (db(3)'s R_CURSOR "at or after" contract)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the cursor (position state only; safe to skip)."""

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> tuple[bytes, bytes]:
        item = self.next()
        if item is None:
            raise StopIteration
        return item

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AccessMethod:
    """Abstract base: the db(3) operations every method implements."""

    #: the DBTYPE string of the concrete method
    type: str = "abstract"

    #: hidden default cursor backing the legacy ``seq`` shim
    _seq_cursor: Cursor | None = None

    def get(self, key: bytes) -> bytes | None:
        """Data stored under ``key``, or None."""
        raise NotImplementedError

    def put(
        self,
        key: bytes,
        data: bytes,
        flags: int | None = None,
        *,
        replace: bool | None = None,
    ) -> int:
        """Store ``key -> data``.  Returns 0, or 1 when ``replace=False``
        found an existing key.

        ``replace=True`` (the default) overwrites; ``replace=False`` is
        db(3)'s R_NOOVERWRITE.  The positional ``flags`` argument is
        **deprecated** -- passing ``R_NOOVERWRITE`` (or any int) emits a
        :class:`DeprecationWarning`; see docs/API.md for the migration.
        """
        if flags is not None:
            if replace is not None:
                raise TypeError(
                    "put() takes either the deprecated flags argument or "
                    "replace=, not both"
                )
            warnings.warn(
                "the positional flags argument to put() is deprecated; "
                "use put(key, data, replace=False) instead of "
                "put(key, data, R_NOOVERWRITE) -- see docs/API.md",
                DeprecationWarning,
                stacklevel=2,
            )
            replace = flags != R_NOOVERWRITE
        elif replace is None:
            replace = True
        return self._put(key, data, replace)

    def _put(self, key: bytes, data: bytes, replace: bool) -> int:
        """Concrete store operation behind the :meth:`put` shim.  Returns
        0 on store, 1 when ``replace=False`` found an existing key."""
        raise NotImplementedError

    def delete(self, key: bytes) -> int:
        """Remove ``key``.  Returns 0, or 1 if the key was absent."""
        raise NotImplementedError

    def cursor(self) -> Cursor:
        """A new independent scan cursor over this database."""
        raise NotImplementedError

    def stat(self) -> dict:
        """The database's metrics tree: one nested dict with the shared
        top-level keys ``type``/``nkeys``/``ops``/``buffer``/``io``/
        ``method`` (see docs/OBSERVABILITY.md)."""
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def compact(self) -> dict:
        """Rewrite the database into its minimal on-disk form in place,
        reclaiming the space delete churn left behind.  Returns a report
        dict with ``before``/``after`` (``pages``, ``bytes``),
        ``pages_reclaimed`` and ``nkeys``.  The handle stays open and
        usable throughout; raises
        :class:`~repro.core.errors.TransactionError` inside an open
        transaction."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- legacy stateful scan (4.4BSD seq) -------------------------------------

    def seq(
        self, flag: int, key: bytes | None = None
    ) -> tuple[bytes, bytes] | None:
        """Sequential access: R_FIRST/R_NEXT/R_LAST/R_PREV/R_CURSOR.
        Returns ``(key, data)`` or None at either end.

        Compatibility shim over a hidden default :class:`Cursor`; new code
        should hold its own cursor from :meth:`cursor` instead.
        """
        cur = self._seq_cursor
        if cur is None:
            cur = self._seq_cursor = self.cursor()
        if flag == R_FIRST:
            return cur.first()
        if flag == R_NEXT:
            return cur.next()
        if flag == R_LAST:
            return cur.last()
        if flag == R_PREV:
            return cur.prev()
        if flag == R_CURSOR:
            if key is None:
                raise ValueError("R_CURSOR requires a key")
            return cur.seek(key)
        raise ValueError(f"bad seq flag {flag}")

    # -- transactions ------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction: atomic commit/abort across every
        mutation until :meth:`commit`.  Requires opening the database
        with ``durability='wal'`` or ``'wal+fsync'`` (see
        docs/TRANSACTIONS.md); methods without a write-ahead log raise
        :class:`~repro.core.errors.TransactionError`."""
        raise TransactionError(
            f"the {self.type} handle was opened without durability=; "
            "transactions require durability='wal' or 'wal+fsync'"
        )

    def commit(self) -> None:
        """Commit the open transaction (group commit shares the fsync
        among concurrent committers under ``durability='wal+fsync'``)."""
        raise TransactionError("no transaction support without durability=")

    def abort(self) -> None:
        """Roll back the open transaction to its :meth:`begin` point."""
        raise TransactionError("no transaction support without durability=")

    def checkpoint(self) -> int:
        """Force a WAL checkpoint (transfer committed pages, fsync the
        table file, truncate the log); returns pages transferred."""
        raise TransactionError("no checkpoint support without durability=")

    def transaction(self) -> TransactionContext:
        """``with db.transaction(): ...`` -- commit on clean exit, abort
        if the body raises."""
        return TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction is open on this handle."""
        return False

    # -- batch operations --------------------------------------------------------

    def put_many(self, items, *, replace: bool = True) -> int:
        """Store many ``(key, data)`` pairs; returns how many were stored.

        The base implementation loops over :meth:`_put`; methods with a
        native batch path (hash) override it to amortize locking, page
        pins and trace spans across the whole batch.
        """
        stored = 0
        for key, data in items:
            if self._put(_to_bytes(key), _to_bytes(data), replace) == 0:
                stored += 1
        return stored

    def get_many(self, keys, default: bytes | None = None) -> list:
        """Values for ``keys``, order preserved; ``default`` where absent."""
        out = []
        for key in keys:
            data = self.get(_to_bytes(key))
            out.append(default if data is None else data)
        return out

    def delete_many(self, keys) -> int:
        """Remove many keys; returns how many were present."""
        removed = 0
        for key in keys:
            if self.delete(_to_bytes(key)) == 0:
                removed += 1
        return removed

    # -- conveniences shared by all methods -----------------------------------

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate in the method's native order (sorted for btree, record
        order for recno, bucket order for hash).  Uses a private cursor, so
        it never disturbs ``seq`` state or other cursors."""
        cur = self.cursor()
        item = cur.first()
        while item is not None:
            yield item
            item = cur.next()

    def keys(self) -> Iterator[bytes]:
        for k, _d in self.items():
            yield k

    def values(self) -> Iterator[bytes]:
        for _k, d in self.items():
            yield d

    def __enter__(self) -> "AccessMethod":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mapping facade ----------------------------------------------------------

    def _coerce_key(self, key) -> bytes:
        """Mapping-facade key coercion (str -> UTF-8 bytes); recno widens
        this to accept record numbers."""
        return _to_bytes(key)

    def __getitem__(self, key) -> bytes:
        data = self.get(self._coerce_key(key))
        if data is None:
            raise KeyError(key)
        return data

    def __setitem__(self, key, value) -> None:
        self.put(self._coerce_key(key), _to_bytes(value))

    def __delitem__(self, key) -> None:
        if self.delete(self._coerce_key(key)):
            raise KeyError(key)

    def __contains__(self, key) -> bool:
        return self.get(self._coerce_key(key)) is not None

    def __iter__(self) -> Iterator[bytes]:
        return self.keys()

    def get_default(self, key, default=None):
        """Mapping-style get: ``default`` instead of None-means-missing."""
        data = self.get(self._coerce_key(key))
        return default if data is None else data

    def pop(self, key, *default) -> bytes:
        k = self._coerce_key(key)
        data = self.get(k)
        if data is None:
            if default:
                return default[0]
            raise KeyError(key)
        self.delete(k)
        return data

    def setdefault(self, key, default: bytes = b"") -> bytes:
        k = self._coerce_key(key)
        data = self.get(k)
        if data is not None:
            return data
        default = _to_bytes(default)
        self.put(k, default)
        return default

    def update(self, other=(), **kw) -> None:
        """dict.update semantics, routed through :meth:`put_many` so hash
        databases get the batched fast path."""
        if hasattr(other, "items"):
            other = other.items()
        pairs = [(self._coerce_key(k), _to_bytes(v)) for k, v in other]
        pairs.extend((self._coerce_key(k), _to_bytes(v)) for k, v in kw.items())
        if pairs:
            self.put_many(pairs)
