"""The generic database access package the paper's conclusion describes.

"This hashing package is one access method which is part of a generic
database access package being developed at the University of California,
Berkeley.  It will include a btree access method as well as fixed and
variable length record access methods in addition to the hashed support
presented here.  All of the access methods are based on a key/data pair
interface and appear identical to the application layer."

That package shipped as 4.4BSD's db(3); this subpackage reproduces its
shape:

- :func:`db_open` -- one entry point, three access methods
  (:data:`DB_HASH`, :data:`DB_BTREE`, :data:`DB_RECNO`);
- a uniform get/put/delete/seq interface (:mod:`repro.access.api`) with
  the db(3) sequence flags (:data:`R_FIRST` ... :data:`R_CURSOR`);
- :mod:`repro.access.btree` -- a paged B+tree on the same buffer-pool
  substrate as the hash package;
- :mod:`repro.access.recno` -- fixed- and variable-length record files.
"""

from repro.access.api import (
    DB_BTREE,
    DB_HASH,
    DB_RECNO,
    R_CURSOR,
    R_FIRST,
    R_LAST,
    R_NEXT,
    R_NOOVERWRITE,
    R_PREV,
    AccessMethod,
    Cursor,
)
from repro.access.db import db_open, open

__all__ = [
    "open",
    "db_open",
    "AccessMethod",
    "Cursor",
    "DB_HASH",
    "DB_BTREE",
    "DB_RECNO",
    "R_FIRST",
    "R_NEXT",
    "R_LAST",
    "R_PREV",
    "R_CURSOR",
    "R_NOOVERWRITE",
]
