"""The hash access method behind the uniform db(3) interface.

Wraps :class:`repro.core.table.HashTable` (the paper's package) so "all of
the access methods ... appear identical to the application layer".  As in
4.4BSD, the hash method's scans are forward-only and unordered: a hash
cursor's ``last``/``prev``/``seek`` raise, exactly as db(3)'s hash
returned an error for them.
"""

from __future__ import annotations

import os

from repro.access.api import DB_HASH, AccessMethod, Cursor
from repro.core.table import HashTable
from repro.core.wal import TransactionContext


class HashCursor(Cursor):
    """Forward-only cursor over a hash table (no order, so no backward or
    keyed positioning)."""

    def __init__(self, table: HashTable) -> None:
        self._c = table.cursor()

    def first(self):
        return self._c.first()

    def next(self):
        return self._c.next()

    def _unsupported(self):
        raise ValueError(
            "the hash access method supports only R_FIRST/R_NEXT "
            "(4.4BSD hash had no ordered or backward scans)"
        )

    def last(self):
        self._unsupported()

    def prev(self):
        self._unsupported()

    def seek(self, key: bytes):
        self._unsupported()


class HashAccess(AccessMethod):
    """db(3) veneer over the paper's hash package."""

    type = DB_HASH

    def __init__(self, table: HashTable) -> None:
        self.table = table

    @classmethod
    def create(
        cls, path: str | os.PathLike | None = None, *, in_memory: bool = False, **kwargs
    ) -> "HashAccess":
        return cls(HashTable.create(path, in_memory=in_memory, **kwargs))

    @classmethod
    def open_file(cls, path: str | os.PathLike, **kwargs) -> "HashAccess":
        return cls(HashTable.open_file(path, **kwargs))

    def get(self, key: bytes) -> bytes | None:
        return self.table.get(key)

    def _put(self, key: bytes, data: bytes, replace: bool) -> int:
        stored = self.table.put(key, data, replace=replace)
        return 0 if stored else 1

    def delete(self, key: bytes) -> int:
        return 0 if self.table.delete(key) else 1

    # -- transactions: delegated to the underlying table -------------------------

    def begin(self) -> None:
        self.table.begin()

    def commit(self) -> None:
        self.table.commit()

    def abort(self) -> None:
        self.table.abort()

    def checkpoint(self) -> int:
        return self.table.checkpoint()

    def transaction(self) -> TransactionContext:
        return TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        return self.table.in_transaction

    @property
    def durability(self) -> str:
        return self.table.durability

    @property
    def wal_recovery(self) -> dict | None:
        return self.table.wal_recovery

    # -- native batch path (amortized locks, pins and trace spans) ---------------

    def put_many(self, items, *, replace: bool = True) -> int:
        return self.table.put_many(items, replace=replace)

    def get_many(self, keys, default: bytes | None = None) -> list:
        return self.table.get_many(keys, default)

    def delete_many(self, keys) -> int:
        return self.table.delete_many(keys)

    def bulk_load(self, items, *, nelem: int | None = None) -> int:
        """Presized bottom-up load of an empty table; see
        :meth:`repro.core.table.HashTable.bulk_load`."""
        return self.table.bulk_load(items, nelem=nelem)

    def cursor(self) -> HashCursor:
        return HashCursor(self.table)

    def stat(self) -> dict:
        return self.table.stat()

    @property
    def obs(self):
        return self.table.obs

    @property
    def hooks(self):
        return self.table.hooks

    def sync(self) -> None:
        self.table.sync()

    def compact(self) -> dict:
        """Online compaction: rebuild into a pristine presized image via
        the native :meth:`~repro.core.table.HashTable.bulk_load` fast
        path and swap it in under the write lock; see
        :meth:`repro.core.table.HashTable.compact`."""
        return self.table.compact()

    def close(self) -> None:
        self.table.close()

    @property
    def closed(self) -> bool:
        return self.table.closed

    def __len__(self) -> int:
        return len(self.table)

    @property
    def io_stats(self):
        return self.table.io_stats

    # -- tracing: delegated to the underlying table ------------------------------

    @property
    def tracer(self):
        return self.table.tracer

    @property
    def flight_recorder(self):
        return self.table.flight_recorder

    def enable_tracing(self, **kwargs):
        return self.table.enable_tracing(**kwargs)

    def disable_tracing(self) -> None:
        self.table.disable_tracing()
