"""The hash access method behind the uniform db(3) interface.

Wraps :class:`repro.core.table.HashTable` (the paper's package) so "all of
the access methods ... appear identical to the application layer".  As in
4.4BSD, the hash method's sequential scan is forward-only and unordered:
``R_PREV``, ``R_LAST`` and ``R_CURSOR`` raise, exactly as db(3)'s hash
returned an error for them.
"""

from __future__ import annotations

import os

from repro.access.api import (
    DB_HASH,
    R_FIRST,
    R_NEXT,
    R_NOOVERWRITE,
    AccessMethod,
)
from repro.core.table import HashTable


class HashAccess(AccessMethod):
    """db(3) veneer over the paper's hash package."""

    type = DB_HASH

    def __init__(self, table: HashTable) -> None:
        self.table = table

    @classmethod
    def create(
        cls, path: str | os.PathLike | None = None, *, in_memory: bool = False, **kwargs
    ) -> "HashAccess":
        return cls(HashTable.create(path, in_memory=in_memory, **kwargs))

    @classmethod
    def open_file(cls, path: str | os.PathLike, **kwargs) -> "HashAccess":
        return cls(HashTable.open_file(path, **kwargs))

    def get(self, key: bytes) -> bytes | None:
        return self.table.get(key)

    def put(self, key: bytes, data: bytes, flags: int = 0) -> int:
        stored = self.table.put(key, data, replace=(flags != R_NOOVERWRITE))
        return 0 if stored else 1

    def delete(self, key: bytes) -> int:
        return 0 if self.table.delete(key) else 1

    def seq(self, flag: int, key: bytes | None = None):
        if flag == R_FIRST:
            k = self.table.first_key()
        elif flag == R_NEXT:
            k = self.table.next_key()
        else:
            raise ValueError(
                "the hash access method supports only R_FIRST/R_NEXT "
                "(4.4BSD hash had no ordered or backward scans)"
            )
        if k is None:
            return None
        return k, self.table.get(k)

    def sync(self) -> None:
        self.table.sync()

    def close(self) -> None:
        self.table.close()

    @property
    def closed(self) -> bool:
        return self.table.closed

    def __len__(self) -> int:
        return len(self.table)

    @property
    def io_stats(self):
        return self.table.io_stats
