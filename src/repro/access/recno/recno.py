"""The recno access method: records addressed by 1-based record number.

The paper's conclusion promises "fixed and variable length record access
methods"; 4.4BSD shipped them as ``recno``, built on the btree code.  This
implementation follows that structure: records live in a
:class:`~repro.access.btree.btree.BTree` keyed by the big-endian record
number, which keeps record order, sequential scans and persistence for
free.

db(3) semantics reproduced:

- record numbers are 1-based and dense: writing past the end materializes
  the intervening records (empty for variable-length files, pad-filled for
  fixed-length ones);
- fixed-length files (``reclen``) pad short records with ``bpad`` and
  reject longer ones;
- deleting a record renumbers the ones after it (recno's defining --
  and expensive -- property), as does inserting in the middle;
- through the uniform :class:`~repro.access.api.AccessMethod` interface,
  keys are 8-byte big-endian record numbers, so the application layer
  stays identical across access methods.
"""

from __future__ import annotations

import os
import struct

from repro.access.api import (
    DB_RECNO,
    AccessMethod,
    Cursor,
)
from repro.access.btree.btree import BTree
from repro.core.errors import InvalidParameterError
from repro.core.wal import TransactionContext

_KEY = struct.Struct(">Q")


def encode_recno(recno: int) -> bytes:
    """Record number -> the 8-byte big-endian key used in the btree."""
    if recno < 1:
        raise InvalidParameterError(f"record numbers are 1-based, got {recno}")
    return _KEY.pack(recno)


def decode_recno(key: bytes) -> int:
    if len(key) != _KEY.size:
        raise InvalidParameterError(f"recno key must be 8 bytes, got {len(key)}")
    return _KEY.unpack(key)[0]


class Recno(AccessMethod):
    """Fixed- or variable-length record file."""

    type = DB_RECNO

    def __init__(self, tree: BTree, reclen: int | None, bpad: bytes) -> None:
        self._tree = tree
        self.reclen = reclen
        self.bpad = bpad
        self.nrecords = len(tree)
        self._txn_nrecords: int | None = None

    # ------------------------------------------------------------------ setup

    @classmethod
    def create(
        cls,
        path: str | os.PathLike | None = None,
        *,
        reclen: int | None = None,
        bpad: bytes = b"\0",
        bsize: int = 4096,
        cachesize: int = 256 * 1024,
        in_memory: bool = False,
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
        **wal_params,
    ) -> "Recno":
        """Create a record file.  ``reclen`` selects fixed-length mode.

        ``file_wrapper`` post-wraps the pager of the underlying btree
        (SimulatedDisk, FaultyPager ...).  ``durability=`` and the other
        WAL parameters forward to the btree (see docs/TRANSACTIONS.md).
        """
        if reclen is not None and reclen < 1:
            raise InvalidParameterError(f"reclen must be >= 1, got {reclen}")
        if len(bpad) != 1:
            raise InvalidParameterError("bpad must be a single byte")
        tree = BTree.create(
            path,
            bsize=bsize,
            cachesize=cachesize,
            in_memory=in_memory,
            observability=observability,
            concurrent=concurrent,
            tracing=tracing,
            file_wrapper=file_wrapper,
            **wal_params,
        )
        return cls(tree, reclen, bpad)

    @classmethod
    def open_file(
        cls,
        path: str | os.PathLike,
        *,
        reclen: int | None = None,
        bpad: bytes = b"\0",
        cachesize: int = 256 * 1024,
        readonly: bool = False,
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
        **wal_params,
    ) -> "Recno":
        tree = BTree.open_file(
            path,
            cachesize=cachesize,
            readonly=readonly,
            observability=observability,
            concurrent=concurrent,
            tracing=tracing,
            file_wrapper=file_wrapper,
            **wal_params,
        )
        return cls(tree, reclen, bpad)

    # -------------------------------------------------------------- shaping

    def _shape(self, data: bytes) -> bytes:
        """Apply fixed-length padding/validation."""
        if self.reclen is None:
            return data
        if len(data) > self.reclen:
            raise InvalidParameterError(
                f"record of {len(data)} bytes exceeds fixed reclen {self.reclen}"
            )
        return data + self.bpad * (self.reclen - len(data))

    def _empty(self) -> bytes:
        return self.bpad * self.reclen if self.reclen is not None else b""

    # -------------------------------------------------------------- native API

    def get_rec(self, recno: int) -> bytes | None:
        """Record ``recno`` or None past the end."""
        return self._tree.get(encode_recno(recno))

    def put_rec(self, recno: int, data: bytes) -> None:
        """Set record ``recno``, materializing any intervening records.

        Composite operations take the underlying tree's write lock for
        their whole extent (reentrant around the nested tree ops), so a
        concurrent reader never observes a half-renumbered file."""
        with self._tree._wr:
            data = self._shape(data)
            for missing in range(self.nrecords + 1, recno):
                self._tree.put(encode_recno(missing), self._empty())
            self._tree.put(encode_recno(recno), data)
            self.nrecords = max(self.nrecords, recno)

    def append(self, data: bytes) -> int:
        """Add a record at the end; returns its record number."""
        with self._tree._wr:
            recno = self.nrecords + 1
            self.put_rec(recno, data)
            return recno

    def insert_rec(self, recno: int, data: bytes) -> None:
        """Insert before ``recno``, renumbering subsequent records
        (recno's O(n) middle insert)."""
        with self._tree._wr:
            if recno > self.nrecords + 1:
                self.put_rec(recno, data)
                return
            for i in range(self.nrecords, recno - 1, -1):
                self._tree.put(encode_recno(i + 1), self._tree.get(encode_recno(i)))
            self._tree.put(encode_recno(recno), self._shape(data))
            self.nrecords += 1

    def delete_rec(self, recno: int) -> bool:
        """Delete ``recno``, renumbering subsequent records down."""
        with self._tree._wr:
            if recno < 1 or recno > self.nrecords:
                return False
            for i in range(recno, self.nrecords):
                self._tree.put(encode_recno(i), self._tree.get(encode_recno(i + 1)))
            self._tree.delete(encode_recno(self.nrecords))
            self.nrecords -= 1
            return True

    def records(self):
        """Iterate records in order (without their numbers)."""
        for _k, data in self._tree.items():
            yield data

    # ------------------------------------------------------- uniform interface

    def get(self, key: bytes) -> bytes | None:
        return self.get_rec(decode_recno(key))

    def _put(self, key: bytes, data: bytes, replace: bool) -> int:
        with self._tree._wr:
            recno = decode_recno(key)
            if not replace and self.get_rec(recno) is not None:
                return 1
            self.put_rec(recno, data)
            return 0

    def delete(self, key: bytes) -> int:
        return 0 if self.delete_rec(decode_recno(key)) else 1

    # -- transactions: delegated to the underlying btree --------------------------

    def begin(self) -> None:
        """Open an explicit transaction on the underlying btree; the
        record count is snapshotted so :meth:`abort` rewinds it too."""
        self._tree.begin()
        self._txn_nrecords = self.nrecords

    def commit(self) -> None:
        self._txn_nrecords = None
        self._tree.commit()

    def abort(self) -> None:
        self._tree.abort()
        if self._txn_nrecords is not None:
            self.nrecords = self._txn_nrecords
            self._txn_nrecords = None

    def checkpoint(self) -> int:
        return self._tree.checkpoint()

    def transaction(self) -> TransactionContext:
        return TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        return self._tree.in_transaction

    @property
    def durability(self) -> str:
        return self._tree.durability

    @property
    def wal_recovery(self) -> dict | None:
        return self._tree.wal_recovery

    def cursor(self) -> Cursor:
        """Cursor over (8-byte record-number key, record) pairs, in record
        order; it is the underlying btree's bidirectional cursor."""
        return self._tree.cursor()

    def _coerce_key(self, key) -> bytes:
        """Record numbers (int) are accepted directly in the mapping
        facade: ``rec[3]`` reads record 3."""
        if isinstance(key, int):
            return encode_recno(key)
        return super()._coerce_key(key)

    def stat(self) -> dict:
        """The underlying btree's metrics re-labelled for recno, with the
        record-file parameters added."""
        s = self._tree.stat()
        s["type"] = DB_RECNO
        s["nkeys"] = self.nrecords
        s["method"] = dict(s["method"])
        s["method"]["nrecords"] = self.nrecords
        s["method"]["reclen"] = self.reclen
        return s

    def sync(self) -> None:
        """Shared flush-before-sync ordering via the underlying btree."""
        self._tree.sync()

    def compact(self) -> dict:
        """Online compaction of the underlying btree (record numbers are
        its keys, so the rebuild preserves them); see
        :meth:`repro.access.btree.btree.BTree.compact`."""
        return self._tree.compact()

    def close(self) -> None:
        """Idempotent close via the underlying btree."""
        self._tree.close()

    @property
    def closed(self) -> bool:
        return self._tree.closed

    def __len__(self) -> int:
        return self.nrecords

    @property
    def io_stats(self):
        return self._tree.io_stats

    # -- tracing: delegated to the underlying btree ------------------------------

    @property
    def tracer(self):
        return self._tree.tracer

    @property
    def flight_recorder(self):
        return self._tree.flight_recorder

    def enable_tracing(self, **kwargs):
        return self._tree.enable_tracing(**kwargs)

    def disable_tracing(self) -> None:
        self._tree.disable_tracing()
