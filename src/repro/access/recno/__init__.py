"""The recno access method (fixed/variable-length records)."""

from repro.access.recno.recno import Recno

__all__ = ["Recno"]
