"""gdbm: extendible hashing with a doubling directory.

"The gdbm library is based on extensible hashing, a dynamic hashing
algorithm by Fagin et al.  This algorithm ... uses a directory that is a
collapsed representation of the radix search trie used by sdbm. ... a
directory consists of a search trie of depth n, containing 2^n bucket
addresses ... multiple entries of this directory may contain the same
bucket address as a result of directory doubling during bucket splitting."

Reproduced structure (one non-sparse file):

- a fixed header (magic, geometry, directory location, avail list);
- the directory: ``2**depth`` 8-byte bucket offsets (kept in memory,
  written through; superseded directories are freed to the avail list);
- buckets: fixed-size arrays of elements ``(hash32, key_size, data_size,
  record_offset)`` plus a per-bucket depth -- the paper's ``nb``, which
  appears in the directory ``2**(n - nb)`` times;
- records: ``key || data`` byte extents anywhere in the file (gdbm
  "allows for arbitrary-length data");
- the avail list: freed extents reused first-fit
  (:mod:`repro.baselines.gdbm.allocator`).

Splitting follows the paper's code fragment: a full bucket gets a buddy at
depth+1; the directory doubles only "any time a bucket's depth exceeds the
depth of the directory".
"""

from __future__ import annotations

import os
import struct
import time
from typing import Callable, Iterator

from repro.baselines.gdbm.allocator import AVAIL_MAX, ExtentAllocator
from repro.core.hashfuncs import fnv1a_hash
from repro.core.locking import NULL_GUARD, RWLock
from repro.obs.hooks import TraceHooks
from repro.obs.registry import Counter, Registry
from repro.obs.trace import TraceSupport
from repro.storage.bytefile import ByteFile

GDBM_MAGIC = 0x47444D31  # "GDM1"

#: header: magic, block_size, dir_offset, dir_depth, bucket_elems,
#: watermark, navail  -- then navail (offset,size) pairs.
_HDR = struct.Struct(">IIQIIQI")
_AVAIL_ENTRY = struct.Struct(">QQ")
_HEADER_SIZE = _HDR.size + AVAIL_MAX * _AVAIL_ENTRY.size

#: bucket element: hash32, key_size, data_size, record_offset
_ELEM = struct.Struct(">IIIQ")
_BUCKET_HDR = struct.Struct(">II")  # depth, count

DEFAULT_BLOCK_SIZE = 1024

#: Practical ceiling on directory depth.  The C library's directory lives
#: on disk and may deepen to 31 bits; this reproduction keeps the directory
#: in memory, so it caps the depth at 2**24 entries (128 MiB) by default.
#: Splitting a bucket of identical hashes hits this cap instead of
#: exhausting memory -- the same "colliding keys are fatal" failure class
#: the dbm family has.
DEFAULT_MAX_DIR_DEPTH = 24


class GdbmError(Exception):
    """A gdbm-level failure (corrupt file, bad usage)."""


class _Bucket:
    """In-memory form of one bucket page."""

    __slots__ = ("offset", "depth", "elems")

    def __init__(self, offset: int, depth: int, elems: list) -> None:
        self.offset = offset
        self.depth = depth
        #: list of (hash, key_size, data_size, record_offset)
        self.elems = elems


class Gdbm(TraceSupport):
    """One gdbm database file."""

    def __init__(
        self,
        path: str | os.PathLike,
        flags: str = "c",
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        hashfn: Callable[[bytes], int] | None = None,
        max_dir_depth: int = DEFAULT_MAX_DIR_DEPTH,
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
    ) -> None:
        t_open = time.perf_counter()
        if flags not in ("r", "w", "c", "n"):
            raise ValueError(f"flags must be 'r', 'w', 'c' or 'n', got {flags!r}")
        if not 1 <= max_dir_depth <= 31:
            raise ValueError(f"max_dir_depth must be in [1, 31], got {max_dir_depth}")
        self.max_dir_depth = max_dir_depth
        self.path = os.fspath(path)
        self.readonly = flags == "r"
        self._hash = hashfn or fnv1a_hash
        exists = os.path.exists(self.path)
        create = flags == "n" or (flags == "c" and not exists)
        self.file = ByteFile(self.path, create=create, readonly=self.readonly)
        if file_wrapper is not None:
            # e.g. FaultyPager for crash injection (byte-granular wrapping)
            self.file = file_wrapper(self.file)
        self._closed = False
        self.obs = Registry("gdbm", enabled=observability)
        self.hooks = TraceHooks()
        self.concurrent = concurrent
        self._file = self.file  # the mixin's handle for the default dump path
        self._init_tracing()
        self._c_splits = self.obs.attach(Counter("splits"))
        self._c_dir_doubles = self.obs.attach(Counter("dir_doubles"))
        # single-bucket cache (gdbm reads one bucket per access)
        self._cached: _Bucket | None = None
        if create:
            self.block_size = block_size
            self.bucket_elems = (block_size - _BUCKET_HDR.size) // _ELEM.size
            if self.bucket_elems < 2:
                raise ValueError(f"block_size {block_size} too small for gdbm buckets")
            self.alloc = ExtentAllocator(_HEADER_SIZE)
            first = self.alloc.alloc(self._bucket_size())
            self._write_bucket(_Bucket(first, 0, []))
            self.dir_depth = 0
            self.dir_offset = self.alloc.alloc(8)
            self.directory = [first]
            self._write_directory()
            self._write_header()
        else:
            self._read_header()
        # Byte-granular I/O surfaces as on_page_io events at block
        # granularity, so gdbm shows up in the same traces as the paged
        # formats (installed after bootstrap I/O so block_size is known).
        self.file.on_io = self._io_event
        if hasattr(self.file, "on_fault"):
            self.file.on_fault = self._fault_event
        #: ``concurrent=True`` serializes every operation exclusively:
        #: gdbm's single-bucket cache makes even a fetch a mutation, so
        #: there is no shared-reader mode to offer.  The same write-side
        #: RWLock as the new package, so the race harness can observe it.
        self._lock = RWLock() if concurrent else None
        self._guard = self._lock.writer if concurrent else NULL_GUARD
        if concurrent:
            self.file.stats.make_threadsafe()
            self.obs.make_threadsafe()
            self._lock.wait_hook = self._lock_wait_event
        if tracing:
            self._trace_open(t_open, "create" if create else "open")

    def _io_event(self, kind: str, offset: int, nbytes: int) -> None:
        hooks = self.hooks
        if hooks.on_page_io:
            hooks.emit(
                "on_page_io",
                {"kind": kind, "pageno": offset // self.block_size, "nbytes": nbytes},
            )

    # -- geometry ------------------------------------------------------------

    def _bucket_size(self) -> int:
        return _BUCKET_HDR.size + self.bucket_elems * _ELEM.size

    def _dir_index(self, h: int) -> int:
        """Extendible hashing uses the top ``depth`` bits of the hash."""
        if self.dir_depth == 0:
            return 0
        return h >> (32 - self.dir_depth)

    # -- header / directory I/O ------------------------------------------------

    def _write_header(self) -> None:
        avail = self.alloc.avail[:AVAIL_MAX]
        out = [
            _HDR.pack(
                GDBM_MAGIC,
                self.block_size,
                self.dir_offset,
                self.dir_depth,
                self.bucket_elems,
                self.alloc.watermark,
                len(avail),
            )
        ]
        for off, size in avail:
            out.append(_AVAIL_ENTRY.pack(off, size))
        out.append(b"\0" * (AVAIL_MAX - len(avail)) * _AVAIL_ENTRY.size)
        self.file.write_at(0, b"".join(out))

    def _read_header(self) -> None:
        """Load and validate the header; every field is range-checked so a
        torn or truncated file raises :class:`GdbmError` instead of, say,
        allocating a ``2**garbage``-entry directory."""
        try:
            raw = self.file.read_at(0, _HEADER_SIZE)
        except EOFError as exc:
            raise GdbmError(f"{self.path}: truncated gdbm header") from exc
        magic, block_size, dir_offset, dir_depth, bucket_elems, watermark, navail = (
            _HDR.unpack_from(raw, 0)
        )
        if magic != GDBM_MAGIC:
            raise GdbmError(f"{self.path}: not a gdbm file (bad magic {magic:#x})")
        if dir_depth > 31:
            raise GdbmError(f"{self.path}: corrupt header (dir_depth {dir_depth})")
        if bucket_elems < 2 or _BUCKET_HDR.size + bucket_elems * _ELEM.size > block_size:
            raise GdbmError(
                f"{self.path}: corrupt header (bucket_elems {bucket_elems} "
                f"for block_size {block_size})"
            )
        if navail > AVAIL_MAX:
            raise GdbmError(f"{self.path}: corrupt header (navail {navail})")
        file_size = self.file.size()
        if dir_offset + 8 * (1 << dir_depth) > file_size:
            raise GdbmError(
                f"{self.path}: corrupt header (directory at {dir_offset} "
                f"past EOF {file_size})"
            )
        self.block_size = block_size
        self.bucket_elems = bucket_elems
        self.dir_offset = dir_offset
        self.dir_depth = dir_depth
        self.alloc = ExtentAllocator(watermark)
        for i in range(navail):
            off, size = _AVAIL_ENTRY.unpack_from(raw, _HDR.size + i * _AVAIL_ENTRY.size)
            self.alloc.avail.append((off, size))
        raw_dir = self.file.read_at(self.dir_offset, 8 * (1 << dir_depth))
        self.directory = list(struct.unpack(f">{1 << dir_depth}Q", raw_dir))

    def _write_directory(self) -> None:
        self.file.write_at(
            self.dir_offset, struct.pack(f">{len(self.directory)}Q", *self.directory)
        )

    # -- bucket I/O ---------------------------------------------------------------

    def _read_bucket(self, offset: int) -> _Bucket:
        hooks = self.hooks
        if self._cached is not None and self._cached.offset == offset:
            if hooks.on_buffer:
                hooks.emit(
                    "on_buffer",
                    {"kind": "hit", "key": offset,
                     "pageno": offset // self.block_size},
                )
            return self._cached
        if hooks.on_buffer:
            hooks.emit(
                "on_buffer",
                {"kind": "miss", "key": offset,
                 "pageno": offset // self.block_size},
            )
        raw = self.file.read_at(offset, self._bucket_size())
        depth, count = _BUCKET_HDR.unpack_from(raw, 0)
        if count > self.bucket_elems:
            raise GdbmError(f"corrupt bucket at {offset}: count {count}")
        elems = [
            _ELEM.unpack_from(raw, _BUCKET_HDR.size + i * _ELEM.size)
            for i in range(count)
        ]
        bucket = _Bucket(offset, depth, elems)
        self._cached = bucket
        return bucket

    def _write_bucket(self, bucket: _Bucket) -> None:
        out = [_BUCKET_HDR.pack(bucket.depth, len(bucket.elems))]
        for elem in bucket.elems:
            out.append(_ELEM.pack(*elem))
        pad = self._bucket_size() - _BUCKET_HDR.size - len(bucket.elems) * _ELEM.size
        out.append(b"\0" * pad)
        self.file.write_at(bucket.offset, b"".join(out))
        self._cached = bucket

    # -- records ---------------------------------------------------------------------

    def _read_record(self, elem) -> tuple[bytes, bytes]:
        h, ksize, dsize, off = elem
        if ksize + dsize == 0:
            return b"", b""
        raw = self.file.read_at(off, ksize + dsize)
        return raw[:ksize], raw[ksize:]

    def _read_key(self, elem) -> bytes:
        _h, ksize, _dsize, off = elem
        if ksize == 0:
            return b""
        return self.file.read_at(off, ksize)

    def _alloc_record(self, key: bytes, data: bytes) -> int:
        """Write ``key || data`` into a fresh extent; empty records take no
        space (offset 0 is never dereferenced for them)."""
        if not key and not data:
            return 0
        off = self.alloc.alloc(len(key) + len(data))
        self.file.write_at(off, key + data)
        return off

    # -- operations -------------------------------------------------------------------

    def fetch(self, key: bytes) -> bytes | None:
        if self.tracer.enabled:
            return self._traced_op("get", None, self._guard, self._fetch_impl, key)
        with self._guard:
            return self._fetch_impl(key)

    def _fetch_impl(self, key: bytes) -> bytes | None:
        self._check_open()
        h = self._hash(key)
        bucket = self._read_bucket(self.directory[self._dir_index(h)])
        for elem in bucket.elems:
            if elem[0] == h and elem[1] == len(key) and self._read_key(elem) == key:
                return self._read_record(elem)[1]
        return None

    def store(self, key: bytes, data: bytes, *, replace: bool = True) -> bool:
        """Insert/replace; splits buckets and doubles the directory as
        needed.  Arbitrary-length keys and data are supported."""
        if self.tracer.enabled:
            return self._traced_op(
                "put", None, self._guard, self._store_impl, key, data, replace
            )
        with self._guard:
            return self._store_impl(key, data, replace)

    def _store_impl(self, key: bytes, data: bytes, replace: bool) -> bool:
        self._check_writable()
        h = self._hash(key)
        # replace path
        bucket = self._read_bucket(self.directory[self._dir_index(h)])
        for i, elem in enumerate(bucket.elems):
            if elem[0] == h and elem[1] == len(key) and self._read_key(elem) == key:
                if not replace:
                    return False
                self.alloc.free(elem[3], elem[1] + elem[2])
                off = self._alloc_record(key, data)
                bucket.elems[i] = (h, len(key), len(data), off)
                self._write_bucket(bucket)
                self._write_header()
                return True
        # insert path: split until the target bucket has room
        while True:
            bucket = self._read_bucket(self.directory[self._dir_index(h)])
            if len(bucket.elems) < self.bucket_elems:
                break
            self._split(bucket)
        off = self._alloc_record(key, data)
        bucket.elems.append((h, len(key), len(data), off))
        self._write_bucket(bucket)
        self._write_header()
        return True

    def _split(self, bucket: _Bucket) -> None:
        """The paper's code fragment: give the full bucket a buddy one
        level deeper; double the directory when the bucket's new depth
        exceeds the directory's."""
        new_depth = bucket.depth + 1
        if new_depth > self.max_dir_depth:
            raise GdbmError(
                f"gdbm: cannot split past directory depth {self.max_dir_depth} "
                "(colliding keys overflow a bucket)"
            )
        if new_depth > self.dir_depth:
            self._double_directory()
        self._c_splits.inc()
        new_off = self.alloc.alloc(self._bucket_size())
        # Redistribute on the bit below the bucket's old prefix (hashes are
        # consumed from the top, as extendible hashing prescribes).
        bit = 1 << (32 - new_depth)
        stay = [e for e in bucket.elems if not e[0] & bit]
        move = [e for e in bucket.elems if e[0] & bit]
        old = _Bucket(bucket.offset, new_depth, stay)
        new = _Bucket(new_off, new_depth, move)
        # Re-point the directory: the slice of entries formerly sharing the
        # old bucket now alternates between old and new on `bit`.
        span = 1 << (self.dir_depth - new_depth)  # entries per (new) bucket
        first = (
            self._dir_index(bucket.elems[0][0])
            if bucket.elems
            else self.directory.index(bucket.offset)
        )
        # Normalize to the start of the old bucket's 2*span-wide region.
        region = 2 * span
        start = (first // region) * region
        for i in range(start, start + span):
            self.directory[i] = old.offset
        for i in range(start + span, start + region):
            self.directory[i] = new.offset
        self._write_bucket(new)
        self._write_bucket(old)
        self._write_directory()

    def _double_directory(self) -> None:
        """Double the directory, duplicating every entry (the depths of
        unsplit buckets now differ from the directory's depth by one
        more)."""
        self._c_dir_doubles.inc()
        old_size = 8 * len(self.directory)
        self.directory = [off for off in self.directory for _ in (0, 1)]
        new_offset = self.alloc.alloc(8 * len(self.directory))
        self.alloc.free(self.dir_offset, old_size)
        self.dir_offset = new_offset
        self.dir_depth += 1
        self._write_directory()
        self._write_header()

    def delete(self, key: bytes) -> bool:
        if self.tracer.enabled:
            return self._traced_op("delete", None, self._guard, self._delete_impl, key)
        with self._guard:
            return self._delete_impl(key)

    def _delete_impl(self, key: bytes) -> bool:
        self._check_writable()
        h = self._hash(key)
        bucket = self._read_bucket(self.directory[self._dir_index(h)])
        for i, elem in enumerate(bucket.elems):
            if elem[0] == h and elem[1] == len(key) and self._read_key(elem) == key:
                self.alloc.free(elem[3], elem[1] + elem[2])
                del bucket.elems[i]
                self._write_bucket(bucket)
                self._write_header()
                return True
        return False

    # -- iteration ----------------------------------------------------------------------

    def _distinct_buckets(self) -> Iterator[_Bucket]:
        seen: set[int] = set()
        for off in self.directory:
            if off not in seen:
                seen.add(off)
                yield self._read_bucket(off)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Concurrent handles materialize the scan under the lock (stable
        snapshot)."""
        if self._lock is None:
            return self._iter_items()
        with self._guard:
            return iter(list(self._iter_items()))

    def _iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        for bucket in self._distinct_buckets():
            # Copy: _read_record goes through the single-bucket cache's file
            # and iteration must survive the cache moving on.
            for elem in list(bucket.elems):
                yield self._read_record(elem)

    def keys(self) -> Iterator[bytes]:
        for k, _d in self.items():
            yield k

    def firstkey(self) -> bytes | None:
        self._iter = self.keys()
        return next(self._iter, None)

    def nextkey(self) -> bytes | None:
        if not hasattr(self, "_iter"):
            return self.firstkey()
        return next(self._iter, None)

    # -- maintenance ----------------------------------------------------------------------

    def sync(self) -> None:
        """Flush-before-sync: buckets, records and the directory are
        written through, so sync writes the header (metadata last) and
        issues one fsync -- the ordering shared by every disk format in
        this repo."""
        if self.tracer.enabled:
            self._traced_op("sync", None, self._guard, self._sync_impl)
            return
        with self._guard:
            self._sync_impl()

    def _sync_impl(self) -> None:
        self._check_open()
        if not self.readonly:
            self._write_header()
        self.file.sync()

    def close(self) -> None:
        """Idempotent; syncs (same ordering as :meth:`sync`) before
        closing unless read-only."""
        with self._guard:
            if self._closed:
                return
            if not self.readonly:
                self._sync_impl()
            self._closed = True
            self.file.close()

    def stat(self) -> dict:
        """Metrics in the shared ``db.stat()`` shape (``type``, ``nkeys``,
        ``io``, ``method``), so prof and the CLI can report on a gdbm file
        the same way as on the paged access methods."""
        with self._guard:
            return self._stat_impl()

    def _stat_impl(self) -> dict:
        self._check_open()
        nkeys = sum(len(b.elems) for b in self._distinct_buckets())
        return {
            "type": "gdbm",
            "nkeys": nkeys,
            "io": self.file.stats.as_dict(),
            "method": {
                "block_size": self.block_size,
                "bucket_elems": self.bucket_elems,
                "dir_depth": self.dir_depth,
                "dir_entries": len(self.directory),
                "nbuckets": self.nbuckets(),
                "splits": self._c_splits.as_value(),
                "dir_doubles": self._c_dir_doubles.as_value(),
                "avail_extents": len(self.alloc.avail),
            },
        }

    def check(self) -> list[str]:
        """Consistency walk: bucket depths vs the directory, element hash
        prefixes vs the directory slot they are reachable from, and record
        extents within the file.  Returns problems found (empty = clean);
        I/O and parse failures are reported as problems, not raised."""
        with self._guard:
            return self._check_impl()

    def _check_impl(self) -> list[str]:
        self._check_open()
        problems: list[str] = []
        file_size = self.file.size()
        seen: set[int] = set()
        for slot, off in enumerate(self.directory):
            if off in seen:
                continue
            seen.add(off)
            try:
                bucket = self._read_bucket(off)
            except (GdbmError, EOFError, struct.error) as exc:
                problems.append(f"bucket at {off}: unreadable ({exc})")
                continue
            if bucket.depth > self.dir_depth:
                problems.append(
                    f"bucket at {off}: depth {bucket.depth} exceeds "
                    f"directory depth {self.dir_depth}"
                )
                continue
            # A depth-d bucket owns an aligned run of 2**(n-d) slots.
            span = 1 << (self.dir_depth - bucket.depth)
            start = (slot // span) * span
            for i in range(start, start + span):
                if self.directory[i] != off:
                    problems.append(
                        f"bucket at {off}: directory slot {i} points "
                        f"elsewhere (fragmented depth-{bucket.depth} run)"
                    )
                    break
            for h, ksize, dsize, roff in bucket.elems:
                if self.dir_depth and self.directory[self._dir_index(h)] != off:
                    problems.append(
                        f"bucket at {off}: element hash {h:#010x} is not "
                        "reachable from its directory slot"
                    )
                if ksize + dsize and roff + ksize + dsize > file_size:
                    problems.append(
                        f"bucket at {off}: record extent [{roff}, "
                        f"{roff + ksize + dsize}) past EOF {file_size}"
                    )
        return problems

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("operation on closed Gdbm")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ValueError("gdbm database is read-only")

    def __enter__(self) -> "Gdbm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def io_stats(self):
        return self.file.stats

    def nbuckets(self) -> int:
        return len({off for off in self.directory})
