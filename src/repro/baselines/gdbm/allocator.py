"""gdbm's free-space ("avail") management.

gdbm keeps its whole database in one non-sparse file; deleted records and
superseded directories leave byte extents behind that are recorded on an
avail list and reused first-fit before the file is extended.  The real
library chains avail blocks through the file; this reproduction keeps a
bounded in-header list (entries beyond the cap are leaked, which gdbm's
own format also does under some sequences) -- the allocation *behaviour*
(reuse before extend, first fit, remainder returned to the list) matches.
"""

from __future__ import annotations

#: Maximum avail entries persisted in the header.
AVAIL_MAX = 120


class ExtentAllocator:
    """First-fit byte-extent allocator with a bounded free list."""

    def __init__(self, watermark: int) -> None:
        if watermark < 0:
            raise ValueError("watermark must be non-negative")
        #: end-of-file growth point
        self.watermark = watermark
        #: list of (offset, size) free extents
        self.avail: list[tuple[int, int]] = []
        self.leaked_bytes = 0

    def alloc(self, size: int) -> int:
        """Return the offset of a free extent of ``size`` bytes."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        for i, (off, avail_size) in enumerate(self.avail):
            if avail_size >= size:
                remainder = avail_size - size
                if remainder > 0:
                    self.avail[i] = (off + size, remainder)
                else:
                    del self.avail[i]
                return off
        off = self.watermark
        self.watermark += size
        return off

    def free(self, offset: int, size: int) -> None:
        """Return an extent to the list (leaks it when the list is full)."""
        if size <= 0:
            return
        if len(self.avail) >= AVAIL_MAX:
            self.leaked_bytes += size
            return
        self.avail.append((offset, size))

    def free_bytes(self) -> int:
        return sum(size for _off, size in self.avail)
