"""gdbm baseline (Fagin et al. extendible hashing)."""

from repro.baselines.gdbm.gdbm import Gdbm, GdbmError

__all__ = ["Gdbm", "GdbmError"]
