"""System V hsearch: a fixed-size, memory-resident hash table.

Reproduces the behaviour the paper describes, including every compile-time
option of the AT&T source:

- **default** -- Knuth multiplicative primary hash; on collision a secondary
  multiplicative hash defines the probe interval, added modulo the table
  size until an empty slot is found (double hashing);
- **DIV** -- hash by division (modulo) with linear probing;
- **BRENT** -- Richard Brent's insertion-time rearrangement: once a probe
  chain exceeds a threshold (Brent suggests 2), colliding keys are shuffled
  to shorten retrieval chains at the cost of slower insertion;
- **CHAINED** -- collisions resolved with linked lists from the primary
  bucket; new entries prepend by default, or the chains are kept ordered
  with **SORTUP** / **SORTDOWN**;
- **USCR** -- a user-supplied hash function.

The historical shortcomings are faithful: the size is fixed at creation
(``TableFullError`` when it fills), there is one logical table per object
(the module-level functions mimic the single-global-table C interface),
and nothing can be stored to disk.
"""

from __future__ import annotations

from typing import Callable

from repro.core.hashfuncs import MASK32

FIND = 0
ENTER = 1

#: Brent's suggested rearrangement threshold.
BRENT_THRESHOLD = 2


class TableFullError(Exception):
    """hsearch's 'table full' condition: ENTER found no empty slot."""


def _next_prime(n: int) -> int:
    """Smallest prime >= n (hcreate sized its table to a prime)."""

    def is_prime(m: int) -> bool:
        if m < 2:
            return False
        if m % 2 == 0:
            return m == 2
        f = 3
        while f * f <= m:
            if m % f == 0:
                return False
            f += 2
        return True

    candidate = max(n, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def _fold_key(key: bytes) -> int:
    """Fold a byte string to a 32-bit integer (the 'convert string to
    integer' step preceding the multiplicative hash)."""
    raw = 0
    for c in key:
        raw = (raw * 31 + c) & MASK32
    return raw


class Hsearch:
    """One hsearch table.

    Parameters
    ----------
    nelem:
        Requested capacity; rounded up to a prime.  With the open-addressed
        variants this is a hard limit.
    variant:
        ``'default'`` (multiplicative + double hashing), ``'div'`` (modulo
        + linear probing), or ``'chained'`` (linked lists).
    brent:
        Enable Brent rearrangement (open-addressed variants only).
    order:
        For ``'chained'``: ``None`` (prepend), ``'up'`` (SORTUP) or
        ``'down'`` (SORTDOWN).
    hashfn:
        Optional user hash function (USCR), ``bytes -> int``.
    """

    def __init__(
        self,
        nelem: int,
        *,
        variant: str = "default",
        brent: bool = False,
        order: str | None = None,
        hashfn: Callable[[bytes], int] | None = None,
    ) -> None:
        if nelem < 1:
            raise ValueError(f"nelem must be >= 1, got {nelem}")
        if variant not in ("default", "div", "chained"):
            raise ValueError(f"unknown variant {variant!r}")
        if brent and variant == "chained":
            raise ValueError("BRENT applies to open addressing, not CHAINED")
        if order is not None and variant != "chained":
            raise ValueError("SORTUP/SORTDOWN apply only to CHAINED")
        if order not in (None, "up", "down"):
            raise ValueError(f"order must be None, 'up' or 'down', got {order!r}")
        self.size = _next_prime(max(nelem, 3))
        self.variant = variant
        self.brent = brent
        self.order = order
        self._user_hash = hashfn
        self.nkeys = 0
        self.probes = 0  # total probe count, for the ablation benchmarks
        if variant == "chained":
            self._chains: list[list[tuple[bytes, bytes]]] = [
                [] for _ in range(self.size)
            ]
        else:
            self._keys: list[bytes | None] = [None] * self.size
            self._data: list[bytes | None] = [None] * self.size

    # -- hashing ------------------------------------------------------------

    def _primary(self, key: bytes) -> int:
        if self._user_hash is not None:
            return self._user_hash(key) % self.size
        raw = _fold_key(key)
        if self.variant == "div":
            return raw % self.size
        # Knuth multiplicative: multiply by 2^32/phi, take the high bits by
        # reducing modulo the (prime) table size.
        return ((raw * 2654435761) & MASK32) % self.size

    def _interval(self, key: bytes) -> int:
        if self.variant == "div":
            return 1  # linear probing
        raw = _fold_key(key)
        # Secondary multiplicative hash; never zero, never a multiple of the
        # (prime) size.
        return 1 + (((raw * 40503) & MASK32) % (self.size - 1))

    def _probe_seq(self, key: bytes):
        """Yield the probe sequence of ``key`` (size slots, no repeats for
        prime table sizes)."""
        slot = self._primary(key)
        step = self._interval(key)
        for _ in range(self.size):
            yield slot
            slot = (slot + step) % self.size

    # -- open addressing ------------------------------------------------------

    def _oa_find(self, key: bytes) -> int | None:
        for slot in self._probe_seq(key):
            self.probes += 1
            resident = self._keys[slot]
            if resident is None:
                return None
            if resident == key:
                return slot
        return None

    def _oa_enter(self, key: bytes, data: bytes) -> bytes:
        path: list[int] = []
        for slot in self._probe_seq(key):
            self.probes += 1
            resident = self._keys[slot]
            if resident is None:
                if self.brent and len(path) > BRENT_THRESHOLD:
                    slot = self._brent_rearrange(path, slot)
                self._keys[slot] = key
                self._data[slot] = data
                self.nkeys += 1
                return data
            if resident == key:
                return self._data[slot]
            path.append(slot)
        raise TableFullError(f"hsearch table of {self.size} slots is full")

    def _brent_rearrange(self, path: list[int], empty_slot: int) -> int:
        """Brent's shuffle: try to move a key that collided on the new
        key's probe path one step along *its own* probe sequence into an
        empty slot, freeing an earlier (cheaper) slot for the new key.

        Returns the slot where the new key should be placed.
        """
        for depth, slot in enumerate(path):
            if depth + 2 >= len(path):
                break  # no saving possible beyond this point
            victim = self._keys[slot]
            step = self._interval(victim)
            nxt = (slot + step) % self.size
            # one forward step only: the classic cost-1 displacement
            if self._keys[nxt] is None:
                self._keys[nxt] = victim
                self._data[nxt] = self._data[slot]
                self._keys[slot] = None
                self._data[slot] = None
                return slot
        return empty_slot

    # -- chaining ----------------------------------------------------------------

    def _chain_find(self, key: bytes) -> bytes | None:
        chain = self._chains[self._primary(key)]
        for k, d in chain:
            self.probes += 1
            if k == key:
                return d
        return None

    def _chain_enter(self, key: bytes, data: bytes) -> bytes:
        chain = self._chains[self._primary(key)]
        for k, d in chain:
            self.probes += 1
            if k == key:
                return d
        entry = (key, data)
        if self.order is None:
            chain.insert(0, entry)
        elif self.order == "up":
            i = 0
            while i < len(chain) and chain[i][0] < key:
                i += 1
            chain.insert(i, entry)
        else:  # down
            i = 0
            while i < len(chain) and chain[i][0] > key:
                i += 1
            chain.insert(i, entry)
        self.nkeys += 1
        return data

    # -- public interface ------------------------------------------------------------

    def hsearch(self, key: bytes, data: bytes | None, action: int) -> bytes | None:
        """The hsearch(3) call: FIND or ENTER."""
        if action == FIND:
            return self.find(key)
        if action == ENTER:
            if data is None:
                raise ValueError("ENTER requires data")
            return self.enter(key, data)
        raise ValueError(f"bad hsearch action {action}")

    def find(self, key: bytes) -> bytes | None:
        if self.variant == "chained":
            return self._chain_find(key)
        slot = self._oa_find(key)
        return None if slot is None else self._data[slot]

    def enter(self, key: bytes, data: bytes) -> bytes:
        """Insert if absent; returns the stored data (existing wins, as in
        System V).  Raises :class:`TableFullError` when no slot is free."""
        if self.variant == "chained":
            return self._chain_enter(key, data)
        return self._oa_enter(key, data)

    def __contains__(self, key: bytes) -> bool:
        return self.find(key) is not None

    def __len__(self) -> int:
        return self.nkeys

    def hdestroy(self) -> None:
        """Release the table (kept for interface parity)."""
        if self.variant == "chained":
            self._chains = []
        else:
            self._keys = []
            self._data = []
        self.nkeys = 0
