"""System V hsearch baseline."""

from repro.baselines.hsearch.hsearch import (
    ENTER,
    FIND,
    Hsearch,
    TableFullError,
)

__all__ = ["Hsearch", "TableFullError", "ENTER", "FIND"]
