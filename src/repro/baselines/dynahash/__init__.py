"""dynahash baseline (Larson 1988 in-memory linear hashing)."""

from repro.baselines.dynahash.dynahash import DynaHash

__all__ = ["DynaHash"]
