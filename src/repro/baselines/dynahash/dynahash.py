"""dynahash: Larson's 1988 in-memory linear hashing.

"The dynahash library, written by Esmond Pitt, implements Larson's linear
hashing algorithm with an hsearch compatible interface.  Intuitively, a
hash table begins as a single bucket and grows in generations, where a
generation corresponds to a doubling in the size of the hash table."

Buckets are linked lists in memory (no pages); the directory is segmented
exactly like the on-disk package's bucket array.  Splitting is purely
*controlled*: a bucket is split (in linear order) every time the table's
total number of keys divided by its number of buckets exceeds the fill
factor.  This is the design the paper's new package borrows its split
schedule from, so keeping the two implementations structurally parallel
makes the ablation benchmarks meaningful.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.bucketarray import BucketArray
from repro.core.hashfuncs import HashFunction, larson_hash

#: dynahash's default fill factor (keys per bucket before a split).
DEFAULT_FFACTOR = 5


class DynaHash:
    """An in-memory linear hash table of byte-string pairs.

    ``nelem`` mirrors hcreate: "the initial number of buckets is set to
    nelem rounded to the next higher power of two" (scaled by the fill
    factor as dynahash did), and unlike hsearch the table keeps growing
    past it.
    """

    def __init__(
        self,
        nelem: int = 1,
        *,
        ffactor: int = DEFAULT_FFACTOR,
        hashfn: HashFunction | Callable[[bytes], int] | None = None,
    ) -> None:
        if nelem < 1:
            raise ValueError(f"nelem must be >= 1, got {nelem}")
        if ffactor < 1:
            raise ValueError(f"ffactor must be >= 1, got {ffactor}")
        self.ffactor = ffactor
        self._hash = hashfn or larson_hash
        nbuckets = 1
        while nbuckets * ffactor < nelem:
            nbuckets <<= 1
        self.max_bucket = nbuckets - 1
        self.high_mask = (nbuckets << 1) - 1
        self.low_mask = nbuckets - 1
        self.nkeys = 0
        self.splits = 0
        self.buckets = BucketArray()
        self.buckets.grow_to(nbuckets)

    # -- addressing (identical mask logic to the paper's package) -------------

    def _bucket_of(self, key: bytes) -> int:
        h = self._hash(key)
        bucket = h & self.high_mask
        if bucket > self.max_bucket:
            bucket = h & self.low_mask
        return bucket

    def _chain(self, bucket: int) -> list:
        chain = self.buckets.get(bucket)
        if chain is None:
            chain = []
            self.buckets.set(bucket, chain)
        return chain

    # -- operations --------------------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        for k, d in self._chain(self._bucket_of(key)):
            if k == key:
                return d
        return default

    def put(self, key: bytes, data: bytes, *, replace: bool = True) -> bool:
        chain = self._chain(self._bucket_of(key))
        for i, (k, _d) in enumerate(chain):
            if k == key:
                if not replace:
                    return False
                chain[i] = (key, data)
                return True
        chain.append((key, data))
        self.nkeys += 1
        if self.nkeys > self.ffactor * (self.max_bucket + 1):
            self._expand()
        return True

    def delete(self, key: bytes) -> bool:
        chain = self._chain(self._bucket_of(key))
        for i, (k, _d) in enumerate(chain):
            if k == key:
                del chain[i]
                self.nkeys -= 1
                return True
        return False

    def _expand(self) -> None:
        """Controlled split of the next bucket in linear order."""
        new_bucket = self.max_bucket + 1
        if new_bucket > self.high_mask:
            self.low_mask = self.high_mask
            self.high_mask = new_bucket | self.low_mask
        old_bucket = new_bucket & self.low_mask
        self.max_bucket = new_bucket
        self.buckets.grow_to(new_bucket + 1)
        self.splits += 1
        old_chain = self._chain(old_bucket)
        stay: list = []
        move: list = []
        for k, d in old_chain:
            (stay if self._bucket_of(k) == old_bucket else move).append((k, d))
        self.buckets.set(old_bucket, stay)
        self.buckets.set(new_bucket, move)

    # -- iteration / dunder -----------------------------------------------------------

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        for bucket in range(self.max_bucket + 1):
            chain = self.buckets.get(bucket)
            if chain:
                yield from chain

    def keys(self) -> Iterator[bytes]:
        for k, _d in self.items():
            yield k

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.nkeys

    def check_invariants(self) -> None:
        """Every key lives in the bucket it hashes to; counts agree."""
        count = 0
        for bucket in range(self.max_bucket + 1):
            for k, _d in self.buckets.get(bucket) or []:
                assert self._bucket_of(k) == bucket
                count += 1
        assert count == self.nkeys
        assert self.low_mask == self.high_mask >> 1
