"""From-scratch implementations of every hashing scheme the paper discusses.

These are the comparison points of the evaluation, implemented faithfully to
their historical designs (including their shortcomings -- dbm's oversize
failures, hsearch's fixed size -- because those shortcomings are what the
paper's new package fixes):

- :mod:`repro.baselines.dbm` -- Ken Thompson's dbm and the ndbm interface.
- :mod:`repro.baselines.sdbm` -- Ozan Yigit's sdbm (Larson 1978 dynamic
  hashing over a linearized radix trie).
- :mod:`repro.baselines.gdbm` -- GNU gdbm (Fagin et al. extendible hashing
  with a doubling directory).
- :mod:`repro.baselines.hsearch` -- System V hsearch with the DIV, BRENT,
  CHAINED, SORTUP and SORTDOWN compile-time options.
- :mod:`repro.baselines.dynahash` -- Esmond Pitt's dynahash (Larson 1988
  in-memory linear hashing).
"""

from repro.baselines.dbm.ndbm import Ndbm
from repro.baselines.dynahash.dynahash import DynaHash
from repro.baselines.gdbm.gdbm import Gdbm
from repro.baselines.hsearch.hsearch import Hsearch, TableFullError
from repro.baselines.sdbm.sdbm import Sdbm

__all__ = ["Ndbm", "Sdbm", "Gdbm", "Hsearch", "TableFullError", "DynaHash"]
