"""sdbm baseline (Larson 1978 dynamic hashing, Yigit's simplification)."""

from repro.baselines.sdbm.sdbm import Sdbm, SdbmError

__all__ = ["Sdbm", "SdbmError"]
