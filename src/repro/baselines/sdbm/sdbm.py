"""sdbm: Larson's 1978 dynamic hashing over a linearized radix trie.

"The sdbm library is based on a simplified implementation of Larson's 1978
dynamic hashing algorithm including the refinements and variations of
section 5 ... Using a single radix trie to avoid the first hash function,
replacing the pseudo-random number generator with a well designed,
bit-randomizing hash function, and using the portion of the hash value
exposed during the trie traversal as a direct bucket address results in an
access function that works very similar to Thompson's algorithm" -- the
paper's traversal:

.. code-block:: c

    for (mask = 0; isbitset(tbit); mask = (mask << 1) + 1)
        if (hash & (1 << hbit++))
            tbit = 2 * tbit + 2;    /* right son  */
        else
            tbit = 2 * tbit + 1;    /* left son   */
    bucket = hash & mask;

The trie is stored as a bit array in the ``.dir`` file (bit set = internal/
split node); data blocks live in the sparse ``.pag`` file, one page read
per access (single-block cache), exactly like dbm.  The hash is sdbm's
65599 polynomial.  Interface-compatible with ndbm, "but internal details of
the access function ... make the two incompatible at the database level."
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterator

from repro.baselines.dbm.bitmap import DirBitmap
from repro.core.constants import PAGE_HDR_SIZE
from repro.core.hashfuncs import sdbm_hash
from repro.core.locking import NULL_GUARD, RWLock
from repro.core.pages import PageFullError, PageView, empty_page, pair_bytes_needed
from repro.obs.hooks import TraceHooks
from repro.obs.trace import TraceSupport
from repro.storage.pager import open_pager

#: sdbm's historical PBLKSIZ.
DEFAULT_BLOCK_SIZE = 1024

MAX_SPLIT_DEPTH = 32


class SdbmError(Exception):
    """An sdbm failure the original library also produced."""


class Sdbm(TraceSupport):
    """One sdbm database: sparse ``.pag`` data blocks plus a ``.dir``
    linearized-radix-trie bitmap."""

    def __init__(
        self,
        name: str | os.PathLike,
        flags: str = "c",
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        hashfn: Callable[[bytes], int] | None = None,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
    ) -> None:
        t_open = time.perf_counter()
        if flags not in ("r", "w", "c", "n"):
            raise ValueError(f"flags must be 'r', 'w', 'c' or 'n', got {flags!r}")
        base = os.fspath(name)
        self.pag_path = base + ".pag"
        self.dir_path = base + ".dir"
        self.readonly = flags == "r"
        self._hash = hashfn or sdbm_hash
        exists = os.path.exists(self.pag_path)
        create = flags == "n" or (flags == "c" and not exists)
        if create or not os.path.exists(self.dir_path):
            self.trie = DirBitmap()
            self.trie.block_size = block_size
        else:
            self.trie = DirBitmap.load(self.dir_path)
        # The stored block size wins on reopen (compile-time constant in C).
        self.block_size = self.trie.block_size or block_size
        # Crash detection: a .pag without its .dir, or a .dir whose dirty
        # flag was never cleared, is the wreck of an unclean shutdown.
        self._was_unclean = self.trie.dirty or (
            not create and exists and not os.path.exists(self.dir_path)
        )
        if not self.readonly:
            # Mark the whole write session dirty up front; close() clears
            # the flag only after the data fsync.
            self.trie.dirty = True
            self.trie.save(self.dir_path)
        # e.g. SimulatedDisk for modelled I/O time or FaultyPager for
        # crash injection
        self.pag = open_pager(self.pag_path, pagesize=self.block_size,
                              create=create, readonly=self.readonly,
                              wrapper=file_wrapper)
        self._closed = False
        self._cached_blkno: int | None = None
        self._cached_page: bytearray | None = None
        self._cached_dirty = False
        self.hooks = TraceHooks()
        self.concurrent = concurrent
        self._file = self.pag  # the mixin's handle for the default dump path
        self._init_tracing()
        self.pag.on_page_io = self._page_io_event
        if hasattr(self.pag, "on_fault"):
            self.pag.on_fault = self._fault_event
        #: ``concurrent=True`` serializes every operation exclusively:
        #: sdbm's single-block cache makes even a fetch a mutation, so
        #: there is no shared-reader mode to offer.  The same write-side
        #: RWLock as the new package, so the race harness can observe it.
        self._lock = RWLock() if concurrent else None
        self._guard = self._lock.writer if concurrent else NULL_GUARD
        if concurrent:
            self.pag.stats.make_threadsafe()
            self._lock.wait_hook = self._lock_wait_event
        if tracing:
            self._trace_open(t_open, "create" if create else "open")

    def _page_io_event(self, kind: str, pageno: int, nbytes: int) -> None:
        hooks = self.hooks
        if hooks.on_page_io:
            hooks.emit(
                "on_page_io", {"kind": kind, "pageno": pageno, "nbytes": nbytes}
            )

    # -- trie traversal -----------------------------------------------------------

    def _access(self, h: int) -> tuple[int, int, int, int]:
        """Walk the linearized trie; returns ``(bucket, mask, nbits, tbit)``
        where ``tbit`` is the external node reached."""
        tbit = 0
        hbit = 0
        mask = 0
        while self.trie.is_set(tbit):
            if h & (1 << hbit):
                tbit = 2 * tbit + 2  # right son
            else:
                tbit = 2 * tbit + 1  # left son
            hbit += 1
            mask = (mask << 1) + 1
        return h & mask, mask, hbit, tbit

    # -- block cache (same single-buffer scheme as dbm) ------------------------------

    def _read_block(self, blkno: int) -> bytearray:
        hooks = self.hooks
        if blkno == self._cached_blkno:
            if hooks.on_buffer:
                hooks.emit("on_buffer", {"kind": "hit", "key": blkno, "pageno": blkno})
            return self._cached_page
        if hooks.on_buffer:
            hooks.emit("on_buffer", {"kind": "miss", "key": blkno, "pageno": blkno})
        self._flush_block()
        page = bytearray(self.pag.read_page(blkno))
        view = PageView(page)
        if view.looks_uninitialized():
            view.initialize()
        self._cached_blkno = blkno
        self._cached_page = page
        self._cached_dirty = False
        return page

    def _flush_block(self) -> None:
        if self._cached_dirty and self._cached_blkno is not None:
            self.pag.write_page(self._cached_blkno, bytes(self._cached_page))
            self._cached_dirty = False

    # -- operations -------------------------------------------------------------------

    def fetch(self, key: bytes) -> bytes | None:
        if self.tracer.enabled:
            return self._traced_op("get", None, self._guard, self._fetch_impl, key)
        with self._guard:
            return self._fetch_impl(key)

    def _fetch_impl(self, key: bytes) -> bytes | None:
        self._check_open()
        bucket, _mask, _nbits, _tbit = self._access(self._hash(key))
        view = PageView(self._read_block(bucket))
        i = view.find_inline(key)
        if i < 0:
            return None
        return view.get_pair(i)[1]

    def store(self, key: bytes, data: bytes, *, replace: bool = True) -> bool:
        if self.tracer.enabled:
            return self._traced_op(
                "put", None, self._guard, self._store_impl, key, data, replace
            )
        with self._guard:
            return self._store_impl(key, data, replace)

    def _store_impl(self, key: bytes, data: bytes, replace: bool) -> bool:
        self._check_writable()
        if pair_bytes_needed(len(key), len(data)) + PAGE_HDR_SIZE > self.block_size:
            raise SdbmError(
                f"sdbm: key+data of {len(key) + len(data)} bytes exceed the "
                f"{self.block_size}-byte block size"
            )
        h = self._hash(key)
        for _attempt in range(MAX_SPLIT_DEPTH + 1):
            bucket, _mask, nbits, tbit = self._access(h)
            page = self._read_block(bucket)
            view = PageView(page)
            i = view.find_inline(key)
            if i >= 0:
                if not replace:
                    return False
                view.delete_slot(i)
            try:
                view.add_pair(key, data)
            except PageFullError:
                if nbits >= MAX_SPLIT_DEPTH:
                    break
                self._split(bucket, nbits, tbit)
                continue
            self._cached_dirty = True
            if bucket > self.trie.maxbuck:
                self.trie.maxbuck = bucket
            return True
        raise SdbmError(
            "sdbm: cannot store -- colliding keys exceed block size "
            "(trie depth exhausted)"
        )

    def _split(self, bucket: int, nbits: int, tbit: int) -> None:
        """Make external node ``tbit`` internal and redistribute its bucket
        on hash bit ``nbits``."""
        self.trie.set(tbit)
        new_bit = 1 << nbits
        buddy = bucket | new_bit
        old_page = self._read_block(bucket)
        view = PageView(old_page)
        stay = empty_page(self.block_size)
        move = empty_page(self.block_size)
        stay_view = PageView(stay)
        move_view = PageView(move)
        for i in range(view.nslots):
            k, d = view.get_pair(i)
            dest = move_view if self._hash(k) & new_bit else stay_view
            dest.add_pair(k, d)
        self._cached_page = stay
        self._cached_dirty = True
        self.pag.write_page(buddy, bytes(move))
        if buddy > self.trie.maxbuck:
            self.trie.maxbuck = buddy

    def delete(self, key: bytes) -> bool:
        if self.tracer.enabled:
            return self._traced_op("delete", None, self._guard, self._delete_impl, key)
        with self._guard:
            return self._delete_impl(key)

    def _delete_impl(self, key: bytes) -> bool:
        self._check_writable()
        bucket, _mask, _nbits, _tbit = self._access(self._hash(key))
        view = PageView(self._read_block(bucket))
        i = view.find_inline(key)
        if i < 0:
            return False
        view.delete_slot(i)
        self._cached_dirty = True
        return True

    # -- sequential access -----------------------------------------------------------

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Scan blocks 0..maxbuck in order; concurrent handles materialize
        the scan under the lock (stable snapshot)."""
        if self._lock is None:
            return self._iter_items()
        with self._guard:
            return iter(list(self._iter_items()))

    def _iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        for blkno in range(self.trie.maxbuck + 1):
            view = PageView(self._read_block(blkno))
            for i in range(view.nslots):
                yield view.get_pair(i)

    def keys(self) -> Iterator[bytes]:
        for k, _d in self.items():
            yield k

    def firstkey(self) -> bytes | None:
        self._iter = self.keys()
        return next(self._iter, None)

    def nextkey(self) -> bytes | None:
        if not hasattr(self, "_iter"):
            return self.firstkey()
        return next(self._iter, None)

    # -- maintenance --------------------------------------------------------------------

    def sync(self) -> None:
        """Flush-before-sync: dirty block, then the ``.dir`` trie, then one
        fsync of the ``.pag`` file (the ordering shared by every disk
        format in this repo)."""
        if self.tracer.enabled:
            self._traced_op("sync", None, self._guard, self._sync_impl)
            return
        with self._guard:
            self._sync_impl()

    def _sync_impl(self) -> None:
        self._check_open()
        self._flush_block()
        if not self.readonly:
            self.trie.save(self.dir_path)
        self.pag.sync()

    def close(self) -> None:
        """Idempotent; syncs (same ordering as :meth:`sync`) before closing
        unless read-only, then clears the .dir dirty flag -- the commit
        record a crash leaves set."""
        with self._guard:
            if self._closed:
                return
            if not self.readonly:
                self._sync_impl()
                self.trie.dirty = False
                self.trie.save(self.dir_path)
            self._closed = True
            self.pag.close()

    def check(self) -> list[str]:
        """Consistency walk mirroring :meth:`DbmFile.check`: every key must
        land in its own block under the trie traversal; pages must parse.
        Returns problems found (empty = clean); raises on structurally
        corrupt blocks."""
        with self._guard:
            return self._check_impl()

    def _check_impl(self) -> list[str]:
        self._check_open()
        problems: list[str] = []
        if self._was_unclean:
            problems.append(
                "unclean shutdown: the .dir dirty flag was never cleared "
                "(blocks may contain torn writes)"
            )
        for blkno in range(self.trie.maxbuck + 1):
            view = PageView(self._read_block(blkno))
            for i in range(view.nslots):
                k, _d = view.get_pair(i)
                bucket, _mask, _nbits, _tbit = self._access(self._hash(k))
                if bucket != blkno:
                    problems.append(
                        f"block {blkno}: key {k!r} belongs in bucket {bucket}"
                    )
        return problems

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("operation on closed Sdbm")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ValueError("sdbm database is read-only")

    def __enter__(self) -> "Sdbm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def io_stats(self):
        return self.pag.stats
