"""dbm/ndbm baseline (Ken Thompson's algorithm)."""

from repro.baselines.dbm.dbmfile import DbmError, DbmFile
from repro.baselines.dbm.ndbm import DBM_INSERT, DBM_REPLACE, Ndbm

__all__ = ["DbmFile", "DbmError", "Ndbm", "DBM_INSERT", "DBM_REPLACE"]
