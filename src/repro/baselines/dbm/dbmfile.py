"""Ken Thompson's dbm algorithm.

"The basic structure of dbm calls for fixed-sized disk blocks (buckets) and
an access function that maps a key to a bucket ... a bit-randomizing hash
function is used to convert a key into a 32-bit hash value ... An in-memory
bitmap is used to determine how many bits are required" -- the access
function from the paper:

.. code-block:: c

    hash = calchash(key);
    mask = 0;
    while (isbitset((hash & mask) + mask))
        mask = (mask << 1) + 1;
    bucket = hash & mask;

The shortcomings are reproduced deliberately, because they are the
comparison points of the evaluation:

- a single one-block cache (the C library's ``pagbuf``): nearly every
  access to a different bucket is a real page read;
- a pair whose key+data exceed the block size cannot be stored
  (:class:`DbmError`);
- colliding keys whose combined size exceeds a block make the table
  unsplittable (:class:`DbmError` after 32 futile splits);
- the ``.pag`` file is sparse (buckets are addressed directly by hash
  bits).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterator

from repro.baselines.dbm.bitmap import DirBitmap
from repro.core.hashfuncs import thompson_hash
from repro.core.locking import NULL_GUARD, RWLock
from repro.core.pages import PageFullError, PageView, empty_page, pair_bytes_needed
from repro.core.constants import PAGE_HDR_SIZE
from repro.obs.hooks import TraceHooks
from repro.obs.trace import TraceSupport
from repro.storage.pager import open_pager

#: dbm's historical block size (PBLKSIZ).
DEFAULT_BLOCK_SIZE = 1024

#: Maximum split depth: 32 hash bits.
MAX_SPLIT_DEPTH = 32


class DbmError(Exception):
    """A dbm failure the original library also produced."""


class DbmFile(TraceSupport):
    """One dbm database: ``<name>.pag`` (data blocks) + ``<name>.dir``
    (split bitmap)."""

    def __init__(
        self,
        name: str | os.PathLike,
        flags: str = "c",
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        hashfn: Callable[[bytes], int] | None = None,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
    ) -> None:
        t_open = time.perf_counter()
        if flags not in ("r", "w", "c", "n"):
            raise ValueError(f"flags must be 'r', 'w', 'c' or 'n', got {flags!r}")
        base = os.fspath(name)
        self.pag_path = base + ".pag"
        self.dir_path = base + ".dir"
        self.readonly = flags == "r"
        self._hash = hashfn or thompson_hash
        exists = os.path.exists(self.pag_path)
        create = flags == "n" or (flags == "c" and not exists)
        if create or not os.path.exists(self.dir_path):
            self.bitmap = DirBitmap()
            self.bitmap.block_size = block_size
        else:
            self.bitmap = DirBitmap.load(self.dir_path)
        # The block size is a property of the existing database (a
        # compile-time constant in the C library); the stored value wins.
        self.block_size = self.bitmap.block_size or block_size
        # Crash detection: a .pag without its .dir, or a .dir whose dirty
        # flag was never cleared, is the wreck of an unclean shutdown.
        self._was_unclean = self.bitmap.dirty or (
            not create and exists and not os.path.exists(self.dir_path)
        )
        if not self.readonly:
            # Mark the whole write session dirty up front; close() clears
            # the flag only after the data fsync.
            self.bitmap.dirty = True
            self.bitmap.save(self.dir_path)
        # e.g. repro.storage.simdisk.SimulatedDisk for modelled I/O time, or
        # repro.storage.faulty.FaultyPager for crash injection
        self.pag = open_pager(self.pag_path, pagesize=self.block_size,
                              create=create, readonly=self.readonly,
                              wrapper=file_wrapper)
        self._closed = False
        # The single-block cache (the C library's pagbuf/pagbno).
        self._cached_blkno: int | None = None
        self._cached_page: bytearray | None = None
        self._cached_dirty = False
        self.hooks = TraceHooks()
        self.concurrent = concurrent
        self._file = self.pag  # the mixin's handle for the default dump path
        self._init_tracing()
        self.pag.on_page_io = self._page_io_event
        if hasattr(self.pag, "on_fault"):
            self.pag.on_fault = self._fault_event
        #: ``concurrent=True`` serializes every operation exclusively:
        #: dbm's single-block cache makes even a fetch a mutation, so
        #: there is no shared-reader mode to offer.  The same write-side
        #: RWLock as the new package, so the race harness can observe it.
        self._lock = RWLock() if concurrent else None
        self._guard = self._lock.writer if concurrent else NULL_GUARD
        if concurrent:
            self.pag.stats.make_threadsafe()
            self._lock.wait_hook = self._lock_wait_event
        if tracing:
            self._trace_open(t_open, "create" if create else "open")

    def _page_io_event(self, kind: str, pageno: int, nbytes: int) -> None:
        hooks = self.hooks
        if hooks.on_page_io:
            hooks.emit(
                "on_page_io", {"kind": kind, "pageno": pageno, "nbytes": nbytes}
            )

    # -- block cache -----------------------------------------------------------

    def _read_block(self, blkno: int) -> bytearray:
        hooks = self.hooks
        if blkno == self._cached_blkno:
            if hooks.on_buffer:
                hooks.emit("on_buffer", {"kind": "hit", "key": blkno, "pageno": blkno})
            return self._cached_page
        if hooks.on_buffer:
            hooks.emit("on_buffer", {"kind": "miss", "key": blkno, "pageno": blkno})
        self._flush_block()
        raw = self.pag.read_page(blkno)
        page = bytearray(raw)
        view = PageView(page)
        if view.looks_uninitialized():
            view.initialize()
        self._cached_blkno = blkno
        self._cached_page = page
        self._cached_dirty = False
        return page

    def _flush_block(self) -> None:
        if self._cached_dirty and self._cached_blkno is not None:
            self.pag.write_page(self._cached_blkno, bytes(self._cached_page))
            self._cached_dirty = False

    def _write_block(self, blkno: int, page: bytearray) -> None:
        """Install ``page`` as the cached content of ``blkno`` and mark it
        dirty (blocks other than the cached one are written through)."""
        if blkno == self._cached_blkno:
            self._cached_page = page
            self._cached_dirty = True
        else:
            self.pag.write_page(blkno, bytes(page))

    # -- the access function -------------------------------------------------------

    def _access(self, h: int) -> tuple[int, int]:
        """Thompson's bitmap walk: returns ``(bucket, mask)``."""
        mask = 0
        while self.bitmap.is_set((h & mask) + mask):
            mask = (mask << 1) + 1
        return h & mask, mask

    def _calc_bucket(self, key: bytes) -> tuple[int, int, int]:
        h = self._hash(key)
        bucket, mask = self._access(h)
        return h, bucket, mask

    # -- operations ------------------------------------------------------------------

    def fetch(self, key: bytes) -> bytes | None:
        if self.tracer.enabled:
            return self._traced_op("get", None, self._guard, self._fetch_impl, key)
        with self._guard:
            return self._fetch_impl(key)

    def _fetch_impl(self, key: bytes) -> bytes | None:
        self._check_open()
        _h, bucket, _mask = self._calc_bucket(key)
        view = PageView(self._read_block(bucket))
        i = view.find_inline(key)
        if i < 0:
            return None
        return view.get_pair(i)[1]

    def store(self, key: bytes, data: bytes, *, replace: bool = True) -> bool:
        """Insert/replace; splits the target bucket as needed.

        Raises :class:`DbmError` for the algorithm's inherent failures
        (oversized pair, unsplittable collisions).
        """
        if self.tracer.enabled:
            return self._traced_op(
                "put", None, self._guard, self._store_impl, key, data, replace
            )
        with self._guard:
            return self._store_impl(key, data, replace)

    def _store_impl(self, key: bytes, data: bytes, replace: bool) -> bool:
        self._check_writable()
        if pair_bytes_needed(len(key), len(data)) + PAGE_HDR_SIZE > self.block_size:
            raise DbmError(
                f"dbm: key+data of {len(key) + len(data)} bytes exceed the "
                f"{self.block_size}-byte block size"
            )
        h = self._hash(key)
        for _attempt in range(MAX_SPLIT_DEPTH + 1):
            bucket, mask = self._access(h)
            page = self._read_block(bucket)
            view = PageView(page)
            i = view.find_inline(key)
            if i >= 0:
                if not replace:
                    return False
                view.delete_slot(i)
            try:
                view.add_pair(key, data)
            except PageFullError:
                self._split(bucket, mask)
                continue
            self._cached_dirty = True
            if bucket > self.bitmap.maxbuck:
                self.bitmap.maxbuck = bucket
            return True
        raise DbmError(
            "dbm: cannot store -- colliding keys exceed block size "
            "(split depth exhausted)"
        )

    def _split(self, bucket: int, mask: int) -> None:
        """Split ``bucket`` at level ``mask``: set its bitmap bit and
        redistribute its pairs on the next hash bit."""
        if mask == 0xFFFFFFFF:
            raise DbmError("dbm: cannot split past 32 hash bits")
        self.bitmap.set(bucket + mask)
        new_bit = mask + 1  # 2**n, the next hash bit to reveal
        buddy = bucket + new_bit
        old_page = self._read_block(bucket)
        view = PageView(old_page)
        stay = empty_page(self.block_size)
        move = empty_page(self.block_size)
        stay_view = PageView(stay)
        move_view = PageView(move)
        for i in range(view.nslots):
            k, d = view.get_pair(i)
            dest = move_view if self._hash(k) & new_bit else stay_view
            dest.add_pair(k, d)
        # Install the stay page as the (cached) old bucket, write the buddy.
        self._cached_page = stay
        self._cached_dirty = True
        self.pag.write_page(buddy, bytes(move))
        if buddy > self.bitmap.maxbuck:
            self.bitmap.maxbuck = buddy

    def delete(self, key: bytes) -> bool:
        if self.tracer.enabled:
            return self._traced_op("delete", None, self._guard, self._delete_impl, key)
        with self._guard:
            return self._delete_impl(key)

    def _delete_impl(self, key: bytes) -> bool:
        self._check_writable()
        _h, bucket, _mask = self._calc_bucket(key)
        view = PageView(self._read_block(bucket))
        i = view.find_inline(key)
        if i < 0:
            return False
        view.delete_slot(i)
        self._cached_dirty = True
        return True

    # -- sequential access ----------------------------------------------------------

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Scan blocks 0..maxbuck in order (dbm's block-order traversal);
        only leaf buckets contain data, holes read back empty.  Concurrent
        handles materialize the scan under the lock (stable snapshot)."""
        if self._lock is None:
            return self._iter_items()
        with self._guard:
            return iter(list(self._iter_items()))

    def _iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        for blkno in range(self.bitmap.maxbuck + 1):
            view = PageView(self._read_block(blkno))
            for i in range(view.nslots):
                yield view.get_pair(i)

    def keys(self) -> Iterator[bytes]:
        for k, _d in self.items():
            yield k

    def firstkey(self) -> bytes | None:
        self._iter = self.keys()
        return next(self._iter, None)

    def nextkey(self) -> bytes | None:
        if not hasattr(self, "_iter"):
            return self.firstkey()
        return next(self._iter, None)

    # -- maintenance -------------------------------------------------------------------

    def sync(self) -> None:
        """Flush-before-sync: dirty block first, then the ``.dir`` bitmap,
        then one fsync of the ``.pag`` file (same ordering as the hash and
        btree access methods: data pages, metadata, fsync)."""
        if self.tracer.enabled:
            self._traced_op("sync", None, self._guard, self._sync_impl)
            return
        with self._guard:
            self._sync_impl()

    def _sync_impl(self) -> None:
        self._check_open()
        self._flush_block()
        if not self.readonly:
            self.bitmap.save(self.dir_path)
        self.pag.sync()

    def close(self) -> None:
        """Idempotent; syncs (same ordering as :meth:`sync`) before closing
        unless read-only, then clears the .dir dirty flag -- the commit
        record a crash leaves set."""
        with self._guard:
            if self._closed:
                return
            if not self.readonly:
                self._sync_impl()
                self.bitmap.dirty = False
                self.bitmap.save(self.dir_path)
            self._closed = True
            self.pag.close()

    def check(self) -> list[str]:
        """Consistency walk: every stored key must hash to the bucket it
        lives in under the access function (which also catches pairs left
        behind in split buckets) and pages must parse.  Returns a list of
        problems (empty = clean).

        Raises whatever the page parser raises on structurally corrupt
        blocks -- callers treat any exception as detected corruption.
        """
        with self._guard:
            return self._check_impl()

    def _check_impl(self) -> list[str]:
        self._check_open()
        problems: list[str] = []
        if self._was_unclean:
            problems.append(
                "unclean shutdown: the .dir dirty flag was never cleared "
                "(blocks may contain torn writes)"
            )
        for blkno in range(self.bitmap.maxbuck + 1):
            view = PageView(self._read_block(blkno))
            for i in range(view.nslots):
                k, _d = view.get_pair(i)
                _h, bucket, _mask = self._calc_bucket(k)
                if bucket != blkno:
                    problems.append(
                        f"block {blkno}: key {k!r} belongs in bucket {bucket}"
                    )
        return problems

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("operation on closed DbmFile")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ValueError("dbm database is read-only")

    def __enter__(self) -> "DbmFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def io_stats(self):
        return self.pag.stats
