"""The ndbm programmatic interface over Thompson's algorithm.

"The dbm and ndbm library implementations are based on the same algorithm
... but differ in their programmatic interfaces.  The latter is a modified
version of the former which adds support for multiple databases to be open
concurrently."

:class:`Ndbm` is object-per-database (ndbm); the module-level functions at
the bottom reproduce the Seventh Edition dbm interface, global single
database included.
"""

from __future__ import annotations

import os

from repro.baselines.dbm.dbmfile import DbmFile

DBM_INSERT = 0
DBM_REPLACE = 1


class Ndbm:
    """One open ndbm database (``.pag`` + ``.dir`` file pair)."""

    def __init__(self, file: str | os.PathLike, flags: str = "c", **kwargs) -> None:
        self._db = DbmFile(file, flags, **kwargs)

    def fetch(self, key: bytes) -> bytes | None:
        """dbm_fetch: content datum or None."""
        return self._db.fetch(key)

    def store(self, key: bytes, content: bytes, flags: int = DBM_REPLACE) -> int:
        """dbm_store: 0 on success, 1 when DBM_INSERT hits an existing key.

        Propagates :class:`~repro.baselines.dbm.dbmfile.DbmError` for the
        size/collision failures inherent to the algorithm.
        """
        if flags not in (DBM_INSERT, DBM_REPLACE):
            raise ValueError(f"bad dbm_store flags {flags}")
        ok = self._db.store(key, content, replace=(flags == DBM_REPLACE))
        return 0 if ok else 1

    def delete(self, key: bytes) -> int:
        """dbm_delete: 0 on success, -1 if absent."""
        return 0 if self._db.delete(key) else -1

    def firstkey(self) -> bytes | None:
        return self._db.firstkey()

    def nextkey(self) -> bytes | None:
        return self._db.nextkey()

    def items(self):
        return self._db.items()

    def sync(self) -> None:
        self._db.sync()

    def close(self) -> None:
        self._db.close()

    @property
    def io_stats(self):
        return self._db.io_stats

    @property
    def db(self) -> DbmFile:
        return self._db

    def __enter__(self) -> "Ndbm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- Seventh Edition dbm: one global database per process ----------------------

_global_db: DbmFile | None = None


def dbminit(file: str | os.PathLike) -> int:
    """Open THE database (V7 dbm allowed exactly one)."""
    global _global_db
    if _global_db is not None:
        raise RuntimeError("dbm: a database is already open (V7 allows one)")
    _global_db = DbmFile(file, "c")
    return 0


def fetch(key: bytes) -> bytes | None:
    _require()
    return _global_db.fetch(key)


def store(key: bytes, content: bytes) -> int:
    _require()
    _global_db.store(key, content)
    return 0


def delete(key: bytes) -> int:
    _require()
    return 0 if _global_db.delete(key) else -1


def firstkey() -> bytes | None:
    _require()
    return _global_db.firstkey()


def nextkey() -> bytes | None:
    _require()
    return _global_db.nextkey()


def dbmclose() -> None:
    global _global_db
    if _global_db is not None:
        _global_db.close()
        _global_db = None


def _require() -> None:
    if _global_db is None:
        raise RuntimeError("dbm: no database open (call dbminit first)")
