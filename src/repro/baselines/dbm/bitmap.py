"""Growable sparse bit array persisted to a .dir file.

Both dbm and sdbm record their split history in a bitmap kept in a ``.dir``
file beside the ``.pag`` data file; dbm indexes it by bucket-prefix + mask
and sdbm by linearized-radix-trie node number, but the storage is the same:
an array of bits.

Historical dbm kept the ``.dir`` file *sparse* -- bit indices range up to
2**32 when deep splits occur, and only the set bits matter.  This
implementation is sparse too (chunked), so pathological splits (all keys
hashing identically) cost memory proportional to the number of set bits,
exactly like the original's disk usage.
"""

from __future__ import annotations

import os
import struct

_MAGIC = 0x44424D33  # "DBM3"
_HDR = struct.Struct(">IQIIB")  # magic, maxbuck, block_size, nchunks, flags
_CHUNK_HDR = struct.Struct(">Q")  # chunk index

#: header flag bit: the companion .pag file is open for writing and has
#: not been cleanly closed (crash detector).
_F_DIRTY = 0x01

#: bytes per sparse chunk
CHUNK_BYTES = 512


class DirBitmap:
    """A sparse bit array with a small persistent header (magic, maxbuck,
    and the database's block size -- compile-time constants in the C
    libraries, so recorded here for safe reopening)."""

    def __init__(self) -> None:
        #: chunk index -> bytearray(CHUNK_BYTES)
        self._chunks: dict[int, bytearray] = {}
        #: highest bucket number ever created (for sequential scans).
        self.maxbuck = 0
        #: block size of the companion .pag file (0 = unrecorded).
        self.block_size = 0
        #: unclean-shutdown marker.  A writer saves the .dir with this set
        #: the moment it opens and clears it only after a clean close has
        #: fsync'd the data, so a crash anywhere in between is detectable
        #: on reopen (the dbm family has no other commit record).
        self.dirty = False

    def _locate(self, bit: int) -> tuple[int, int, int]:
        byte, shift = divmod(bit, 8)
        chunk, off = divmod(byte, CHUNK_BYTES)
        return chunk, off, 1 << shift

    def is_set(self, bit: int) -> bool:
        chunk, off, mask = self._locate(bit)
        data = self._chunks.get(chunk)
        return bool(data and data[off] & mask)

    def set(self, bit: int) -> None:
        chunk, off, mask = self._locate(bit)
        data = self._chunks.get(chunk)
        if data is None:
            data = bytearray(CHUNK_BYTES)
            self._chunks[chunk] = data
        data[off] |= mask

    def clear(self, bit: int) -> None:
        chunk, off, mask = self._locate(bit)
        data = self._chunks.get(chunk)
        if data is not None:
            data[off] &= ~mask & 0xFF

    def count_set(self) -> int:
        return sum(bin(b).count("1") for data in self._chunks.values() for b in data)

    # -- persistence --------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        flags = _F_DIRTY if self.dirty else 0
        with open(path, "wb") as fh:
            fh.write(
                _HDR.pack(
                    _MAGIC, self.maxbuck, self.block_size, len(self._chunks), flags
                )
            )
            for index in sorted(self._chunks):
                fh.write(_CHUNK_HDR.pack(index))
                fh.write(bytes(self._chunks[index]))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "DirBitmap":
        bm = cls()
        with open(path, "rb") as fh:
            raw = fh.read()
        if len(raw) < _HDR.size:
            return bm  # fresh/empty .dir file
        magic, maxbuck, block_size, nchunks, flags = _HDR.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise ValueError(f"{os.fspath(path)}: not a dbm .dir file")
        bm.maxbuck = maxbuck
        bm.block_size = block_size
        bm.dirty = bool(flags & _F_DIRTY)
        pos = _HDR.size
        for _ in range(nchunks):
            (index,) = _CHUNK_HDR.unpack_from(raw, pos)
            pos += _CHUNK_HDR.size
            bm._chunks[index] = bytearray(raw[pos : pos + CHUNK_BYTES])
            pos += CHUNK_BYTES
        return bm
