"""Concurrency primitives: the table rwlock and per-page latches.

The 1991 package was single-process; serving concurrent readers and
writers from one process needs a locking hierarchy, which this module
pins down in three levels (acquired strictly top-down, see
docs/CONCURRENCY.md):

1. **Table lock** (:class:`RWLock`) -- one per open table, taken at the
   public operation boundary.  Multiple-reader/single-writer with FIFO
   writer queueing: readers share, writers exclude everyone, and a
   queued writer blocks new readers so writers cannot starve.
2. **Pool mutex** -- one per :class:`~repro.core.buffer.BufferPool`,
   protecting the pool's maps, LRU order and counters (lives in
   buffer.py as :class:`OwnedMutex`).
3. **Page latch** (:class:`PageLatch`) -- one per resident buffer,
   held while a page's bytes are copied out (write-back) or mutated in
   place, so a flush never snapshots a torn page.

:class:`RWLock` is reentrant in both modes -- a thread may nest read
inside read, write inside write, and read inside its own write (the
recno method wraps composite record operations around nested btree
ops) -- but upgrading read to write raises, since upgrades deadlock the
moment two readers race for the same upgrade.

Every blocking transition is observable: an attached
:class:`LockObserver` hears ``on_block``/``on_unblock``/``on_acquired``
per thread.  The deterministic race harness
(``tests/concurrency/harness.py``) drives its scheduler off these
callbacks, which is what makes recorded interleavings replay exactly:
the lock tells the scheduler which thread is runnable, instead of the
scheduler guessing.

Single-threaded tables never construct any of this: ``concurrent=False``
paths keep a ``None`` lock and the shared :data:`NULL_GUARD` context
manager, so the hot path costs one attribute load (the BENCH guard in
``benchmarks/test_concurrency.py`` holds that at zero syscall overhead).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Protocol

__all__ = ["RWLock", "PageLatch", "LockObserver", "NULL_GUARD"]


class LockObserver(Protocol):
    """Callbacks an :class:`RWLock` issues around blocking transitions.

    ``ident`` is the waiting thread's :func:`threading.get_ident`.
    ``on_block``/``on_unblock`` are called with the lock's internal
    mutex held (keep them tiny and never call back into the lock);
    ``on_acquired`` is called after the mutex is released, so it may
    park the calling thread.
    """

    def on_block(self, ident: int) -> None: ...

    def on_unblock(self, ident: int) -> None: ...

    def on_acquired(self, ident: int) -> None: ...


class _NullGuard:
    """Shared reusable no-op context manager for non-concurrent paths."""

    __slots__ = ()

    def __enter__(self) -> "_NullGuard":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_GUARD = _NullGuard()


class _ReadGuard:
    """Reusable context manager: ``with lock.reader:`` (state lives in
    the lock, keyed by thread, so one instance serves every thread)."""

    __slots__ = ("_lock",)

    def __init__(self, lock: "RWLock") -> None:
        self._lock = lock

    def __enter__(self) -> "_ReadGuard":
        self._lock.acquire_read()
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release_read()


class _WriteGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: "RWLock") -> None:
        self._lock = lock

    def __enter__(self) -> "_WriteGuard":
        self._lock.acquire_write()
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release_write()


class RWLock:
    """Reentrant multiple-reader/single-writer lock with FIFO writers.

    Policy:

    - any number of threads may hold the read side together;
    - the write side is exclusive against readers and other writers;
    - writers queue FIFO, and a non-empty writer queue blocks *new*
      readers (writer preference without writer starvation);
    - reentrant read-in-read, write-in-write and read-in-write are
      allowed; read-to-write upgrade raises :class:`RuntimeError`.

    The FIFO queue also makes the grant order a pure function of the
    arrival order, which the deterministic race harness relies on.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        #: ident -> reentrant read depth (an entry exists while held)
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_depth = 0
        #: idents of threads waiting for the write side, in arrival order
        self._write_queue: list[int] = []
        #: idents of threads currently blocked waiting for the read side
        self._read_waiters: set[int] = set()
        #: optional LockObserver (the race harness); None in production
        self.observer: LockObserver | None = None
        #: optional ``fn(mode, t0, wait_seconds)`` called after a blocked
        #: acquisition, outside the lock's mutex -- the tracer's lock-wait
        #: span feed.  ``t0`` is an absolute ``perf_counter`` reading.
        #: Uncontended acquisitions never touch the clock.
        self.wait_hook: Callable[[str, float, float], None] | None = None

    # -- read side -------------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        obs = self.observer
        blocked = False
        t0 = 0.0
        with self._cond:
            if self._writer == me or me in self._readers:
                # read inside own write, or nested read: always admitted
                # (blocking here on a queued writer would self-deadlock)
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._write_queue:
                # on_block before EVERY wait, not just the first: a woken
                # reader can lose the race to a newly queued writer, and
                # the observer must see it as blocked again.
                if not blocked and self.wait_hook is not None:
                    t0 = time.perf_counter()
                blocked = True
                self._read_waiters.add(me)
                if obs is not None:
                    obs.on_block(me)
                self._cond.wait()
            if blocked:
                self._read_waiters.discard(me)
            self._readers[me] = 1
        if blocked:
            if obs is not None:
                obs.on_acquired(me)
            hook = self.wait_hook
            if hook is not None and t0:
                hook("read", t0, time.perf_counter() - t0)

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read without matching acquire_read")
            if depth > 1:
                self._readers[me] = depth - 1
                return
            del self._readers[me]
            if self._writer is None and not self._readers and self._write_queue:
                if self.observer is not None:
                    self.observer.on_unblock(self._write_queue[0])
                self._cond.notify_all()

    # -- write side -------------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        obs = self.observer
        blocked = False
        t0 = 0.0
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read-to-write upgrade is not supported (release the "
                    "read lock before acquiring the write lock)"
                )
            self._write_queue.append(me)
            while not (
                self._write_queue[0] == me
                and self._writer is None
                and not self._readers
            ):
                if not blocked and self.wait_hook is not None:
                    t0 = time.perf_counter()
                blocked = True
                if obs is not None:
                    obs.on_block(me)
                self._cond.wait()
            self._write_queue.pop(0)
            self._writer = me
            self._writer_depth = 1
            if self._write_queue:
                # the next queued writer is still blocked; nothing to signal
                pass
        if blocked:
            if obs is not None:
                obs.on_acquired(me)
            hook = self.wait_hook
            if hook is not None and t0:
                hook("write", t0, time.perf_counter() - t0)

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding it")
            self._writer_depth -= 1
            if self._writer_depth:
                return
            self._writer = None
            obs = self.observer
            if obs is not None:
                if self._write_queue:
                    obs.on_unblock(self._write_queue[0])
                else:
                    for ident in self._read_waiters:
                        obs.on_unblock(ident)
            self._cond.notify_all()

    # -- reusable guards ---------------------------------------------------------

    @property
    def reader(self) -> _ReadGuard:
        return _ReadGuard(self)

    @property
    def writer(self) -> _WriteGuard:
        return _WriteGuard(self)

    # -- introspection -----------------------------------------------------------

    def held_read(self) -> bool:
        """Does the calling thread hold the read side (possibly nested
        inside its own write)?"""
        me = threading.get_ident()
        with self._mutex:
            return me in self._readers

    def held_write(self) -> bool:
        return self._writer == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RWLock readers={len(self._readers)} writer={self._writer} "
            f"queued={len(self._write_queue)}>"
        )


class PageLatch:
    """Exclusive latch on one resident page buffer (hierarchy level 3).

    Held for the duration of a byte-level touch only -- a write-back
    snapshot or an in-place mutation -- never across an I/O wait for a
    *different* page, so latch deadlock is impossible by construction.
    Reentrant, because a split mutates the page it just faulted.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True) -> bool:
        return self._lock.acquire(blocking)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "PageLatch":
        self._lock.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()
