"""Slotted-page layout for primary buckets and chain overflow pages.

Every bucket (primary) page and every bucket-chain overflow page uses the
same layout: a slot table growing up from the front, key/data bytes packed
down from the end, and free space in between -- the structure the C package
used with its 16-bit in-page offsets.

::

    +--------+--------+-----------+--------+----------------------------+
    | nslots | dataoff| ovfl_addr | flags  | slot table | free | entries |
    |  u16   |  u16   |   u16     |  u16   | 6B each -> |      | <- grow |
    +--------+--------+-----------+--------+----------------------------+

A slot is ``(entry_off: u16, klen: u16, dlen: u16)``.  For an ordinary pair
the entry bytes are ``key || data`` at ``entry_off``.  A *big* pair (one
whose key+data cannot fit on a page) is marked with :data:`BIG_FLAG` in the
``klen`` field; its entry bytes are a fixed reference -- the overflow
address of the big-pair chain, the true key and data lengths, and an inline
key prefix for cheap mismatch rejection -- see :mod:`repro.core.bigpairs`.

``ovfl_addr`` links the page to the next overflow page of the same bucket
(0 = none), giving the logical chain the paper's Figure 4 shows.

Hot-path design (see docs/PERFORMANCE.md):

- the slot table is decoded **once** per page version with a single
  ``struct.iter_unpack`` call and cached on the view (:meth:`PageView.slots`);
  every search and scan then iterates plain tuples instead of issuing one
  ``unpack_from`` per slot;
- key comparison is **zero-copy**: :meth:`PageView.find_inline` compares
  ``memoryview`` slices against the probe key (after a free length
  pre-filter), so a page scan allocates no key copies.  ``bytes`` are
  materialized only at the API boundary (:meth:`PageView.get_pair` /
  :meth:`PageView.get_data`);
- a view constructed with an ``owner`` (a
  :class:`~repro.core.buffer.BufferHeader`) revalidates its decoded table
  against the owner's dirty ``epoch``, so out-of-band page mutations
  (``mark_dirty``) invalidate the cache without the view seeing them.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.core.constants import (
    BIG_FLAG,
    BIG_KEY_PREFIX,
    BIG_REF_SIZE,
    LEN_MASK,
    NO_OADDR,
    PAGE_HDR_SIZE,
    SLOT_SIZE,
)

_PAGE_HDR = struct.Struct(">HHHH")
_SLOT = struct.Struct(">HHH")
_BIG_REF = struct.Struct(">HII")


class PageFullError(Exception):
    """Internal signal: the pair does not fit on this page."""


def pair_bytes_needed(klen: int, dlen: int) -> int:
    """Total page bytes an ordinary pair consumes (slot + entry)."""
    return SLOT_SIZE + klen + dlen


def big_ref_bytes(klen: int) -> int:
    """Page bytes consumed by a big-pair inline reference."""
    return SLOT_SIZE + BIG_REF_SIZE + min(klen, BIG_KEY_PREFIX)


def is_big_pair(klen: int, dlen: int, bsize: int) -> bool:
    """True if a pair of the given sizes cannot live on a single page and
    must be stored on a big-pair overflow chain."""
    return PAGE_HDR_SIZE + pair_bytes_needed(klen, dlen) > bsize


def empty_page(bsize: int, flags: int = 0) -> bytearray:
    """A fresh page: zero slots, data offset at the page end."""
    page = bytearray(bsize)
    _PAGE_HDR.pack_into(page, 0, 0, bsize, NO_OADDR, flags)
    return page


class PageView:
    """Structured read/write access to one page buffer.

    The view mutates the underlying ``bytearray`` in place; the buffer
    manager owns dirty tracking.

    ``owner`` (optional) is the page's buffer header: the decoded slot
    table is revalidated against ``owner.epoch``, which the buffer pool
    bumps on out-of-band mutation (:meth:`BufferPool.mark_dirty`).
    Mutations made *through this view* keep the cache coherent directly.
    Holding the cached ``memoryview`` pins the ``bytearray`` against
    resizing, which is fine: page buffers are fixed-size for their whole
    life.
    """

    __slots__ = ("buf", "bsize", "_owner", "_mv", "_slots", "_epoch")

    def __init__(self, buf: bytearray, owner=None) -> None:
        self.buf = buf
        self.bsize = len(buf)
        self._owner = owner
        self._mv: memoryview | None = None
        self._slots: list[tuple[int, int, int]] | None = None
        self._epoch = 0

    # -- decoded-slot cache ------------------------------------------------------

    def memview(self) -> memoryview:
        """A cached read/write ``memoryview`` over the page bytes (used
        for zero-copy slice comparison; never resizes the buffer)."""
        mv = self._mv
        if mv is None:
            mv = self._mv = memoryview(self.buf)
        return mv

    def slots(self) -> list[tuple[int, int, int]]:
        """The decoded slot table: ``[(entry_off, klen_field, dlen_field)]``.

        Decoded once per page version (one C-level ``iter_unpack`` over
        the slot-table bytes) and cached; callers must not mutate the
        returned list.
        """
        s = self._slots
        if s is not None:
            owner = self._owner
            if owner is None or owner.epoch == self._epoch:
                return s
        owner = self._owner
        if owner is not None:
            self._epoch = owner.epoch
        end = PAGE_HDR_SIZE + self.nslots * SLOT_SIZE
        s = self._slots = list(_SLOT.iter_unpack(self.memview()[PAGE_HDR_SIZE:end]))
        return s

    def _invalidate(self) -> None:
        self._slots = None

    # -- header fields ---------------------------------------------------------

    @property
    def nslots(self) -> int:
        return struct.unpack_from(">H", self.buf, 0)[0]

    @nslots.setter
    def nslots(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 0, value)
        self._invalidate()

    @property
    def data_off(self) -> int:
        """Offset of the lowest byte used by packed entries."""
        return struct.unpack_from(">H", self.buf, 2)[0]

    @data_off.setter
    def data_off(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 2, value)

    @property
    def ovfl_addr(self) -> int:
        return struct.unpack_from(">H", self.buf, 4)[0]

    @ovfl_addr.setter
    def ovfl_addr(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 4, value)

    @property
    def flags(self) -> int:
        return struct.unpack_from(">H", self.buf, 6)[0]

    @flags.setter
    def flags(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 6, value)

    def initialize(self, flags: int = 0) -> None:
        """Reset to an empty page (used for zero-filled fresh pages)."""
        self.buf[:] = b"\0" * self.bsize
        _PAGE_HDR.pack_into(self.buf, 0, 0, self.bsize, NO_OADDR, flags)
        self._invalidate()

    def looks_uninitialized(self) -> bool:
        """A zero-filled page read from a file hole: every field zero.

        A real empty page has ``data_off == bsize``, so all-zero means the
        page was never written (sparse-file hole).
        """
        return self.nslots == 0 and self.data_off == 0

    # -- space accounting --------------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes between the end of the slot table and the packed entries."""
        return self.data_off - (PAGE_HDR_SIZE + self.nslots * SLOT_SIZE)

    def fits(self, klen: int, dlen: int) -> bool:
        """Can an ordinary pair of these sizes be inserted here?"""
        return pair_bytes_needed(klen, dlen) <= self.free_space

    def fits_big_ref(self, klen: int) -> bool:
        return big_ref_bytes(klen) <= self.free_space

    # -- slot access ---------------------------------------------------------------

    def _slot(self, i: int) -> tuple[int, int, int]:
        slots = self.slots()
        if not 0 <= i < len(slots):
            raise IndexError(f"slot {i} out of range (nslots={len(slots)})")
        return slots[i]

    def slot_is_big(self, i: int) -> bool:
        _off, klen, _dlen = self._slot(i)
        return bool(klen & BIG_FLAG)

    def get_pair(self, i: int) -> tuple[bytes, bytes]:
        """Key and data bytes of ordinary slot ``i`` (raises on big slots)."""
        off, klen, dlen = self._slot(i)
        if klen & BIG_FLAG:
            raise ValueError(f"slot {i} is a big-pair reference, not an inline pair")
        klen &= LEN_MASK
        dlen &= LEN_MASK
        return bytes(self.buf[off : off + klen]), bytes(
            self.buf[off + klen : off + klen + dlen]
        )

    def get_pair_view(self, i: int) -> tuple[memoryview, memoryview]:
        """Zero-copy key and data views of ordinary slot ``i``.

        The views alias the live page buffer: they are valid only until
        the page is next mutated, unpinned, or evicted -- callers must
        either finish with them inside the same engine operation or
        materialize with ``bytes()`` (see docs/PERFORMANCE.md for the
        ownership rules).
        """
        off, klen, dlen = self._slot(i)
        if klen & BIG_FLAG:
            raise ValueError(f"slot {i} is a big-pair reference, not an inline pair")
        klen &= LEN_MASK
        dlen &= LEN_MASK
        mv = self.memview()
        return mv[off : off + klen], mv[off + klen : off + klen + dlen]

    def get_data(self, i: int) -> bytes:
        """Data bytes of ordinary slot ``i`` alone (skips the key copy --
        the common ``get`` result path)."""
        off, klen, dlen = self._slot(i)
        if klen & BIG_FLAG:
            raise ValueError(f"slot {i} is a big-pair reference, not an inline pair")
        klen &= LEN_MASK
        return bytes(self.buf[off + klen : off + klen + (dlen & LEN_MASK)])

    def get_key(self, i: int) -> bytes:
        off, klen, _dlen = self._slot(i)
        if klen & BIG_FLAG:
            raise ValueError(f"slot {i} is a big-pair reference, not an inline pair")
        return bytes(self.buf[off : off + (klen & LEN_MASK)])

    def get_big_ref(self, i: int) -> tuple[int, int, int, bytes]:
        """Decode big slot ``i`` -> (chain oaddr, key length, data length,
        inline key prefix)."""
        off, klen, _dlen = self._slot(i)
        if not klen & BIG_FLAG:
            raise ValueError(f"slot {i} is an inline pair, not a big-pair reference")
        ref_len = klen & LEN_MASK
        oaddr, full_klen, full_dlen = _BIG_REF.unpack_from(self.buf, off)
        prefix = bytes(self.buf[off + BIG_REF_SIZE : off + ref_len])
        return oaddr, full_klen, full_dlen, prefix

    # -- mutation ------------------------------------------------------------------

    def _append_entry(self, entry: bytes, klen_field: int, dlen_field: int) -> None:
        need = SLOT_SIZE + len(entry)
        if need > self.free_space:
            raise PageFullError(
                f"entry of {len(entry)} bytes does not fit (free={self.free_space})"
            )
        new_off = self.data_off - len(entry)
        self.buf[new_off : new_off + len(entry)] = entry
        n = self.nslots
        _SLOT.pack_into(
            self.buf, PAGE_HDR_SIZE + n * SLOT_SIZE, new_off, klen_field, dlen_field
        )
        self.nslots = n + 1
        self.data_off = new_off

    def add_pair(self, key: bytes, data: bytes) -> None:
        """Insert an ordinary pair; raises :class:`PageFullError` if no room."""
        if len(key) > LEN_MASK or len(data) > LEN_MASK:
            raise ValueError("inline key/data length exceeds 15-bit page-offset limit")
        self._append_entry(key + data, len(key), len(data))

    def add_big_ref(self, oaddr: int, klen: int, dlen: int, key_prefix: bytes) -> None:
        """Insert a big-pair reference slot pointing at chain ``oaddr``."""
        prefix = key_prefix[:BIG_KEY_PREFIX]
        entry = _BIG_REF.pack(oaddr, klen, dlen) + prefix
        self._append_entry(entry, len(entry) | BIG_FLAG, BIG_FLAG)

    def delete_slot(self, i: int) -> None:
        """Remove slot ``i``, compacting both the slot table and the packed
        entry bytes so the freed space is immediately reusable."""
        # Snapshot the decoded table before any byte moves: every read
        # below wants the pre-shift offsets.
        slots = list(self.slots())
        off, klen, dlen = slots[i]
        if klen & BIG_FLAG:
            entry_len = klen & LEN_MASK
        else:
            entry_len = (klen & LEN_MASK) + (dlen & LEN_MASK)
        n = len(slots)
        # Shift every entry stored below (at lower offsets than) the victim
        # up by entry_len, then fix the offsets of the slots that pointed
        # into the shifted region.
        lo = self.data_off
        if off > lo:
            self.buf[lo + entry_len : off + entry_len] = self.buf[lo:off]
        for j in range(n):
            if j == i:
                continue
            joff, jk, jd = slots[j]
            if joff < off:
                _SLOT.pack_into(
                    self.buf,
                    PAGE_HDR_SIZE + j * SLOT_SIZE,
                    joff + entry_len,
                    jk,
                    jd,
                )
        # Close the gap in the slot table.
        start = PAGE_HDR_SIZE + (i + 1) * SLOT_SIZE
        end = PAGE_HDR_SIZE + n * SLOT_SIZE
        self.buf[start - SLOT_SIZE : end - SLOT_SIZE] = self.buf[start:end]
        self.nslots = n - 1
        self.data_off = lo + entry_len
        # Zero the vacated bytes (keeps files deterministic and debuggable).
        tbl_end = PAGE_HDR_SIZE + (n - 1) * SLOT_SIZE
        self.buf[tbl_end:end] = b"\0" * (end - tbl_end)
        self.buf[lo : lo + entry_len] = b"\0" * entry_len

    # -- search / iteration -----------------------------------------------------------

    def find_inline(self, key: bytes) -> int:
        """Index of the ordinary slot holding ``key``, or -1.

        Big slots are skipped; matching them needs chain access and is done
        by the table layer.  Zero-copy: the length pre-filter rejects most
        slots for free, and candidates are compared through ``memoryview``
        slices, never materialized.
        """
        klen = len(key)
        if klen > LEN_MASK:
            return -1  # cannot be inline; big-pair matching is the table's job
        mv = self.memview()
        # An inline slot's klen field is <= LEN_MASK, so ``kf == klen``
        # also excludes big-pair slots (whose field carries BIG_FLAG).
        for i, (off, kf, _df) in enumerate(self.slots()):
            if kf == klen and mv[off : off + klen] == key:
                return i
        return -1

    def iter_slots(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(slot index, is_big)`` for every slot."""
        for i, (_off, kf, _df) in enumerate(self.slots()):
            yield i, bool(kf & BIG_FLAG)

    def used_bytes(self) -> int:
        """Bytes in use (header + slots + entries); for stats and tests."""
        return PAGE_HDR_SIZE + self.nslots * SLOT_SIZE + (self.bsize - self.data_off)
