"""Slotted-page layout for primary buckets and chain overflow pages.

Every bucket (primary) page and every bucket-chain overflow page uses the
same layout: a slot table growing up from the front, key/data bytes packed
down from the end, and free space in between -- the structure the C package
used with its 16-bit in-page offsets.

::

    +--------+--------+-----------+--------+----------------------------+
    | nslots | dataoff| ovfl_addr | flags  | slot table | free | entries |
    |  u16   |  u16   |   u16     |  u16   | 6B each -> |      | <- grow |
    +--------+--------+-----------+--------+----------------------------+

A slot is ``(entry_off: u16, klen: u16, dlen: u16)``.  For an ordinary pair
the entry bytes are ``key || data`` at ``entry_off``.  A *big* pair (one
whose key+data cannot fit on a page) is marked with :data:`BIG_FLAG` in the
``klen`` field; its entry bytes are a fixed reference -- the overflow
address of the big-pair chain, the true key and data lengths, and an inline
key prefix for cheap mismatch rejection -- see :mod:`repro.core.bigpairs`.

``ovfl_addr`` links the page to the next overflow page of the same bucket
(0 = none), giving the logical chain the paper's Figure 4 shows.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.core.constants import (
    BIG_FLAG,
    BIG_KEY_PREFIX,
    BIG_REF_SIZE,
    LEN_MASK,
    NO_OADDR,
    PAGE_HDR_SIZE,
    SLOT_SIZE,
)

_PAGE_HDR = struct.Struct(">HHHH")
_SLOT = struct.Struct(">HHH")
_BIG_REF = struct.Struct(">HII")


class PageFullError(Exception):
    """Internal signal: the pair does not fit on this page."""


def pair_bytes_needed(klen: int, dlen: int) -> int:
    """Total page bytes an ordinary pair consumes (slot + entry)."""
    return SLOT_SIZE + klen + dlen


def big_ref_bytes(klen: int) -> int:
    """Page bytes consumed by a big-pair inline reference."""
    return SLOT_SIZE + BIG_REF_SIZE + min(klen, BIG_KEY_PREFIX)


def is_big_pair(klen: int, dlen: int, bsize: int) -> bool:
    """True if a pair of the given sizes cannot live on a single page and
    must be stored on a big-pair overflow chain."""
    return PAGE_HDR_SIZE + pair_bytes_needed(klen, dlen) > bsize


def empty_page(bsize: int, flags: int = 0) -> bytearray:
    """A fresh page: zero slots, data offset at the page end."""
    page = bytearray(bsize)
    _PAGE_HDR.pack_into(page, 0, 0, bsize, NO_OADDR, flags)
    return page


class PageView:
    """Structured read/write access to one page buffer.

    The view mutates the underlying ``bytearray`` in place; the buffer
    manager owns dirty tracking.
    """

    __slots__ = ("buf", "bsize")

    def __init__(self, buf: bytearray) -> None:
        self.buf = buf
        self.bsize = len(buf)

    # -- header fields ---------------------------------------------------------

    @property
    def nslots(self) -> int:
        return struct.unpack_from(">H", self.buf, 0)[0]

    @nslots.setter
    def nslots(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 0, value)

    @property
    def data_off(self) -> int:
        """Offset of the lowest byte used by packed entries."""
        return struct.unpack_from(">H", self.buf, 2)[0]

    @data_off.setter
    def data_off(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 2, value)

    @property
    def ovfl_addr(self) -> int:
        return struct.unpack_from(">H", self.buf, 4)[0]

    @ovfl_addr.setter
    def ovfl_addr(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 4, value)

    @property
    def flags(self) -> int:
        return struct.unpack_from(">H", self.buf, 6)[0]

    @flags.setter
    def flags(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 6, value)

    def initialize(self, flags: int = 0) -> None:
        """Reset to an empty page (used for zero-filled fresh pages)."""
        self.buf[:] = b"\0" * self.bsize
        _PAGE_HDR.pack_into(self.buf, 0, 0, self.bsize, NO_OADDR, flags)

    def looks_uninitialized(self) -> bool:
        """A zero-filled page read from a file hole: every field zero.

        A real empty page has ``data_off == bsize``, so all-zero means the
        page was never written (sparse-file hole).
        """
        return self.nslots == 0 and self.data_off == 0

    # -- space accounting --------------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes between the end of the slot table and the packed entries."""
        return self.data_off - (PAGE_HDR_SIZE + self.nslots * SLOT_SIZE)

    def fits(self, klen: int, dlen: int) -> bool:
        """Can an ordinary pair of these sizes be inserted here?"""
        return pair_bytes_needed(klen, dlen) <= self.free_space

    def fits_big_ref(self, klen: int) -> bool:
        return big_ref_bytes(klen) <= self.free_space

    # -- slot access ---------------------------------------------------------------

    def _slot(self, i: int) -> tuple[int, int, int]:
        if not 0 <= i < self.nslots:
            raise IndexError(f"slot {i} out of range (nslots={self.nslots})")
        return _SLOT.unpack_from(self.buf, PAGE_HDR_SIZE + i * SLOT_SIZE)

    def slot_is_big(self, i: int) -> bool:
        _off, klen, _dlen = self._slot(i)
        return bool(klen & BIG_FLAG)

    def get_pair(self, i: int) -> tuple[bytes, bytes]:
        """Key and data bytes of ordinary slot ``i`` (raises on big slots)."""
        off, klen, dlen = self._slot(i)
        if klen & BIG_FLAG:
            raise ValueError(f"slot {i} is a big-pair reference, not an inline pair")
        klen &= LEN_MASK
        dlen &= LEN_MASK
        return bytes(self.buf[off : off + klen]), bytes(
            self.buf[off + klen : off + klen + dlen]
        )

    def get_key(self, i: int) -> bytes:
        off, klen, _dlen = self._slot(i)
        if klen & BIG_FLAG:
            raise ValueError(f"slot {i} is a big-pair reference, not an inline pair")
        return bytes(self.buf[off : off + (klen & LEN_MASK)])

    def get_big_ref(self, i: int) -> tuple[int, int, int, bytes]:
        """Decode big slot ``i`` -> (chain oaddr, key length, data length,
        inline key prefix)."""
        off, klen, _dlen = self._slot(i)
        if not klen & BIG_FLAG:
            raise ValueError(f"slot {i} is an inline pair, not a big-pair reference")
        ref_len = klen & LEN_MASK
        oaddr, full_klen, full_dlen = _BIG_REF.unpack_from(self.buf, off)
        prefix = bytes(self.buf[off + BIG_REF_SIZE : off + ref_len])
        return oaddr, full_klen, full_dlen, prefix

    # -- mutation ------------------------------------------------------------------

    def _append_entry(self, entry: bytes, klen_field: int, dlen_field: int) -> None:
        need = SLOT_SIZE + len(entry)
        if need > self.free_space:
            raise PageFullError(
                f"entry of {len(entry)} bytes does not fit (free={self.free_space})"
            )
        new_off = self.data_off - len(entry)
        self.buf[new_off : new_off + len(entry)] = entry
        n = self.nslots
        _SLOT.pack_into(
            self.buf, PAGE_HDR_SIZE + n * SLOT_SIZE, new_off, klen_field, dlen_field
        )
        self.nslots = n + 1
        self.data_off = new_off

    def add_pair(self, key: bytes, data: bytes) -> None:
        """Insert an ordinary pair; raises :class:`PageFullError` if no room."""
        if len(key) > LEN_MASK or len(data) > LEN_MASK:
            raise ValueError("inline key/data length exceeds 15-bit page-offset limit")
        self._append_entry(key + data, len(key), len(data))

    def add_big_ref(self, oaddr: int, klen: int, dlen: int, key_prefix: bytes) -> None:
        """Insert a big-pair reference slot pointing at chain ``oaddr``."""
        prefix = key_prefix[:BIG_KEY_PREFIX]
        entry = _BIG_REF.pack(oaddr, klen, dlen) + prefix
        self._append_entry(entry, len(entry) | BIG_FLAG, BIG_FLAG)

    def delete_slot(self, i: int) -> None:
        """Remove slot ``i``, compacting both the slot table and the packed
        entry bytes so the freed space is immediately reusable."""
        off, klen, dlen = self._slot(i)
        if klen & BIG_FLAG:
            entry_len = klen & LEN_MASK
        else:
            entry_len = (klen & LEN_MASK) + (dlen & LEN_MASK)
        n = self.nslots
        # Shift every entry stored below (at lower offsets than) the victim
        # up by entry_len, then fix the offsets of the slots that pointed
        # into the shifted region.
        lo = self.data_off
        if off > lo:
            self.buf[lo + entry_len : off + entry_len] = self.buf[lo:off]
        for j in range(n):
            if j == i:
                continue
            joff, jk, jd = self._slot(j)
            if joff < off:
                _SLOT.pack_into(
                    self.buf,
                    PAGE_HDR_SIZE + j * SLOT_SIZE,
                    joff + entry_len,
                    jk,
                    jd,
                )
        # Close the gap in the slot table.
        start = PAGE_HDR_SIZE + (i + 1) * SLOT_SIZE
        end = PAGE_HDR_SIZE + n * SLOT_SIZE
        self.buf[start - SLOT_SIZE : end - SLOT_SIZE] = self.buf[start:end]
        self.nslots = n - 1
        self.data_off = lo + entry_len
        # Zero the vacated bytes (keeps files deterministic and debuggable).
        tbl_end = PAGE_HDR_SIZE + (n - 1) * SLOT_SIZE
        self.buf[tbl_end:end] = b"\0" * (end - tbl_end)
        self.buf[lo : lo + entry_len] = b"\0" * entry_len

    # -- search / iteration -----------------------------------------------------------

    def find_inline(self, key: bytes) -> int:
        """Index of the ordinary slot holding ``key``, or -1.

        Big slots are skipped; matching them needs chain access and is done
        by the table layer.
        """
        n = self.nslots
        klen = len(key)
        buf = self.buf
        for i in range(n):
            off, kf, _df = _SLOT.unpack_from(buf, PAGE_HDR_SIZE + i * SLOT_SIZE)
            if kf & BIG_FLAG:
                continue
            if kf == klen and buf[off : off + klen] == key:
                return i
        return -1

    def iter_slots(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(slot index, is_big)`` for every slot."""
        for i in range(self.nslots):
            _off, kf, _df = _SLOT.unpack_from(self.buf, PAGE_HDR_SIZE + i * SLOT_SIZE)
            yield i, bool(kf & BIG_FLAG)

    def used_bytes(self) -> int:
        """Bytes in use (header + slots + entries); for stats and tests."""
        return PAGE_HDR_SIZE + self.nslots * SLOT_SIZE + (self.bsize - self.data_off)
