"""LRU buffer manager.

"To satisfy both of these requirements, the package includes buffer
management with LRU (least recently used) replacement. ... All pages in the
buffer pool are linked in LRU order to facilitate fast replacement. ...
efficient access to overflow pages is provided by linking overflow page
buffers to their predecessor page. ... This means that an overflow page
cannot be present in the buffer pool if its primary page is not present."

The pool holds whole pages keyed by logical address -- ``('B', bucket)`` for
primary pages, ``('O', oaddr)`` for overflow pages of any kind -- and
translates to physical page numbers through a caller-supplied addresser, so
the pool itself stays ignorant of the buddy-in-waiting arithmetic.

Eviction policy nuances reproduced from the paper:

- a buffer with a chained overflow buffer is evicted together with its whole
  chain (preserving the primary-implies-overflow invariant);
- pinned buffers are never evicted; the budget is a soft target when every
  buffer is pinned (splits temporarily pin several pages);
- the pool size is a byte budget; ``cachesize=0`` degenerates to the minimum
  number of resident pages an operation needs, exactly the paper's Figure 7
  x-axis origin.

Write-back is batched: ``flush()`` collects dirty headers, sorts them by
page number and coalesces contiguous runs into single vectored
``write_pages`` calls on the underlying pager, so a flush of N contiguous
dirty pages costs one syscall instead of N (see docs/STORAGE.md).

Observability: all pool accounting lives in :mod:`repro.obs` counters
(registered under the owning table's metrics tree when one is supplied),
and evictions are reported through the ``on_evict`` trace event.  Chain
edges are mirrored in a reverse map so invalidation and re-linking are
O(1) instead of an O(pool) scan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

from repro.core.locking import NULL_GUARD, PageLatch
from repro.core.pages import PageView
from repro.obs.hooks import TraceHooks
from repro.obs.registry import Counter, Registry

#: Minimum resident pages regardless of budget: an expansion touches the old
#: bucket chain head, the new bucket, a bitmap page and a big-pair page.
MIN_BUFFERS = 4

BufferKey = Hashable


class OwnedMutex:
    """A reentrant mutex that knows who holds it (hierarchy level 2).

    ``threading.RLock`` cannot answer "does *this* thread hold you?", but
    the race harness needs exactly that: its page-I/O yield points fire
    inside pool critical sections (eviction write-back), where parking
    the thread would block every other pool user invisibly.  The owner
    ident lets the harness (and assertions) detect that case.
    """

    __slots__ = ("_lock", "_owner", "_depth")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owner: int | None = None
        self._depth = 0

    def acquire(self) -> None:
        me = threading.get_ident()
        if self._owner == me:
            self._depth += 1
            return
        self._lock.acquire()
        self._owner = me
        self._depth = 1

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError("OwnedMutex released by a non-owner thread")
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
            self._lock.release()

    def held_by_me(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> "OwnedMutex":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class BufferHeader:
    """One resident page: the buffer plus its bookkeeping.

    Mirrors the paper's buffer header: modified bit, page address, pointer
    to the buffer, pointer to the overflow page's buffer header, LRU links
    (the LRU links live in the pool's ordered dict).
    """

    __slots__ = (
        "key",
        "pageno",
        "page",
        "dirty",
        "pins",
        "chain_next",
        "latch",
        "epoch",
        "formatted",
        "_view",
    )

    def __init__(self, key: BufferKey, pageno: int, page: bytearray) -> None:
        self.key = key
        self.pageno = pageno
        self.page = page
        self.dirty = False
        self.pins = 0
        #: key of the next overflow buffer chained behind this page, if that
        #: buffer is resident; evicted together with this one.
        self.chain_next: BufferKey | None = None
        #: per-page latch (hierarchy level 3), installed only by concurrent
        #: pools; held while the page's bytes are mutated or snapshotted so
        #: a write-back never captures a torn page.
        self.latch: PageLatch | None = None
        #: dirty epoch: bumped by every out-of-band mutation notice
        #: (:meth:`BufferPool.mark_dirty`), so the cached view's decoded
        #: slot table revalidates lazily instead of being reparsed per use.
        self.epoch = 0
        #: set once the engine has checked/initialized the page format, so
        #: repeat faults of a resident page skip the hole-detection parse.
        self.formatted = False
        self._view: PageView | None = None

    def view(self) -> PageView:
        """The page's shared :class:`PageView` (one per resident buffer).

        Reusing one view keeps the decoded slot table warm across
        operations: a hot page is parsed once per mutation, not once per
        lookup.  Callers needing a private uncached view can still
        construct ``PageView(hdr.page)`` directly.
        """
        v = self._view
        if v is None:
            v = self._view = PageView(self.page, owner=self)
        return v

    def pin(self) -> None:
        self.pins += 1

    def unpin(self) -> None:
        if self.pins <= 0:
            raise AssertionError(f"unpin of unpinned buffer {self.key!r}")
        self.pins -= 1


class BufferPool:
    """Byte-budgeted LRU pool of page buffers over one paged file."""

    def __init__(
        self,
        file,
        bsize: int,
        cachesize: int,
        addresser: Callable[[BufferKey], int],
        policy: str = "lru",
        obs: Registry | None = None,
        hooks: TraceHooks | None = None,
        concurrent: bool = False,
    ) -> None:
        if bsize <= 0:
            raise ValueError(f"bsize must be positive, got {bsize}")
        if cachesize < 0:
            raise ValueError(f"cachesize must be non-negative, got {cachesize}")
        if policy not in ("lru", "fifo"):
            raise ValueError(f"policy must be 'lru' or 'fifo', got {policy!r}")
        self.file = file
        self.bsize = bsize
        self.max_buffers = max(MIN_BUFFERS, cachesize // bsize)
        self.addresser = addresser
        #: 'lru' is the paper's replacement policy; 'fifo' exists for the
        #: ablation benchmark (hits do not refresh recency).
        self.policy = policy
        self._pool: OrderedDict[BufferKey, BufferHeader] = OrderedDict()
        #: reverse chain edges: successor key -> predecessor key.  Kept
        #: exactly in sync with the headers' ``chain_next`` hints so chain
        #: unlink and invalidation are O(1).
        self._chain_prev: dict[BufferKey, BufferKey] = {}
        self._hooks = hooks
        # Counters are always real (a slotted attribute add); supplying an
        # enabled registry merely publishes them in the metrics tree.
        self._c_hits = Counter("hits")
        self._c_misses = Counter("misses")
        self._c_evictions = Counter("evictions")
        self._c_chain_evictions = Counter("chain_evictions")
        self._c_invalidations = Counter("invalidations")
        self._c_writebacks = Counter("writebacks")
        self._c_batched_runs = Counter("batched_runs")
        if obs is not None:
            for c in (
                self._c_hits,
                self._c_misses,
                self._c_evictions,
                self._c_chain_evictions,
                self._c_invalidations,
                self._c_writebacks,
                self._c_batched_runs,
            ):
                obs.attach(c)
            obs.gauge("resident").set_function(lambda: len(self._pool))
            obs.gauge("dirty").set_function(self.dirty_count)
            obs.gauge("max_buffers").set_function(lambda: self.max_buffers)
        #: pages at or beyond this number have never been written (file
        #: high-water mark): faulting them zero-fills without a read.  A
        #: pre-sized table's untouched buckets cost no I/O this way.
        self._hole_threshold = file.npages()
        #: pool mutex (hierarchy level 2): None keeps the single-threaded
        #: fast path free of every lock acquire.  Counters are bumped via
        #: bare ``.value +=`` on purpose -- always inside this mutex when
        #: it exists, so they need no lock of their own.
        self.mutex: OwnedMutex | None = OwnedMutex() if concurrent else None

    # -- legacy counter views -----------------------------------------------------

    @property
    def hits(self) -> int:
        return self._c_hits.value

    @property
    def misses(self) -> int:
        return self._c_misses.value

    @property
    def evictions(self) -> int:
        return self._c_evictions.value

    @property
    def invalidations(self) -> int:
        return self._c_invalidations.value

    # -- lookup ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, key: BufferKey) -> bool:
        return key in self._pool

    def peek(self, key: BufferKey) -> BufferHeader | None:
        """Resident buffer for ``key`` without touching LRU order or disk."""
        return self._pool.get(key)

    def get(self, key: BufferKey, *, create: bool = False) -> BufferHeader:
        """Return the buffer for ``key``, faulting it in if absent.

        With ``create=True`` the page is known to be brand new: the buffer
        is zero-initialized without a disk read (the caller formats it).
        """
        mutex = self.mutex
        hooks = self._hooks
        if mutex is None:
            hdr = self._pool.get(key)
            if hdr is not None:
                self._c_hits.value += 1
                if self.policy == "lru":
                    self._pool.move_to_end(key)
                if hooks is not None and hooks.on_buffer:
                    hooks.emit(
                        "on_buffer",
                        {"kind": "hit", "key": key, "pageno": hdr.pageno},
                    )
                return hdr
            self._c_misses.value += 1
            pageno = self.addresser(key)
            if hooks is not None and hooks.on_buffer:
                hooks.emit(
                    "on_buffer", {"kind": "miss", "key": key, "pageno": pageno}
                )
            if create or pageno >= self._hole_threshold:
                page = bytearray(self.bsize)
            else:
                page = bytearray(self.file.read_page(pageno))
            return self._install(key, pageno, page, create)
        # Concurrent path: the miss read happens OUTSIDE the mutex (pread
        # needs no shared cursor), both so a slow fault never serializes
        # every hit behind it and so the page-I/O yield point fires with
        # no pool lock held -- the race harness can park there safely.
        with mutex:
            hdr = self._pool.get(key)
            if hdr is not None:
                self._c_hits.value += 1
                if self.policy == "lru":
                    self._pool.move_to_end(key)
                hit_pageno = hdr.pageno
            else:
                self._c_misses.value += 1
                pageno = self.addresser(key)
                hole = create or pageno >= self._hole_threshold
        # on_buffer fires OUTSIDE the mutex (subscribers may be slow or
        # reenter the pool), same rule as the miss read below.
        if hdr is not None:
            if hooks is not None and hooks.on_buffer:
                hooks.emit(
                    "on_buffer", {"kind": "hit", "key": key, "pageno": hit_pageno}
                )
            return hdr
        if hooks is not None and hooks.on_buffer:
            hooks.emit("on_buffer", {"kind": "miss", "key": key, "pageno": pageno})
        if hole:
            page = bytearray(self.bsize)
        else:
            page = bytearray(self.file.read_page(pageno))
        with mutex:
            # Double-checked insert: a sibling reader may have faulted the
            # same page while the mutex was dropped; its buffer wins (ours
            # is identical bytes -- no writer can run during read faults).
            other = self._pool.get(key)
            if other is not None:
                if self.policy == "lru":
                    self._pool.move_to_end(key)
                return other
            return self._install(key, pageno, page, create)

    def _install(self, key: BufferKey, pageno: int, page: bytearray, create: bool) -> BufferHeader:
        """Insert a freshly faulted buffer and rebalance (mutex held when
        concurrent)."""
        hdr = BufferHeader(key, pageno, page)
        if self.mutex is not None:
            hdr.latch = PageLatch()
        self._pool[key] = hdr
        if create:
            hdr.dirty = True
        # Pin across the shrink: when every other buffer is pinned the
        # walk would otherwise evict the buffer we are about to return,
        # and the caller would mutate a detached page (lost write).
        hdr.pin()
        try:
            self._shrink()
        finally:
            hdr.unpin()
        return hdr

    def latched(self, hdr: BufferHeader):
        """Context manager guarding byte-level access to ``hdr.page``.

        The shared no-op guard in non-concurrent pools, the page's latch
        otherwise.  Never call back into the pool while holding it."""
        latch = hdr.latch
        return NULL_GUARD if latch is None else latch

    # -- state changes -----------------------------------------------------------

    def mark_dirty(self, hdr: BufferHeader) -> None:
        """Note that ``hdr.page`` was (or is about to be) mutated.

        Bumps the header's dirty epoch so the cached decoded slot table
        is invalidated even when the mutation bypassed the page's shared
        :class:`PageView` (raw byte pokes, compat shims, tests).
        """
        hdr.dirty = True
        hdr.epoch += 1

    def link_chain(self, pred: BufferHeader, succ: BufferHeader) -> None:
        """Record that ``succ`` is the overflow buffer following ``pred``.

        Keeps the invariant that at most one resident predecessor points at
        any buffer: a previous predecessor of ``succ`` (or a previous
        successor of ``pred``) has its edge cleared, in O(1) via the
        reverse map.
        """
        mutex = self.mutex if self.mutex is not None else NULL_GUARD
        with mutex:
            if pred.chain_next == succ.key:
                return
            if pred.chain_next is not None and self._chain_prev.get(pred.chain_next) == pred.key:
                del self._chain_prev[pred.chain_next]
            old_pred_key = self._chain_prev.get(succ.key)
            if old_pred_key is not None and old_pred_key != pred.key:
                old_pred = self._pool.get(old_pred_key)
                if old_pred is not None and old_pred.chain_next == succ.key:
                    old_pred.chain_next = None
            pred.chain_next = succ.key
            self._chain_prev[succ.key] = pred.key

    def unlink_chain(self, pred: BufferHeader) -> None:
        mutex = self.mutex if self.mutex is not None else NULL_GUARD
        with mutex:
            nxt = pred.chain_next
            if nxt is not None and self._chain_prev.get(nxt) == pred.key:
                del self._chain_prev[nxt]
            pred.chain_next = None

    def invalidate(self, key: BufferKey) -> None:
        """Drop a buffer without writing it (its page was freed).

        Clears the dangling chain hint of the buffer's predecessor -- the
        page may be reused in another chain, and a stale edge would make
        eviction drag (or cycle through) unrelated buffers.  O(1) via the
        reverse-edge map (formerly an O(pool) scan).
        """
        mutex = self.mutex
        if mutex is None:
            self._invalidate_locked(key)
            return
        with mutex:
            self._invalidate_locked(key)

    def _invalidate_locked(self, key: BufferKey) -> None:
        hdr = self._pool.get(key)
        if hdr is not None and hdr.pins:
            raise AssertionError(f"invalidate of pinned buffer {key!r}")
        pred_key = self._chain_prev.pop(key, None)
        if pred_key is not None:
            pred = self._pool.get(pred_key)
            if pred is not None and pred.chain_next == key:
                pred.chain_next = None
        if hdr is not None:
            del self._pool[key]
            # Poison the dropped header: code holding a reference to it
            # (or to its cached PageView) across the invalidate must not
            # decode stale bytes once the page address is reallocated to
            # fresh contents.
            hdr.epoch += 1
            hdr.formatted = False
            hdr._view = None
            hdr.dirty = False
            nxt = hdr.chain_next
            if nxt is not None and self._chain_prev.get(nxt) == key:
                del self._chain_prev[nxt]
            self._c_invalidations.value += 1

    # -- eviction / flushing ----------------------------------------------------------

    def _snapshot(self, hdr: BufferHeader) -> bytes:
        """Copy the page's bytes out under its latch (if it has one), so
        a write-back never captures a half-applied in-place mutation."""
        latch = hdr.latch
        if latch is None:
            return bytes(hdr.page)
        with latch:
            return bytes(hdr.page)

    def _write_back(self, hdr: BufferHeader) -> None:
        if hdr.dirty:
            self.file.write_page(hdr.pageno, self._snapshot(hdr))
            hdr.dirty = False
            self._c_writebacks.value += 1
            if hdr.pageno >= self._hole_threshold:
                self._hole_threshold = hdr.pageno + 1

    def _drop_edges(self, hdr: BufferHeader) -> None:
        """Remove ``hdr``'s reverse-map edges as it leaves the pool."""
        pred_key = self._chain_prev.pop(hdr.key, None)
        if pred_key is not None:
            pred = self._pool.get(pred_key)
            if pred is not None and pred.chain_next == hdr.key:
                pred.chain_next = None
        nxt = hdr.chain_next
        if nxt is not None and self._chain_prev.get(nxt) == hdr.key:
            del self._chain_prev[nxt]

    def _evict_chain(self, key: BufferKey) -> bool:
        """Evict ``key`` and its chained overflow buffers; False if any
        buffer in the chain is pinned (nothing is evicted then).

        ``chain_next`` is a best-effort hint, so the walk defends against
        stale edges (a visited set breaks cycles left by page reuse).
        """
        chain: list[BufferHeader] = []
        visited: set[BufferKey] = set()
        k: BufferKey | None = key
        while k is not None and k not in visited:
            visited.add(k)
            hdr = self._pool.get(k)
            if hdr is None:
                break
            if hdr.pins:
                return False
            chain.append(hdr)
            k = hdr.chain_next
        hooks = self._hooks
        emit = hooks is not None and bool(hooks.on_evict)
        chained = len(chain) > 1
        for hdr in chain:
            # Re-validate before every member: the on_evict / on_page_io
            # hooks fired for an earlier member may have called back into
            # the pool and invalidated this one (reentrant trace hooks
            # used to corrupt the walk here).
            if self._pool.get(hdr.key) is not hdr:
                continue
            if emit:
                hooks.emit(
                    "on_evict",
                    {
                        "key": hdr.key,
                        "pageno": hdr.pageno,
                        "dirty": hdr.dirty,
                        "chained": chained,
                    },
                )
            if self._pool.get(hdr.key) is not hdr:
                continue
            self._write_back(hdr)
            self._pool.pop(hdr.key, None)
            self._drop_edges(hdr)
            self._c_evictions.value += 1
        if chained:
            self._c_chain_evictions.value += 1
        return True

    def _shrink(self) -> None:
        pool = self._pool
        if len(pool) <= self.max_buffers:
            return
        # O(1) candidate selection: the victim is always the dict head
        # (LRU end).  A head whose chain is pinned rotates to the MRU end
        # -- it is in active use this very operation, so refreshing its
        # recency is harmless -- instead of being rescanned, which made
        # the old walk O(pool) per eviction.  ``rotations`` bounds the
        # pass when every resident buffer is pinned (budget is soft then).
        rotations = 0
        while len(pool) > self.max_buffers and rotations < len(pool):
            key = next(iter(pool))
            before = len(pool)
            if not self._evict_chain(key):
                pool.move_to_end(key)
                rotations += 1
            elif len(pool) >= before:
                # Defensive: a reentrant hook refilled the pool faster
                # than the evict drained it; never spin on that.
                break

    def flush(self, *, batched: bool = True) -> int:
        """Write every dirty buffer (pool contents stay resident);
        returns the number of pages written.

        The default path is batched write-back: dirty headers are
        collected, sorted by page number, and contiguous runs coalesce
        into single vectored ``write_pages`` calls -- a run of N pages
        costs one syscall instead of N, which ``IOStats.syscalls`` makes
        visible.  ``batched=False`` keeps the historical page-at-a-time
        path (the ablation baseline in BENCH_flush_batching.json).

        Each header is re-validated against the live pool immediately
        before its bytes go out: ``on_page_io`` trace hooks fire during
        the writes and may reenter the pool (``invalidate``), so the
        dirty list collected up front can go stale mid-walk.
        """
        mutex = self.mutex
        if mutex is None:
            return self._flush_locked(batched)
        with mutex:
            return self._flush_locked(batched)

    def _flush_locked(self, batched: bool) -> int:
        dirty = [h for h in self._pool.values() if h.dirty]
        if not dirty:
            return 0
        dirty.sort(key=lambda h: h.pageno)
        vector_write = getattr(self.file, "write_pages", None) if batched else None
        written = 0

        def live(h: BufferHeader) -> bool:
            return self._pool.get(h.key) is h and h.dirty

        if vector_write is None:
            for hdr in dirty:
                if live(hdr):
                    self._write_back(hdr)
                    written += 1
            return written
        i = 0
        n = len(dirty)
        while i < n:
            hdr = dirty[i]
            if not live(hdr):
                i += 1
                continue
            # Greedily extend the run with contiguous successors that are
            # still resident and dirty at this instant.
            run = [hdr]
            j = i + 1
            while j < n and dirty[j].pageno == run[-1].pageno + 1 and live(dirty[j]):
                run.append(dirty[j])
                j += 1
            if len(run) == 1:
                self._write_back(hdr)
            else:
                vector_write(
                    run[0].pageno, b"".join(self._snapshot(h) for h in run)
                )
                for h in run:
                    h.dirty = False
                self._c_writebacks.value += len(run)
                self._c_batched_runs.value += 1
                if run[-1].pageno >= self._hole_threshold:
                    self._hole_threshold = run[-1].pageno + 1
            written += len(run)
            i = j
        return written

    def discard(self, predicate) -> int:
        """Drop every buffer matching ``predicate(hdr)`` WITHOUT writing
        it back -- transaction abort's tool: dirty buffers (and clean
        ones re-read from the transaction's own WAL images) simply
        vanish, and the next fault reads the pre-transaction bytes.
        Returns the number of buffers dropped; raises if any match is
        pinned (abort never runs mid-operation)."""
        mutex = self.mutex
        if mutex is None:
            return self._discard_locked(predicate)
        with mutex:
            return self._discard_locked(predicate)

    def _discard_locked(self, predicate) -> int:
        victims = [h for h in self._pool.values() if predicate(h)]
        for hdr in victims:
            if hdr.pins:
                raise AssertionError(f"discard of pinned buffer {hdr.key!r}")
        for hdr in victims:
            hdr.dirty = False  # _invalidate_locked must not write it back
            self._invalidate_locked(hdr.key)
        return len(victims)

    def drop_all(self) -> None:
        """Flush then empty the pool (table close)."""
        mutex = self.mutex
        if mutex is None:
            self._drop_all_locked()
            return
        with mutex:
            self._drop_all_locked()

    def _drop_all_locked(self) -> None:
        self._flush_locked(True)
        if any(h.pins for h in self._pool.values()):
            raise AssertionError("drop_all with pinned buffers resident")
        self._pool.clear()
        self._chain_prev.clear()

    # -- introspection -----------------------------------------------------------------

    def resident_keys(self) -> list[BufferKey]:
        mutex = self.mutex
        if mutex is None:
            return list(self._pool.keys())
        with mutex:
            return list(self._pool.keys())

    def dirty_count(self) -> int:
        # Snapshot the headers first: sibling readers faulting pages can
        # resize the dict mid-iteration when the pool is concurrent.
        mutex = self.mutex
        if mutex is None:
            return sum(1 for h in self._pool.values() if h.dirty)
        with mutex:
            return sum(1 for h in self._pool.values() if h.dirty)

    def metrics(self) -> dict:
        """The pool's accounting as the dict ``db.stat()`` nests under
        'buffer'."""
        return {
            "hits": self._c_hits.value,
            "misses": self._c_misses.value,
            "evictions": self._c_evictions.value,
            "chain_evictions": self._c_chain_evictions.value,
            "invalidations": self._c_invalidations.value,
            "writebacks": self._c_writebacks.value,
            "batched_runs": self._c_batched_runs.value,
            "resident": len(self._pool),
            "dirty": self.dirty_count(),
            "max_buffers": self.max_buffers,
        }
