"""Overflow-page allocation bitmaps.

"Overflow page use information is recorded in bitmaps which are themselves
stored on overflow pages.  The addresses of the bitmap pages and the number
of pages allocated at each split point are stored in the file header."

Every overflow page ever allocated has a *linear slot number* (allocation
order across split points, computable from its address and the cumulative
``spares`` array).  Bit ``n`` of the concatenated bitmaps is 1 while slot
``n`` is in use.  Bitmap pages occupy overflow slots like any other overflow
page -- the first bitmap page marks its own bit -- and are never freed.

Freed pages (reclaimed when a bucket splits, or when a deletion empties an
overflow page) are reused before the file is extended; ``last_freed`` in the
header is the scan hint.
"""

from __future__ import annotations

from repro.core.addressing import make_oaddr, oaddr_to_slot, slot_to_oaddr
from repro.core.constants import (
    MAX_OVFL_PER_SPLIT,
    MAX_SPLITS,
    PAGE_F_BITMAP,
    PAGE_HDR_SIZE,
)
from repro.core.errors import HashFullError
from repro.core.header import NO_LAST_FREED, Header


class OvflAllocator:
    """Allocates and frees overflow-page addresses for one table."""

    def __init__(self, header: Header, pool) -> None:
        self.header = header
        self.pool = pool
        #: usable bits per bitmap page (page header bytes are skipped)
        self.bits_per_page = (header.bsize - PAGE_HDR_SIZE) * 8

    # -- bit access ------------------------------------------------------------

    def _bitmap_buffer(self, index: int, *, create: bool = False):
        """Buffer header of bitmap page ``index``; allocates the overflow
        page for it when ``create`` is set and it does not exist yet."""
        oaddr = self.header.bitmaps[index]
        if oaddr == 0:
            if not create:
                raise AssertionError(f"bitmap page {index} does not exist")
            oaddr = self._extend_for_bitmap(index)
        return self.pool.get(("O", oaddr), create=False)

    def _locate_bit(self, slot: int) -> tuple[int, int, int]:
        page_index, bit = divmod(slot, self.bits_per_page)
        byte_off = PAGE_HDR_SIZE + bit // 8
        mask = 1 << (bit % 8)
        return page_index, byte_off, mask

    def is_set(self, slot: int) -> bool:
        page_index, byte_off, mask = self._locate_bit(slot)
        if self.header.bitmaps[page_index] == 0:
            return False
        hdr = self._bitmap_buffer(page_index)
        return bool(hdr.page[byte_off] & mask)

    def _set_bit(self, slot: int) -> None:
        page_index, byte_off, mask = self._locate_bit(slot)
        hdr = self._bitmap_buffer(page_index, create=True)
        hdr.page[byte_off] |= mask
        hdr.dirty = True

    def _clear_bit(self, slot: int) -> None:
        page_index, byte_off, mask = self._locate_bit(slot)
        hdr = self._bitmap_buffer(page_index)
        hdr.page[byte_off] &= ~mask & 0xFF
        hdr.dirty = True

    # -- extension ---------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Slots allocated so far (== spares at the current split point)."""
        return self.header.spares[self.header.ovfl_point]

    def _capacity(self) -> int:
        npages = sum(1 for a in self.header.bitmaps if a)
        return npages * self.bits_per_page

    def _raw_extend(self) -> tuple[int, int]:
        """Append one overflow slot at the current split point (no bitmap
        bookkeeping); returns ``(slot, oaddr)``."""
        h = self.header
        s = h.ovfl_point
        start = h.spares[s - 1] if s > 0 else 0
        idx = h.spares[s] - start + 1
        if idx > MAX_OVFL_PER_SPLIT:
            raise HashFullError(
                f"split point {s} exhausted its {MAX_OVFL_PER_SPLIT} overflow pages"
            )
        slot = h.spares[s]
        # spares is cumulative: every entry at or above the current split
        # point moves together (entries above are mirrors, fixed up when
        # ovfl_point advances).
        for i in range(s, MAX_SPLITS):
            h.spares[i] += 1
        return slot, make_oaddr(s, idx)

    def _extend_for_bitmap(self, index: int) -> int:
        """Allocate the overflow page that will hold bitmap page ``index``."""
        if index >= MAX_SPLITS:
            raise HashFullError("all 32 bitmap page slots are in use")
        slot, oaddr = self._raw_extend()
        self.header.bitmaps[index] = oaddr
        hdr = self.pool.get(("O", oaddr), create=True)
        hdr.view().initialize(flags=PAGE_F_BITMAP)
        hdr.dirty = True
        # A bitmap page's own slot must be coverable: slots grow one at a
        # time, so slot <= capacity-before, and this page adds capacity.
        self._set_bit(slot)
        return oaddr

    def _ensure_capacity(self, slot: int) -> None:
        while slot >= self._capacity():
            index = next(
                (i for i, a in enumerate(self.header.bitmaps) if a == 0), None
            )
            if index is None:
                raise HashFullError("all 32 bitmap page slots are in use")
            self._extend_for_bitmap(index)

    # -- public allocation API -------------------------------------------------------

    def alloc(self) -> int:
        """Allocate an overflow page; returns its 16-bit address.

        Freed pages are reused first (scanning from the ``last_freed``
        hint); otherwise the current split point is extended.
        """
        h = self.header
        if h.last_freed != NO_LAST_FREED:
            limit = self.total_slots
            for slot in range(h.last_freed, limit):
                if not self.is_set(slot):
                    self._set_bit(slot)
                    h.last_freed = slot + 1 if slot + 1 < limit else NO_LAST_FREED
                    return slot_to_oaddr(slot, h.spares, h.ovfl_point)
            h.last_freed = NO_LAST_FREED
        slot, oaddr = self._raw_extend()
        self._ensure_capacity(slot)
        self._set_bit(slot)
        return oaddr

    def free(self, oaddr: int) -> None:
        """Return an overflow page to the free pool (bucket split reclaimed
        it, or a deletion emptied it)."""
        slot = oaddr_to_slot(oaddr, self.header.spares)
        if not self.is_set(slot):
            raise AssertionError(f"double free of overflow page {oaddr:#x}")
        self._clear_bit(slot)
        self.pool.invalidate(("O", oaddr))
        if slot < self.header.last_freed or self.header.last_freed == NO_LAST_FREED:
            self.header.last_freed = slot

    def in_use_count(self) -> int:
        """Number of overflow slots currently marked in use (for stats)."""
        return sum(1 for slot in range(self.total_slots) if self.is_set(slot))
