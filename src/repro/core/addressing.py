"""Bucket and overflow-page address arithmetic (buddy-in-waiting layout).

The file interleaves linearly-growing primary (bucket) pages with groups of
overflow pages allocated at *split points* -- the boundaries between
generations of primary pages (paper, Figure 3).  An overflow address is a
16-bit quantity whose top 5 bits name the split point and whose low 11 bits
name the page within that split point (page number 0 is reserved so address
0 can mean "none").

The header's ``spares`` array records the *cumulative* number of overflow
pages allocated at each split point, which makes both mappings pure
arithmetic -- the paper's ``BUCKET_TO_PAGE`` and ``OADDR_TO_PAGE`` macros:

.. code-block:: c

    #define BUCKET_TO_PAGE(bucket) \\
        bucket + nhdr_pages + (bucket ? spares[log2(bucket + 1) - 1] : 0)
    #define OADDR_TO_PAGE(oaddr) \\
        BUCKET_TO_PAGE((1 << (oaddr >> 11)) - 1) + oaddr & 0x7ff

Key invariant: ``spares[s]`` freezes once the table grows into generation
``s + 1`` (the first bucket numbered >= 2**s is created), so every page's
physical address is stable for the life of the file.
"""

from __future__ import annotations

from repro.core.constants import (
    MAX_OVFL_PER_SPLIT,
    MAX_SPLITS,
    NO_OADDR,
    OVFL_PAGE_MASK,
    PAGE_BITS,
)


def log2_ceil(n: int) -> int:
    """Ceiling of log base 2 (the paper's ``log2()``); ``log2_ceil(1) == 0``."""
    if n <= 0:
        raise ValueError(f"log2_ceil requires a positive argument, got {n}")
    return (n - 1).bit_length()


def make_oaddr(split_point: int, pagenum: int) -> int:
    """Pack a (split point, page number) pair into a 16-bit overflow address.

    ``pagenum`` is 1-based within the split point.
    """
    if not 0 <= split_point < MAX_SPLITS:
        raise ValueError(f"split point {split_point} out of range [0, {MAX_SPLITS})")
    if not 1 <= pagenum <= MAX_OVFL_PER_SPLIT:
        raise ValueError(
            f"overflow page number {pagenum} out of range [1, {MAX_OVFL_PER_SPLIT}]"
        )
    return (split_point << PAGE_BITS) | pagenum


def split_oaddr(oaddr: int) -> tuple[int, int]:
    """Unpack an overflow address into (split point, 1-based page number)."""
    if oaddr == NO_OADDR:
        raise ValueError("cannot split the null overflow address")
    if not 0 < oaddr <= 0xFFFF:
        raise ValueError(f"overflow address {oaddr:#x} out of 16-bit range")
    split_point = oaddr >> PAGE_BITS
    pagenum = oaddr & OVFL_PAGE_MASK
    if pagenum == 0:
        raise ValueError(f"overflow address {oaddr:#x} has reserved page number 0")
    return split_point, pagenum


def bucket_to_page(bucket: int, hdr_pages: int, spares: list[int]) -> int:
    """Physical page number of primary (bucket) page ``bucket``."""
    if bucket < 0:
        raise ValueError(f"negative bucket number {bucket}")
    if bucket == 0:
        return hdr_pages
    return bucket + hdr_pages + spares[log2_ceil(bucket + 1) - 1]


def oaddr_to_page(oaddr: int, hdr_pages: int, spares: list[int]) -> int:
    """Physical page number of the overflow page with address ``oaddr``."""
    split_point, pagenum = split_oaddr(oaddr)
    last_bucket_before = (1 << split_point) - 1
    return bucket_to_page(last_bucket_before, hdr_pages, spares) + pagenum


def oaddr_to_slot(oaddr: int, spares: list[int]) -> int:
    """Linear 0-based allocation-slot number of an overflow page.

    Overflow pages are numbered in allocation order across split points:
    slot ``n`` of address ``(s, p)`` is ``spares[s-1] + p - 1`` (``spares``
    being cumulative).  This numbering indexes the allocation bitmaps.
    """
    split_point, pagenum = split_oaddr(oaddr)
    base = spares[split_point - 1] if split_point > 0 else 0
    return base + pagenum - 1


def slot_to_oaddr(slot: int, spares: list[int], ovfl_point: int) -> int:
    """Inverse of :func:`oaddr_to_slot` for slots allocated so far.

    Scans split points 0..ovfl_point to find the one whose cumulative range
    contains ``slot``.
    """
    if slot < 0:
        raise ValueError(f"negative overflow slot {slot}")
    prev = 0
    for s in range(ovfl_point + 1):
        if slot < spares[s]:
            return make_oaddr(s, slot - prev + 1)
        prev = spares[s]
    raise ValueError(f"overflow slot {slot} beyond allocated range")
