"""The new hashing package (the paper's contribution).

Public surface:

- :class:`~repro.core.table.HashTable` -- the engine (bytes in, bytes out).
- :class:`~repro.core.dbmap.HashDB` / :func:`~repro.core.dbmap.open` --
  dict-like convenience layer.
- :func:`~repro.core.table.suggest_parameters` -- Equation 1 helper.
- :mod:`repro.core.hashfuncs` -- the provided hash functions.
- :mod:`repro.core.compat` -- ndbm- and hsearch-compatible interfaces.
"""

from repro.core.dbmap import HashDB, open
from repro.core.errors import (
    BadFileError,
    ClosedError,
    HashError,
    HashFullError,
    HashFunctionMismatchError,
    InvalidParameterError,
    ReadOnlyError,
    TransactionError,
    WALCorruptionError,
)
from repro.core.hashfuncs import HASH_FUNCTIONS, get_hash_function
from repro.core.table import HashTable, TableStats, suggest_parameters

__all__ = [
    "HashTable",
    "HashDB",
    "open",
    "TableStats",
    "suggest_parameters",
    "HASH_FUNCTIONS",
    "get_hash_function",
    "HashError",
    "BadFileError",
    "HashFullError",
    "HashFunctionMismatchError",
    "InvalidParameterError",
    "ReadOnlyError",
    "ClosedError",
    "TransactionError",
    "WALCorruptionError",
]
