"""Structural verification of hash-table files (an fsck for hash(3) files).

:func:`verify_table` walks an open table page by page and cross-checks
every on-disk structure against every other:

- header sanity: masks, bucket counts, cumulative ``spares``, header pages;
- bucket chains: acyclic, in-range overflow addresses, parseable pages;
- pairs: every key hashes to the bucket storing it; big-pair references
  point at valid, in-use, correctly-sized overflow chains;
- allocation bitmaps: every overflow page referenced by a chain, big pair
  or bitmap is marked in use; unreferenced in-use slots are reported as
  leaks (warnings);
- freelist: the free-page chain is readable, no free page is also a live
  header/bucket/overflow page or lies past end of file, and every file
  page is accounted for (live or free; orphans are reported as leaks);
- counts: the header's ``nkeys`` matches a full scan.

Returns a :class:`CheckReport`; ``errors`` empty means the file is
structurally sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import addressing
from repro.core.bigpairs import BigPageView
from repro.core.constants import (
    MAX_OVFL_PER_SPLIT,
    MAX_SPLITS,
    NO_OADDR,
    PAGE_F_BIG,
    PAGE_F_BITMAP,
    PAGE_HDR_SIZE,
    SLOT_SIZE,
)
from repro.core.pages import PageView
from repro.core.table import HashTable


@dataclass
class CheckReport:
    """Outcome of a verification pass."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)

    def render(self) -> str:
        lines = []
        for e in self.errors:
            lines.append(f"ERROR: {e}")
        for w in self.warnings:
            lines.append(f"WARN:  {w}")
        for k, v in sorted(self.stats.items()):
            lines.append(f"{k}: {v}")
        lines.append("clean" if self.ok else f"{len(self.errors)} error(s)")
        return "\n".join(lines)


def _check_header(t: HashTable, report: CheckReport) -> None:
    h = t.header
    if h.low_mask != h.high_mask >> 1:
        report.error(f"mask mismatch: low={h.low_mask:#x} high={h.high_mask:#x}")
    if not h.low_mask <= h.max_bucket <= h.high_mask:
        report.error(
            f"max_bucket {h.max_bucket} outside masks "
            f"[{h.low_mask}, {h.high_mask}]"
        )
    if h.ovfl_point >= MAX_SPLITS:
        report.error(f"ovfl_point {h.ovfl_point} out of range")
    prev = 0
    for i, s in enumerate(h.spares):
        if s < prev:
            report.error(f"spares[{i}]={s} decreases (prev {prev})")
        if s - prev > MAX_OVFL_PER_SPLIT:
            report.error(f"spares[{i}] allocates more than a split point holds")
        prev = s
    if h.hdr_pages * h.bsize < 512:
        report.error(f"hdr_pages {h.hdr_pages} too small for the header")


def _parse_page(view: PageView, where: str, report: CheckReport) -> bool:
    """Bounds-check the slot table; False when the page is unusable."""
    bsize = view.bsize
    if view.data_off > bsize or view.data_off < PAGE_HDR_SIZE:
        report.error(f"{where}: data_off {view.data_off} out of range")
        return False
    if PAGE_HDR_SIZE + view.nslots * SLOT_SIZE > view.data_off:
        report.error(f"{where}: slot table overlaps entry data")
        return False
    for i in range(view.nslots):
        try:
            if view.slot_is_big(i):
                view.get_big_ref(i)
            else:
                view.get_pair(i)
        except Exception as exc:
            report.error(f"{where} slot {i}: unreadable ({exc})")
            return False
    return True


def verify_table(t: HashTable) -> CheckReport:
    """Verify an open table; read-only (safe on live tables)."""
    report = CheckReport()
    h = t.header
    _check_header(t, report)
    if report.errors:
        if t.tracer.enabled:
            t.tracer.recorder.auto_dump("check_failure")
        return report

    referenced: set[int] = set()  # overflow slots referenced by structures
    nkeys = 0
    chain_pages = 0
    big_pairs = 0
    max_chain = 0

    for bucket in range(h.max_bucket + 1):
        hdr = t._fault(("B", bucket))
        view = PageView(hdr.page)
        seen: set[int] = set()
        chain_len = 0
        where = f"bucket {bucket}"
        while True:
            if not _parse_page(view, where, report):
                break
            for i, big in view.iter_slots():
                if big:
                    oaddr, klen, dlen, prefix = view.get_big_ref(i)
                    big_pairs += 1
                    key = _check_big_chain(
                        t, oaddr, klen, dlen, prefix, where, report, referenced
                    )
                else:
                    key = view.get_key(i)
                if key is not None and t._bucket_of(key) != bucket:
                    report.error(
                        f"{where}: key {key[:32]!r} hashes to bucket "
                        f"{t._bucket_of(key)}"
                    )
                nkeys += 1
            nxt = view.ovfl_addr
            if nxt == NO_OADDR:
                break
            if nxt in seen:
                report.error(f"{where}: overflow chain cycle at {nxt:#x}")
                break
            seen.add(nxt)
            slot = _slot_of(t, nxt, where, report)
            if slot is None:
                break
            referenced.add(slot)
            chain_pages += 1
            chain_len += 1
            hdr = t._fault(("O", nxt))
            view = PageView(hdr.page)
            where = f"bucket {bucket} ovfl {nxt:#x}"
        max_chain = max(max_chain, chain_len)

    if nkeys != h.nkeys:
        report.error(f"header nkeys {h.nkeys} but scan found {nkeys}")

    # bitmap pages are in-use overflow pages too
    bitmap_pages = 0
    for oaddr in h.bitmaps:
        if oaddr == 0:
            continue
        bitmap_pages += 1
        slot = _slot_of(t, oaddr, "bitmap table", report)
        if slot is not None:
            referenced.add(slot)
            hdr = t._fault(("O", oaddr))
            if not PageView(hdr.page).flags & PAGE_F_BITMAP:
                report.error(f"bitmap page {oaddr:#x} not flagged PAGE_F_BITMAP")

    # cross-check the allocation bitmaps
    total_slots = h.spares[h.ovfl_point]
    in_use = 0
    for slot in range(total_slots):
        marked = t.allocator.is_set(slot)
        if marked:
            in_use += 1
        if slot in referenced and not marked:
            report.error(f"overflow slot {slot} referenced but marked free")
    leaked = in_use - len(referenced)
    if leaked:
        report.warn(f"{leaked} in-use overflow slot(s) not referenced (leak)")

    free_pages = _check_freelist(t, total_slots, report)

    report.stats.update(
        nkeys=nkeys,
        buckets=h.max_bucket + 1,
        overflow_slots_allocated=total_slots,
        overflow_slots_in_use=in_use,
        chain_pages=chain_pages,
        bitmap_pages=bitmap_pages,
        big_pairs=big_pairs,
        longest_chain=max_chain,
        fill_ratio=round(nkeys / (h.max_bucket + 1), 2),
        freelist_pages=free_pages,
    )
    if not report.ok and t.tracer.enabled:
        # preserve the event tail that led to the structural damage
        t.tracer.recorder.auto_dump("check_failure")
    return report


def _check_freelist(t: HashTable, total_slots: int, report: CheckReport) -> int:
    """Cross-check the pager freelist against every other structure.

    A page on the freelist must not also be a header, bucket or in-use
    overflow page (double use corrupts on reallocation), and must lie
    inside the file.  Inversely, every file page must be accounted for:
    header, bucket, overflow slot or free -- anything else is leaked
    space (a warning, like the bitmap leak check).  Returns the freelist
    length for the report stats.
    """
    h = t.header
    fl = t._file.freelist
    free_pages = fl.pages()
    dropped = t.stats.extra.get("freelist_dropped")
    if dropped:
        report.error(f"freelist chain dropped at open: {dropped}")
    npages = t._file.npages()
    live: dict[int, str] = {p: "header" for p in range(h.hdr_pages)}
    for bucket in range(h.max_bucket + 1):
        page = addressing.bucket_to_page(bucket, h.hdr_pages, h.spares)
        live[page] = f"bucket {bucket}"
    ovfl_pages: set[int] = set()
    for slot in range(total_slots):
        oaddr = addressing.slot_to_oaddr(slot, h.spares, h.ovfl_point)
        page = addressing.oaddr_to_page(oaddr, h.hdr_pages, h.spares)
        ovfl_pages.add(page)
        if t.allocator.is_set(slot):
            live[page] = f"overflow slot {slot}"
    for p in free_pages:
        if p >= npages:
            report.error(
                f"freelist page {p} beyond end of file ({npages} pages)"
            )
        if p in live:
            report.error(f"freelist page {p} is live ({live[p]})")
    orphans = [
        p
        for p in range(npages)
        if p not in live and p not in ovfl_pages and p not in fl
    ]
    if orphans:
        report.warn(
            f"{len(orphans)} file page(s) neither live nor free (leak): "
            f"{orphans[:8]}"
        )
    return len(free_pages)


def _slot_of(t: HashTable, oaddr: int, where: str, report: CheckReport):
    try:
        split, page = addressing.split_oaddr(oaddr)
    except ValueError as exc:
        report.error(f"{where}: bad overflow address {oaddr:#x} ({exc})")
        return None
    h = t.header
    base = h.spares[split - 1] if split else 0
    if base + page > h.spares[split]:
        report.error(
            f"{where}: overflow address {oaddr:#x} beyond spares[{split}]"
        )
        return None
    return addressing.oaddr_to_slot(oaddr, h.spares)


def _check_big_chain(
    t: HashTable,
    head: int,
    klen: int,
    dlen: int,
    prefix: bytes,
    where: str,
    report: CheckReport,
    referenced: set[int],
) -> bytes | None:
    """Walk a big-pair chain; returns the key (for hash placement checks)
    or None when the chain is broken."""
    total = klen + dlen
    got = 0
    oaddr = head
    seen: set[int] = set()
    parts = []
    while oaddr != NO_OADDR:
        if oaddr in seen:
            report.error(f"{where}: big-pair chain cycle at {oaddr:#x}")
            return None
        seen.add(oaddr)
        slot = _slot_of(t, oaddr, where, report)
        if slot is None:
            return None
        referenced.add(slot)
        hdr = t._fault(("O", oaddr))
        view = BigPageView(hdr.page)
        if not view.flags & PAGE_F_BIG:
            report.error(f"{where}: big-pair page {oaddr:#x} not flagged")
            return None
        parts.append(view.payload())
        got += view.used
        if got >= total:
            break
        oaddr = view.next_oaddr
    if got < total:
        report.error(
            f"{where}: big pair truncated ({got} of {total} bytes)"
        )
        return None
    payload = b"".join(parts)
    key = payload[:klen]
    if key[: len(prefix)] != prefix:
        report.error(f"{where}: big-pair inline prefix mismatch")
    return key


def verify_file(path, **open_kwargs) -> CheckReport:
    """Open ``path`` read-only and verify it."""
    t = HashTable.open_file(path, readonly=True, **open_kwargs)
    try:
        return verify_table(t)
    finally:
        t.close()
