"""Dict-like convenience wrapper and the module-level ``open`` helper."""

from __future__ import annotations

import os
from collections.abc import MutableMapping
from typing import Iterator

from repro.core.constants import (
    DEFAULT_BSIZE,
    DEFAULT_CACHESIZE,
    DEFAULT_FFACTOR,
)
from repro.core.hashfuncs import HashFunction
from repro.core.table import HashTable


def _to_bytes(value) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError(f"keys and values must be bytes or str, not {type(value).__name__}")


class HashDB(MutableMapping):
    """A ``MutableMapping`` over a :class:`~repro.core.table.HashTable`.

    Accepts ``str`` or ``bytes`` keys and values (strings are UTF-8
    encoded); always returns ``bytes``.
    """

    def __init__(self, table: HashTable) -> None:
        self.table = table

    def __getitem__(self, key) -> bytes:
        value = self.table.get(_to_bytes(key))
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key, value) -> None:
        self.table.put(_to_bytes(key), _to_bytes(value))

    def __delitem__(self, key) -> None:
        if not self.table.delete(_to_bytes(key)):
            raise KeyError(key)

    def __contains__(self, key) -> bool:
        return _to_bytes(key) in self.table

    def __iter__(self) -> Iterator[bytes]:
        return self.table.keys()

    def __len__(self) -> int:
        return len(self.table)

    # -- batched fast paths (amortized locks, pins, trace spans) ---------------

    def put_many(self, items, *, replace: bool = True) -> int:
        """Store many pairs in one batched call; returns how many stored."""
        if hasattr(items, "items"):
            items = items.items()
        return self.table.put_many(
            [(_to_bytes(k), _to_bytes(v)) for k, v in items], replace=replace
        )

    def get_many(self, keys, default: bytes | None = None) -> list:
        """Values for ``keys``, order preserved; ``default`` where absent."""
        return self.table.get_many([_to_bytes(k) for k in keys], default)

    def delete_many(self, keys) -> int:
        """Remove many keys; returns how many were present."""
        return self.table.delete_many([_to_bytes(k) for k in keys])

    def update(self, other=(), **kw) -> None:  # type: ignore[override]
        """dict.update routed through :meth:`put_many` (one batch)."""
        if hasattr(other, "items"):
            other = other.items()
        pairs = [(_to_bytes(k), _to_bytes(v)) for k, v in other]
        pairs.extend((_to_bytes(k), _to_bytes(v)) for k, v in kw.items())
        if pairs:
            self.table.put_many(pairs)

    def bulk_load(self, items, *, nelem: int | None = None) -> int:
        """Presized bottom-up load of an empty table (zero splits); see
        :meth:`repro.core.table.HashTable.bulk_load`."""
        if hasattr(items, "items"):
            items = items.items()
        return self.table.bulk_load(
            [(_to_bytes(k), _to_bytes(v)) for k, v in items], nelem=nelem
        )

    def sync(self) -> None:
        self.table.sync()

    def close(self) -> None:
        self.table.close()

    def __enter__(self) -> "HashDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open(  # noqa: A001 - mirrors dbm.open's name deliberately
    path: str | os.PathLike | None = None,
    flag: str = "r",
    *,
    bsize: int = DEFAULT_BSIZE,
    ffactor: int = DEFAULT_FFACTOR,
    nelem: int = 1,
    cachesize: int = DEFAULT_CACHESIZE,
    hashfn: str | HashFunction | None = None,
) -> HashDB:
    """Open a hash database, dbm-style.

    ``flag`` is one of ``'r'`` (read-only), ``'w'`` (read-write existing),
    ``'c'`` (create if missing), ``'n'`` (always create fresh).  With
    ``path=None`` an anonymous table is created regardless of ``flag``.
    """
    if flag not in ("r", "w", "c", "n"):
        raise ValueError(f"flag must be one of 'r', 'w', 'c', 'n', got {flag!r}")
    create_kwargs = dict(
        bsize=bsize, ffactor=ffactor, nelem=nelem, cachesize=cachesize, hashfn=hashfn
    )
    if path is None:
        return HashDB(HashTable.create(None, **create_kwargs))
    path = os.fspath(path)
    exists = os.path.exists(path)
    if flag == "n" or (flag == "c" and not exists):
        table = HashTable.create(path, **create_kwargs)
    else:
        table = HashTable.open_file(
            path, cachesize=cachesize, hashfn=hashfn, readonly=(flag == "r")
        )
    return HashDB(table)
