"""Write-ahead log: crash-atomic transactions in front of any pager.

The paper's durability story ends at ``sync()``: a crash mid-split can
still lose acknowledged writes, because page write-back happens in
whatever order the buffer pool evicts.  This module closes that gap with
a physical-redo WAL in the style the serious engines converged on
(ARIES' redo pass, SQLite's wal mode): page images are appended to a
sidecar log ``<path>.wal`` *instead of* the table file, and the table
file itself is only ever written during a checkpoint or recovery --
after the logged images are safely on disk -- so a torn table-file write
can always be repaired from the log.

Layered here, bottom up:

- :class:`WriteAheadLog` -- the checksummed record format over a
  byte-granular store (:class:`~repro.storage.bytefile.ByteFile` on
  disk, :class:`MemByteStore` in RAM).  Frames carry a CRC32, a
  monotonic LSN, the owning transaction id, a frame type (PAGE / COMMIT
  / ROLLBACK / CHECKPOINT plus optional PUT/DELETE audit records) and a
  payload.  :meth:`WriteAheadLog.scan` stops cleanly at the first torn
  or corrupt frame, so a crash mid-append loses at most the
  unacknowledged tail.
- :class:`WALPager` -- a :class:`~repro.storage.pager.Pager` decorator
  the buffer pool writes through: ``write_page`` appends a PAGE frame,
  ``read_page`` serves the newest logged image (uncommitted first, then
  committed, then the real file).  The table file underneath stays
  untouched between checkpoints.
- :class:`TransactionManager` -- begin/commit/abort bookkeeping shared
  by the hash and btree engines: commit = flush dirty pages into the
  log, log the meta page, append COMMIT; abort = discard dirty buffers
  and roll the engine's in-memory state back to the begin() snapshot.
  Engine-specific state travels through two callables (``snapshot`` /
  ``restore``), so the manager stays ignorant of headers and masks.
- :class:`GroupCommitter` -- the commit-queue condition variable:
  concurrent committers under ``durability='wal+fsync'`` elect one
  leader to fsync for the whole queue, so N commits cost far fewer than
  N fsyncs (BENCH_wal.json asserts this).
- :func:`recover` -- replay-on-open: applies the last committed image
  of every page to the table file, fsyncs it, then truncates the log.
  Runs before the table header is even probed, so the engine never sees
  a pre-crash file.

Checkpointing bounds replay length: when the log passes
``checkpoint_bytes`` (or on ``sync()``/``close()``), committed images
are transferred into the table file -- contiguous runs coalesced into
vectored ``write_pages`` calls, the same batching as
:meth:`~repro.core.buffer.BufferPool.flush` -- the table file is
fsynced, and only then is the log truncated.  Crash at any point in
that sequence leaves either a full log or a fully-transferred file.

See docs/TRANSACTIONS.md for the record format and the replay
algorithm's torn-tail rules.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib

from repro.core.errors import TransactionError, WALCorruptionError
from repro.storage.iostats import IOStats

__all__ = [
    "DURABILITY_LEVELS",
    "DEFAULT_CHECKPOINT_BYTES",
    "FT_PAGE",
    "FT_COMMIT",
    "FT_ROLLBACK",
    "FT_CHECKPOINT",
    "FT_PUT",
    "FT_DELETE",
    "FRAME_NAMES",
    "Frame",
    "TransactionContext",
    "MemByteStore",
    "WriteAheadLog",
    "WALPager",
    "GroupCommitter",
    "TransactionManager",
    "recover",
    "read_wal_header",
    "wal_path_for",
]

#: the ``durability=`` open flag's accepted values
DURABILITY_LEVELS = ("none", "wal", "wal+fsync")

#: default log size that triggers an automatic checkpoint
DEFAULT_CHECKPOINT_BYTES = 1 << 20

# -- record format -------------------------------------------------------------

WAL_MAGIC = 0x57414C31  # "WAL1"
WAL_VERSION = 1

#: file header: magic, version, pagesize, reserved
_HDR = struct.Struct(">IIII")
WAL_HDR_SIZE = _HDR.size

#: frame header: crc32, lsn, txid, ftype, pageno, payload length.  The CRC
#: covers the rest of the header plus the payload.
_FRAME = struct.Struct(">IQQBII")
FRAME_HDR_SIZE = _FRAME.size

FT_PAGE = 1  #: payload = one page image
FT_COMMIT = 2  #: transaction ``txid`` is durable up to this LSN
FT_ROLLBACK = 3  #: transaction ``txid`` was aborted (advisory: replay
#: already ignores transactions with no COMMIT)
FT_CHECKPOINT = 4  #: log was truncated here after a checkpoint
FT_PUT = 5  #: audit record: key + value length (``wal_audit=True`` only)
FT_DELETE = 6  #: audit record: key (``wal_audit=True`` only)

FRAME_NAMES = {
    FT_PAGE: "PAGE",
    FT_COMMIT: "COMMIT",
    FT_ROLLBACK: "ROLLBACK",
    FT_CHECKPOINT: "CHECKPOINT",
    FT_PUT: "PUT",
    FT_DELETE: "DELETE",
}

#: hard sanity bound on a frame's payload length during scans: anything
#: larger is treated as tail corruption (big-pair audit keys are capped
#: below this at append time)
MAX_PAYLOAD = 1 << 24


class Frame:
    """One decoded log record (as yielded by :meth:`WriteAheadLog.scan`)."""

    __slots__ = ("lsn", "txid", "ftype", "pageno", "offset", "length", "payload")

    def __init__(self, lsn, txid, ftype, pageno, offset, length, payload):
        self.lsn = lsn
        self.txid = txid
        self.ftype = ftype
        self.pageno = pageno
        #: byte offset of the frame header within the log file
        self.offset = offset
        self.length = length
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = FRAME_NAMES.get(self.ftype, f"?{self.ftype}")
        return (
            f"<Frame lsn={self.lsn} txid={self.txid} {name} "
            f"pageno={self.pageno} len={self.length} @{self.offset}>"
        )


def wal_path_for(path) -> str:
    """The sidecar log path for table file ``path``."""
    return os.fspath(path) + ".wal"


def read_wal_header(store) -> tuple[int, int, int]:
    """``(magic, version, pagesize)`` from a log's file header.

    Raises :class:`WALCorruptionError` on a file too short to hold one;
    callers (tools, recovery) validate magic/version themselves so they
    can phrase the error for their context."""
    raw = store.read_at_most(0, WAL_HDR_SIZE)
    if len(raw) < WAL_HDR_SIZE:
        raise WALCorruptionError(
            f"{store.path}: {len(raw)} bytes is too short for a WAL header"
        )
    magic, version, pagesize, _ = _HDR.unpack(raw)
    return magic, version, pagesize


class TransactionContext:
    """``with db.transaction():`` -- commit on clean exit, abort on
    exception.  Returned by every engine's/access method's
    ``transaction()``; works on anything exposing begin/commit/abort."""

    __slots__ = ("_db",)

    def __init__(self, db) -> None:
        self._db = db

    def __enter__(self):
        self._db.begin()
        return self._db

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._db.commit()
        else:
            self._db.abort()
        return False


class MemByteStore:
    """RAM-backed stand-in for :class:`~repro.storage.bytefile.ByteFile`.

    In-memory and anonymous-temp tables get full transaction *semantics*
    (atomic commit/abort) without a durable log; ``sync`` is a no-op and
    nothing survives the process, exactly like the table itself.
    """

    def __init__(self) -> None:
        self.path = None
        self.readonly = False
        self.stats = IOStats()
        self.on_io = None
        self._buf = bytearray()
        self._closed = False

    def read_at(self, offset: int, nbytes: int) -> bytes:
        data = self.read_at_most(offset, nbytes)
        if len(data) != nbytes:
            raise EOFError(
                f"short read at offset {offset}: wanted {nbytes}, got {len(data)}"
            )
        return data

    def read_at_most(self, offset: int, nbytes: int) -> bytes:
        self._check_open()
        data = bytes(self._buf[offset : offset + nbytes])
        self.stats.record_read(len(data))
        return data

    def write_at(self, offset: int, data: bytes) -> None:
        self._check_open()
        end = offset + len(data)
        if end > len(self._buf):
            self._buf.extend(b"\0" * (end - len(self._buf)))
        self._buf[offset:end] = data
        self.stats.record_write(len(data))

    def size(self) -> int:
        self._check_open()
        return len(self._buf)

    def truncate_to(self, nbytes: int) -> None:
        self._check_open()
        if nbytes < len(self._buf):
            del self._buf[nbytes:]
        else:
            self._buf.extend(b"\0" * (nbytes - len(self._buf)))
        self.stats.record_syscall()

    def sync(self) -> None:
        self._check_open()
        self.stats.record_syscall()

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed MemByteStore")


class WriteAheadLog:
    """The checksummed record format over one byte-granular store.

    Not thread-safe on its own: every append happens under the owning
    table's write lock (the same discipline as the buffer pool), and
    fsync coordination lives in :class:`GroupCommitter`.
    """

    def __init__(
        self, store, pagesize: int, *, fresh: bool, scan_existing: bool = True
    ) -> None:
        self.store = store
        self.pagesize = pagesize
        #: next frame's log sequence number (monotonic per log generation)
        self.next_lsn = 1
        #: append position (== the log's logical size in bytes)
        self.tail = WAL_HDR_SIZE
        #: lifetime counters for ``stat()['wal']``
        self.frames_appended = 0
        self.resets = 0
        if fresh or store.size() < WAL_HDR_SIZE:
            self._write_file_header()
            if store.size() > WAL_HDR_SIZE:
                store.truncate_to(WAL_HDR_SIZE)
        else:
            magic, version, stored_ps, _ = _HDR.unpack(
                store.read_at(0, WAL_HDR_SIZE)
            )
            if magic != WAL_MAGIC:
                raise WALCorruptionError(
                    f"{store.path}: bad WAL magic {magic:#x}"
                )
            if version != WAL_VERSION:
                raise WALCorruptionError(
                    f"{store.path}: unsupported WAL version {version}"
                )
            if stored_ps != pagesize:
                raise WALCorruptionError(
                    f"{store.path}: WAL pagesize {stored_ps} does not match "
                    f"table pagesize {pagesize}"
                )
            # Resume appending after the valid prefix (normally the log
            # was truncated at the last clean checkpoint, so this is a
            # no-frame scan).  ``scan_existing=False`` skips it for
            # callers about to run their own full scan (recovery).
            if scan_existing:
                last = None
                for frame in self.scan(verify=True):
                    last = frame
                if last is not None:
                    self.next_lsn = last.lsn + 1
                    self.tail = last.offset + FRAME_HDR_SIZE + last.length

    def _write_file_header(self) -> None:
        self.store.write_at(0, _HDR.pack(WAL_MAGIC, WAL_VERSION, self.pagesize, 0))

    # -- appending -------------------------------------------------------------

    def _encode(self, ftype: int, txid: int, pageno: int, payload: bytes):
        lsn = self.next_lsn
        self.next_lsn += 1
        body = struct.pack(">QQBII", lsn, txid, ftype, pageno, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(body))
        return lsn, struct.pack(">I", crc) + body + payload

    def append(
        self, ftype: int, txid: int, pageno: int = 0, payload: bytes = b""
    ) -> tuple[int, int]:
        """Append one frame; returns ``(lsn, offset)`` of its header."""
        lsn, raw = self._encode(ftype, txid, pageno, payload)
        offset = self.tail
        self.store.write_at(offset, raw)
        self.tail = offset + len(raw)
        self.frames_appended += 1
        return lsn, offset

    def append_pages(self, txid: int, pages) -> list[tuple[int, int, int]]:
        """Append a batch of PAGE frames in ONE store write (the vectored
        twin of ``Pager.write_pages``); ``pages`` is ``[(pageno, image)]``.
        Returns ``[(pageno, lsn, offset)]``."""
        out = []
        chunks = []
        offset = self.tail
        for pageno, image in pages:
            lsn, raw = self._encode(FT_PAGE, txid, pageno, image)
            out.append((pageno, lsn, offset))
            chunks.append(raw)
            offset += len(raw)
        if chunks:
            self.store.write_at(self.tail, b"".join(chunks))
            self.tail = offset
            self.frames_appended += len(chunks)
        return out

    def read_payload(self, offset: int, length: int) -> bytes:
        """Payload bytes of the frame whose header sits at ``offset``.

        No CRC re-check: this serves :class:`WALPager` read redirection
        for frames this process wrote moments ago; :meth:`scan` is the
        validating path."""
        return self.store.read_at(offset + FRAME_HDR_SIZE, length)

    # -- scanning ---------------------------------------------------------------

    def scan(self, *, verify: bool = True):
        """Yield every valid :class:`Frame` from the start of the log.

        Stops silently at the first sign of a torn tail: a short frame
        header, a short payload, an unknown frame type, an insane
        length, or a CRC mismatch.  Everything before that point is
        exactly the prefix recovery may trust; everything after it is
        unreachable even if well-formed (a corrupt middle frame orphans
        its tail -- the documented bit-flip semantics).
        """
        store = self.store
        offset = WAL_HDR_SIZE
        size = store.size()
        while offset + FRAME_HDR_SIZE <= size:
            raw = store.read_at_most(offset, FRAME_HDR_SIZE)
            if len(raw) < FRAME_HDR_SIZE:
                return
            crc, lsn, txid, ftype, pageno, length = _FRAME.unpack(raw)
            if ftype not in FRAME_NAMES or length > MAX_PAYLOAD:
                return
            if offset + FRAME_HDR_SIZE + length > size:
                return
            payload = store.read_at_most(offset + FRAME_HDR_SIZE, length)
            if len(payload) < length:
                return
            if verify:
                expect = zlib.crc32(payload, zlib.crc32(raw[4:]))
                if crc != expect:
                    return
            yield Frame(lsn, txid, ftype, pageno, offset, length, payload)
            offset += FRAME_HDR_SIZE + length

    # -- maintenance ------------------------------------------------------------

    def size_bytes(self) -> int:
        return self.tail

    def sync(self) -> None:
        self.store.sync()

    def reset(self) -> None:
        """Truncate the log after a checkpoint (caller already made the
        table file durable).  A CHECKPOINT marker frame restarts the new
        generation so tools can see the truncation happened on purpose."""
        self.store.truncate_to(WAL_HDR_SIZE)
        self.tail = WAL_HDR_SIZE
        self.resets += 1
        self.append(FT_CHECKPOINT, 0)
        self.store.sync()

    def close(self) -> None:
        self.store.close()


class GroupCommitter:
    """Coalesce concurrent committers into shared fsyncs.

    Committers enqueue under a condition variable; whoever finds no
    fsync in flight becomes the leader, reads the highest appended LSN,
    and fsyncs once *outside* the lock -- every follower whose COMMIT
    frame was already appended is covered by that single syscall and
    returns without issuing its own.  ``fsyncs < commits`` under
    concurrency is the whole point (asserted by BENCH_wal.json).
    """

    def __init__(self, store, last_lsn) -> None:
        self._store = store
        #: zero-arg callable returning the highest LSN appended so far
        self._last_lsn = last_lsn
        self._cv = threading.Condition()
        self._synced_lsn = 0
        self._syncing = False
        #: committers that asked for durability (``commit_wait`` calls)
        self.commits = 0
        #: fsync syscalls actually issued
        self.fsyncs = 0
        #: optional ``(kind, t0, dur, attrs)`` callback for timed trace
        #: spans (``commit_wait`` per committer, ``fsync`` per leader);
        #: ``t0`` is an absolute perf_counter reading.  Must not raise.
        self.emit = None

    def commit_wait(self, lsn: int) -> None:
        """Block until everything up to ``lsn`` is fsynced."""
        emit = self.emit
        t_wait = time.perf_counter() if emit is not None else 0.0
        leader = False
        with self._cv:
            self.commits += 1
            while True:
                if self._synced_lsn >= lsn:
                    if emit is not None:
                        emit("commit_wait", t_wait,
                             time.perf_counter() - t_wait, {"lsn": lsn})
                    return
                if not self._syncing:
                    self._syncing = True
                    leader = True
                    break
                self._cv.wait()
        # Leader: fsync outside the CV so followers can enqueue while the
        # syscall is in flight (that queue IS the next batch).
        target = self._last_lsn()
        t_sync = time.perf_counter() if emit is not None else 0.0
        try:
            self._store.sync()
        finally:
            with self._cv:
                self._syncing = False
                self._cv.notify_all()
        with self._cv:
            self.fsyncs += 1
            if target > self._synced_lsn:
                self._synced_lsn = target
        if emit is not None:
            now = time.perf_counter()
            emit("fsync", t_sync, now - t_sync,
                 {"lsn": lsn, "target_lsn": target, "leader": leader})
            emit("commit_wait", t_wait, now - t_wait, {"lsn": lsn})


class WALPager:
    """Pager decorator that redirects writes into the log.

    Sits between the buffer pool and the real file: ``write_page``
    appends a PAGE frame tagged with the current transaction id;
    ``read_page`` serves the newest logged image -- this transaction's
    pending writes first, then committed-but-not-checkpointed images,
    then the real file.  The table file underneath is written only by
    checkpoints and recovery.

    Uncommitted pages may reach the log through buffer-pool eviction
    (the pool may steal dirty pages at any time); that is safe because
    replay ignores every transaction without a COMMIT frame.
    """

    def __init__(self, inner, wal: WriteAheadLog) -> None:
        if inner.pagesize != wal.pagesize:
            raise ValueError(
                f"pager pagesize {inner.pagesize} != WAL pagesize {wal.pagesize}"
            )
        self.inner = inner
        self.wal = wal
        #: pageno -> (offset, length): frames of the CURRENT transaction
        self.pending: dict[int, tuple[int, int]] = {}
        #: pageno -> (offset, length): newest committed, pre-checkpoint image
        self.committed: dict[int, tuple[int, int]] = {}
        #: transaction id stamped on appended PAGE frames
        self.txid = 0
        self._cb = None

    # -- transaction hooks (driven by TransactionManager) ---------------------------

    def begin_txn(self, txid: int) -> None:
        self.txid = txid

    def commit_txn(self) -> None:
        self.committed.update(self.pending)
        self.pending.clear()

    def abort_txn(self) -> None:
        self.pending.clear()

    # -- Pager protocol ---------------------------------------------------------

    def read_page(self, pageno: int) -> bytes:
        loc = self.pending.get(pageno)
        if loc is None:
            loc = self.committed.get(pageno)
        if loc is None:
            return self.inner.read_page(pageno)
        data = self.wal.read_payload(loc[0], loc[1])
        cb = self._cb
        if cb is not None:
            cb("read", pageno, len(data))
        if len(data) < self.pagesize:
            data += b"\0" * (self.pagesize - len(data))
        return data

    def write_page(self, pageno: int, data: bytes) -> None:
        if len(data) > self.pagesize:
            raise ValueError(
                f"data of {len(data)} bytes exceeds pagesize {self.pagesize}"
            )
        if len(data) < self.pagesize:
            data = bytes(data) + b"\0" * (self.pagesize - len(data))
        _lsn, offset = self.wal.append(FT_PAGE, self.txid, pageno, data)
        self.pending[pageno] = (offset, len(data))
        fl = self.inner.freelist
        if fl:
            fl.discard(pageno)  # a logged write claims the page now
        cb = self._cb
        if cb is not None:
            cb("write", pageno, len(data))

    def write_pages(self, start_pageno: int, data: bytes) -> None:
        ps = self.pagesize
        if not data or len(data) % ps:
            raise ValueError(
                f"vectored write of {len(data)} bytes is not a whole number "
                f"of {ps}-byte pages"
            )
        pages = [
            (start_pageno + i, bytes(data[i * ps : (i + 1) * ps]))
            for i in range(len(data) // ps)
        ]
        fl = self.inner.freelist
        for pageno, _lsn, offset in self.wal.append_pages(self.txid, pages):
            self.pending[pageno] = (offset, ps)
            if fl:
                fl.discard(pageno)
        cb = self._cb
        if cb is not None:
            for pageno, _image in pages:
                cb("write", pageno, ps)

    def sync(self) -> None:
        self.wal.sync()

    def truncate(self, npages: int) -> None:
        for index in (self.pending, self.committed):
            for pageno in [p for p in index if p >= npages]:
                del index[pageno]
        self.inner.truncate(npages)

    def npages(self) -> int:
        n = self.inner.npages()
        for index in (self.pending, self.committed):
            for pageno in index:
                if pageno >= n:
                    n = pageno + 1
        return n

    def size_bytes(self) -> int:
        return self.npages() * self.pagesize

    def free_page(self, pageno: int) -> None:
        """Mark a page reusable.  The set lives on the base pager, but
        freeing during a transaction is safe: the table snapshots and
        restores the freelist across aborts along with its header."""
        if self.readonly:
            raise OSError("free_page on readonly pager")
        if pageno >= self.npages():
            raise ValueError(
                f"cannot free page {pageno} past EOF ({self.npages()} pages)"
            )
        self.inner.freelist.add(pageno)

    def alloc_page(self) -> int:
        """Lowest free page, else one past logical EOF (logged pages
        beyond the physical file count as allocated)."""
        if self.readonly:
            raise OSError("alloc_page on readonly pager")
        pageno = self.inner.freelist.pop_lowest()
        return pageno if pageno is not None else self.npages()

    @property
    def freelist(self):
        return self.inner.freelist

    def close(self) -> None:
        self.inner.close()

    # -- passthroughs -----------------------------------------------------------

    @property
    def pagesize(self) -> int:
        return self.inner.pagesize

    @property
    def readonly(self) -> bool:
        return self.inner.readonly

    @property
    def path(self):
        return self.inner.path

    @property
    def stats(self):
        return self.inner.stats

    @property
    def closed(self) -> bool:
        return self.inner.closed

    @property
    def on_page_io(self):
        return self._cb

    @on_page_io.setter
    def on_page_io(self, cb) -> None:
        # WAL-served operations emit from this wrapper; operations that
        # fall through emit from the inner pager -- exactly one event
        # per logical page I/O either way.
        self._cb = cb
        self.inner.on_page_io = cb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WALPager pending={len(self.pending)} "
            f"committed={len(self.committed)} over {self.inner!r}>"
        )


class TransactionManager:
    """begin/commit/abort bookkeeping shared by the page-based engines.

    The manager owns the transaction lifecycle; the engine supplies four
    capabilities and stays otherwise unchanged:

    - ``write_meta()`` -- write the header/meta page(s) (through the
      :class:`WALPager`, so they land in the log);
    - ``snapshot()`` / ``restore(state)`` -- copy out / put back the
      engine's volatile state (hash header, btree root pointers) so
      abort can rewind memory to the ``begin()`` point;
    - ``check()`` -- the engine's writability check, run after the
      write lock is taken.

    Between explicit transactions every write belongs to an *implicit*
    transaction that commits at the next ``begin()``, ``sync()``,
    ``checkpoint()`` or ``close()`` -- so non-transactional code keeps
    its historical semantics, just with crash atomicity added.

    Lock discipline: ``begin()`` acquires the table's write guard and
    holds it until ``commit()``/``abort()`` (the guard is reentrant, so
    the transaction's own operations nest freely).  Transactions are
    therefore thread-affine; with ``concurrent=True`` other threads
    simply block until commit, and group commit batches their fsyncs.
    """

    def __init__(
        self,
        *,
        wal: WriteAheadLog,
        walpager: WALPager,
        inner,
        pool,
        write_meta,
        snapshot,
        restore,
        check,
        guard,
        hooks=None,
        obs=None,
        fsync: bool = False,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        audit: bool = False,
        on_restore=None,
    ) -> None:
        self.wal = wal
        self.walpager = walpager
        self.inner = inner
        self.pool = pool
        self._write_meta = write_meta
        self._snapshot = snapshot
        self._restore = restore
        self._check = check
        self._guard = guard
        self.hooks = hooks
        self.fsync_mode = fsync
        self.checkpoint_bytes = checkpoint_bytes
        #: append PUT/DELETE audit frames per operation (costs one log
        #: write per mutation; off by default)
        self.audit = audit
        self._on_restore = on_restore
        self.group = GroupCommitter(wal.store, lambda: wal.next_lsn - 1)
        self.group.emit = self._emit_wal_timed
        self._next_txid = 1
        self.explicit_txid: int | None = None
        self._saved = None
        self.commits = 0
        self.aborts = 0
        self.checkpoints = 0
        self.checkpoint_pages = 0
        if obs is not None:
            obs.gauge("wal_bytes").set_function(lambda: self.wal.tail)
            obs.gauge("frames").set_function(lambda: self.wal.frames_appended)
            obs.gauge("commits").set_function(lambda: self.commits)
            obs.gauge("aborts").set_function(lambda: self.aborts)
            obs.gauge("fsyncs").set_function(lambda: self.group.fsyncs)
            obs.gauge("checkpoints").set_function(lambda: self.checkpoints)
        walpager.begin_txn(self._alloc_txid())

    def _alloc_txid(self) -> int:
        txid = self._next_txid
        self._next_txid += 1
        return txid

    def _emit_wal(self, kind: str, **extra) -> None:
        hooks = self.hooks
        if hooks is not None and hooks.on_wal:
            payload = {"kind": kind, "wal_bytes": self.wal.tail}
            payload.update(extra)
            hooks.emit("on_wal", payload)

    def _emit_wal_timed(self, kind: str, t0: float, dur: float, attrs: dict) -> None:
        """GroupCommitter's emit callback: timed commit_wait/fsync
        intervals become on_wal payloads carrying ``t0``/``dur`` so the
        tracer renders them as spans, not instants."""
        hooks = self.hooks
        if hooks is not None and hooks.on_wal:
            payload = {"kind": kind, "t0": t0, "dur": dur}
            payload.update(attrs)
            hooks.emit("on_wal", payload)

    @property
    def in_transaction(self) -> bool:
        return self.explicit_txid is not None

    # -- the transaction API -----------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction (holds the write lock until
        commit/abort; nesting raises)."""
        self._guard.__enter__()
        try:
            self._check()
            if self.explicit_txid is not None:
                raise TransactionError(
                    "a transaction is already open; transactions do not nest"
                )
            # Seal whatever the implicit transaction accumulated, so an
            # abort cannot take unrelated earlier writes down with it.
            self._commit_current()
            self.explicit_txid = txid = self._alloc_txid()
            self.walpager.begin_txn(txid)
            self._saved = self._snapshot()
            self._emit_wal("begin", txid=txid)
        except BaseException:
            self._guard.__exit__(None, None, None)
            raise

    def commit(self) -> None:
        """Make the open transaction durable (to the level configured by
        ``durability=``) and release its lock."""
        if self.explicit_txid is None:
            raise TransactionError("commit() without a matching begin()")
        lsn = self._commit_current()
        self.explicit_txid = None
        self._saved = None
        # Release BEFORE the fsync wait: the next committer can append
        # its frames while ours are being synced -- that overlap is what
        # group commit batches.
        self._guard.__exit__(None, None, None)
        if self.fsync_mode and lsn is not None:
            self.group.commit_wait(lsn)
        self._maybe_checkpoint()

    def abort(self) -> None:
        """Throw away the open transaction: logged frames are orphaned,
        dirty buffers dropped, in-memory state rewound to ``begin()``."""
        if self.explicit_txid is None:
            raise TransactionError("abort() without a matching begin()")
        txid = self.explicit_txid
        pending = set(self.walpager.pending)
        self.pool.discard(lambda hdr: hdr.dirty or hdr.pageno in pending)
        self.walpager.abort_txn()
        self._restore(self._saved)
        if self._on_restore is not None:
            self._on_restore()
        self.explicit_txid = None
        self._saved = None
        self.aborts += 1
        try:
            self.wal.append(FT_ROLLBACK, txid)
        except OSError:
            # Advisory frame only: replay ignores uncommitted
            # transactions anyway, so a dead log cannot hurt an abort.
            pass
        self._emit_wal("abort", txid=txid)
        self._guard.__exit__(None, None, None)

    def log_op(self, ftype: int, key: bytes, dlen: int = 0) -> None:
        """Append a PUT/DELETE audit frame (``wal_audit=True`` tables)."""
        payload = struct.pack(">I", dlen) + key[: MAX_PAYLOAD - 4]
        self.wal.append(ftype, self.walpager.txid, 0, payload)

    # -- commit machinery ---------------------------------------------------------

    def _commit_current(self) -> int | None:
        """Flush + COMMIT the current (explicit or implicit) transaction;
        returns the COMMIT frame's LSN, or None if nothing was written.
        Caller holds the write guard."""
        self.pool.flush()
        walpager = self.walpager
        if not walpager.pending:
            return None
        npages = len(walpager.pending)
        self._write_meta()
        txid = walpager.txid
        lsn, _ = self.wal.append(FT_COMMIT, txid)
        walpager.commit_txn()
        self.commits += 1
        walpager.begin_txn(self._alloc_txid())
        hooks = self.hooks
        if hooks is not None and hooks.on_commit:
            hooks.emit(
                "on_commit",
                {
                    "txid": txid,
                    "lsn": lsn,
                    "npages": npages,
                    "explicit": self.explicit_txid is not None,
                },
            )
        return lsn

    def commit_implicit(self) -> int | None:
        """Seal the implicit transaction (``sync``/``checkpoint`` path);
        raises inside an explicit transaction."""
        if self.explicit_txid is not None:
            raise TransactionError(
                "sync()/checkpoint() inside an open transaction; "
                "commit or abort it first"
            )
        return self._commit_current()

    # -- checkpointing -----------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self.wal.tail < self.checkpoint_bytes:
            return
        self._guard.__enter__()
        try:
            # Re-check under the lock: another thread may have begun a
            # transaction (or checkpointed) while we were unlocked.
            if self.explicit_txid is None and self.wal.tail >= self.checkpoint_bytes:
                self.checkpoint_locked()
        finally:
            self._guard.__exit__(None, None, None)

    def checkpoint_locked(self) -> int:
        """Transfer committed images into the table file, fsync it, then
        truncate the log.  Caller holds the write guard and is not
        inside an explicit transaction.  Returns pages transferred.

        Crash-ordering argument: the table file is fully written AND
        fsynced before the log is touched, so a crash anywhere in this
        sequence leaves either the full log (replay redoes the transfer,
        idempotently) or a table file that already contains everything
        the log did."""
        self.commit_implicit()
        walpager = self.walpager
        images = walpager.committed
        moved = 0
        if images:
            wal = self.wal
            inner = self.inner
            # The transfer REPLAYS writes that were already accounted
            # for when they were logged, so it must be freelist-neutral:
            # the inner pager's write-clears-free-mark rule would
            # otherwise strip pages whose latest committed image is the
            # freelist chain record itself.
            fl = inner.freelist
            fl_pages, fl_dirty = fl.pages(), fl.dirty
            pagenos = sorted(images)
            i = 0
            n = len(pagenos)
            while i < n:
                # Coalesce contiguous runs into one vectored write, the
                # same syscall batching as BufferPool.flush.
                j = i + 1
                while j < n and pagenos[j] == pagenos[j - 1] + 1:
                    j += 1
                run = pagenos[i:j]
                if len(run) == 1:
                    off, length = images[run[0]]
                    inner.write_page(run[0], wal.read_payload(off, length))
                else:
                    blob = b"".join(
                        wal.read_payload(*images[p]) for p in run
                    )
                    inner.write_pages(run[0], blob)
                moved += len(run)
                i = j
            fl.restore(fl_pages)
            fl.dirty = fl_dirty
            inner.sync()
            images.clear()
        if self.wal.tail > WAL_HDR_SIZE:
            self.wal.reset()
        self.checkpoints += 1
        self.checkpoint_pages += moved
        self._emit_wal("checkpoint", pages=moved)
        return moved

    # -- lifecycle ---------------------------------------------------------------

    def abort_for_close(self) -> None:
        """Roll back an open transaction during ``close()`` (never
        half-flush it).  Caller already holds the write guard."""
        if self.explicit_txid is not None:
            self.abort()

    def close(self) -> None:
        self.wal.close()

    def metrics(self) -> dict:
        """The ``stat()['wal']`` section."""
        return {
            "durability": "wal+fsync" if self.fsync_mode else "wal",
            "in_transaction": self.in_transaction,
            "commits": self.commits,
            "aborts": self.aborts,
            "group_commits": self.group.commits,
            "fsyncs": self.group.fsyncs,
            "checkpoints": self.checkpoints,
            "checkpoint_pages": self.checkpoint_pages,
            "frames": self.wal.frames_appended,
            "resets": self.wal.resets,
            "wal_bytes": self.wal.tail,
            "pending_pages": len(self.walpager.pending),
            "committed_pages": len(self.walpager.committed),
            "io": self.wal.store.stats.as_dict(),
        }


# -- recovery ----------------------------------------------------------------------


def recover(path, *, file_wrapper=None, wal_wrapper=None) -> dict:
    """Replay ``<path>.wal`` into ``path`` and truncate the log.

    Safe to call unconditionally: with no log (or an empty one) it is a
    cheap no-op.  Applies the newest image of every page belonging to a
    *committed* transaction, in LSN order; transactions without a COMMIT
    frame -- uncommitted at the crash, or explicitly rolled back -- are
    ignored, which is what makes aborted writes invisible after reopen.
    The scan stops at the first torn or corrupt frame (see
    :meth:`WriteAheadLog.scan`), so a torn tail costs only transactions
    that were never acknowledged as durable.

    Ordering: images are written to the table file, the table file is
    fsynced, and only then is the log truncated -- a crash inside
    recovery itself just means recovery runs again.

    ``file_wrapper`` / ``wal_wrapper`` mirror the open parameters so
    fault-injection sweeps can crash *inside* recovery too.

    Returns a stats dict (``applied``, ``committed_txns``,
    ``ignored_txns``, ``frames``, ``reset``).
    """
    from repro.storage.bytefile import ByteFile
    from repro.storage.pager import open_pager

    stats = {
        "applied": 0,
        "committed_txns": 0,
        "ignored_txns": 0,
        "frames": 0,
        "reset": False,
    }
    wpath = wal_path_for(path)
    try:
        size = os.path.getsize(wpath)
    except OSError:
        return stats
    store = ByteFile(wpath, create=False)
    if wal_wrapper is not None:
        store = wal_wrapper(store)
    try:
        if size < WAL_HDR_SIZE:
            # Crash while writing the very first header: nothing was
            # ever logged, so nothing can need replay.
            store.truncate_to(0)
            stats["reset"] = True
            return stats
        magic, version, pagesize, _ = _HDR.unpack(store.read_at(0, WAL_HDR_SIZE))
        if magic != WAL_MAGIC or version != WAL_VERSION or pagesize <= 0:
            raise WALCorruptionError(
                f"{wpath}: not a version-{WAL_VERSION} WAL file"
            )
        wal = WriteAheadLog(store, pagesize, fresh=False, scan_existing=False)
        pending: dict[int, dict[int, tuple[int, int]]] = {}
        images: dict[int, tuple[int, int]] = {}
        seen_txids: set[int] = set()
        committed_txids: set[int] = set()
        for frame in wal.scan(verify=True):
            stats["frames"] += 1
            if frame.ftype == FT_PAGE:
                seen_txids.add(frame.txid)
                pending.setdefault(frame.txid, {})[frame.pageno] = (
                    frame.offset,
                    frame.length,
                )
            elif frame.ftype == FT_COMMIT:
                images.update(pending.pop(frame.txid, {}))
                committed_txids.add(frame.txid)
            elif frame.ftype == FT_ROLLBACK:
                pending.pop(frame.txid, None)
        stats["committed_txns"] = len(committed_txids)
        stats["ignored_txns"] = len(seen_txids - committed_txids)
        if images:
            exists = os.path.exists(path)
            pager = open_pager(
                path,
                pagesize=pagesize,
                create=not exists,
                wrapper=file_wrapper,
            )
            try:
                pagenos = sorted(images)
                i = 0
                n = len(pagenos)
                while i < n:
                    j = i + 1
                    while j < n and pagenos[j] == pagenos[j - 1] + 1:
                        j += 1
                    run = pagenos[i:j]
                    if len(run) == 1:
                        off, length = images[run[0]]
                        pager.write_page(run[0], wal.read_payload(off, length))
                    else:
                        blob = b"".join(
                            wal.read_payload(*images[p]) for p in run
                        )
                        pager.write_pages(run[0], blob)
                    i = j
                pager.sync()
            finally:
                pager.close()
            stats["applied"] = len(images)
        # The table file (if any writes existed) is durable; drop the log.
        store.truncate_to(WAL_HDR_SIZE)
        store.sync()
        stats["reset"] = True
        return stats
    finally:
        store.close()
