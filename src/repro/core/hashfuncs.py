"""Hash functions shipped with the package.

The paper: "There are a variety of hash functions provided with the package.
The default function for the package is the one which offered the best
performance in terms of cycles executed per call (it did not produce the
fewest collisions although it was within a small percentage of the function
that produced the fewest collisions)."

The historical default was Chris Torek's ``h = h*33 + c`` string hash; the
alternatives below are the classic UNIX contemporaries.  Every function maps
``bytes -> 32-bit unsigned int`` and is registered in :data:`HASH_FUNCTIONS`
so tables can name their function and users can sweep them (the paper
encourages experimenting "in time critical applications").
"""

from __future__ import annotations

from typing import Callable

MASK32 = 0xFFFFFFFF

HashFunction = Callable[[bytes], int]


def default_hash(key: bytes) -> int:
    """Chris Torek's multiply-by-33 hash, the package default.

    Chosen in the paper for cycles-per-call; collision quality is within a
    few percent of the best provided function.
    """
    h = 0
    for c in key:
        h = (h * 33 + c) & MASK32
    return h


def sdbm_hash(key: bytes) -> int:
    """The sdbm polynomial hash, ``h = h*65599 + c``.

    65599 is the prime Ozan Yigit picked for sdbm; it is the
    bit-randomizing function the sdbm baseline in this repository uses.
    """
    h = 0
    for c in key:
        h = (h * 65599 + c) & MASK32
    return h


def larson_hash(key: bytes) -> int:
    """Per-Ake Larson's multiplicative string hash, ``h = h*101 + c``,
    seeded with 0x01000193-free simplicity; cited by the paper as "a
    bit-randomizing algorithm such as the one described in [LAR88]"."""
    h = 0
    for c in key:
        h = (h * 101 + c) & MASK32
    return h


def fnv1a_hash(key: bytes) -> int:
    """FNV-1a, a later classic included as a quality reference point."""
    h = 0x811C9DC5
    for c in key:
        h = ((h ^ c) * 0x01000193) & MASK32
    return h


def pjw_hash(key: bytes) -> int:
    """P. J. Weinberger's ELF hash, the other common 1980s UNIX hash."""
    h = 0
    for c in key:
        h = ((h << 4) + c) & MASK32
        g = h & 0xF0000000
        if g:
            h ^= g >> 24
        h &= ~g & MASK32
    return h


def knuth_mult_hash(key: bytes) -> int:
    """Knuth's multiplicative hash (TAOCP vol. 3, section 6.4) applied to a
    polynomial fold of the key bytes.  This is the primary hash of the
    System V hsearch baseline."""
    raw = 0
    for c in key:
        raw = (raw * 31 + c) & MASK32
    # 2654435761 = floor(2^32 / golden ratio), Knuth's suggested multiplier.
    return (raw * 2654435761) & MASK32


def thompson_hash(key: bytes) -> int:
    """A bit-randomizing hash in the style of Ken Thompson's dbm
    ``calchash``: fold bytes through a multiplier then scramble the result
    so nearly identical keys get radically different values (the property
    the paper's footnote 2 calls out)."""
    h = 0
    for c in key:
        h = (h * 0x6255 + c + 0x3443) & MASK32
    # final avalanche (xorshift-multiply) to randomize low bits, which dbm
    # consumes first
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & MASK32
    h ^= h >> 13
    return h


#: Registry of provided hash functions, by name.
HASH_FUNCTIONS: dict[str, HashFunction] = {
    "default": default_hash,
    "sdbm": sdbm_hash,
    "larson": larson_hash,
    "fnv1a": fnv1a_hash,
    "pjw": pjw_hash,
    "knuth": knuth_mult_hash,
    "thompson": thompson_hash,
}


def get_hash_function(spec: "str | HashFunction | None") -> HashFunction:
    """Resolve a hash-function spec: ``None`` -> package default, a string
    -> registry lookup, a callable -> itself."""
    if spec is None:
        return default_hash
    if callable(spec):
        return spec
    try:
        return HASH_FUNCTIONS[spec]
    except KeyError:
        raise KeyError(
            f"unknown hash function {spec!r}; provided functions: "
            f"{sorted(HASH_FUNCTIONS)}"
        ) from None
