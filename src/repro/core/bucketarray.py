"""Segmented in-memory bucket array.

"The hash table is stored in memory as a logical array of bucket pointers.
Physically, the array is arranged in segments of 256 pointers.  Initially,
there is space to allocate 256 segments.  Reallocation occurs when the
number of buckets exceeds 32K (256 * 256)."

The array maps a bucket number to an arbitrary per-bucket object (the buffer
manager stores buffer headers here; ``dynahash`` reuses the same structure
for its chains).  Segments are allocated lazily, so a table with a handful
of buckets costs a handful of pointers.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.constants import DIR_SIZE, SEGMENT_SIZE


class BucketArray:
    """A growable array of bucket slots, segmented like the C package."""

    def __init__(
        self, segment_size: int = SEGMENT_SIZE, dir_size: int = DIR_SIZE
    ) -> None:
        if segment_size <= 0 or dir_size <= 0:
            raise ValueError("segment_size and dir_size must be positive")
        self.segment_size = segment_size
        self._dir: list[list[Any] | None] = [None] * dir_size
        self._nbuckets = 0
        self.reallocations = 0  # times the segment directory was doubled

    def __len__(self) -> int:
        return self._nbuckets

    @property
    def dir_size(self) -> int:
        return len(self._dir)

    def grow_to(self, nbuckets: int) -> None:
        """Ensure slots ``0..nbuckets-1`` exist (new slots hold ``None``)."""
        if nbuckets <= self._nbuckets:
            return
        needed_segments = (nbuckets + self.segment_size - 1) // self.segment_size
        while needed_segments > len(self._dir):
            # the C package's realloc when buckets exceed dir * segment
            self._dir.extend([None] * len(self._dir))
            self.reallocations += 1
        self._nbuckets = nbuckets

    def append_bucket(self) -> int:
        """Add one bucket slot; returns its number (linear-hash expansion)."""
        self.grow_to(self._nbuckets + 1)
        return self._nbuckets - 1

    def shrink_to(self, nbuckets: int) -> None:
        """Drop slots ``nbuckets..`` (linear-hash contraction).

        Dropped slots are cleared so a later regrow sees fresh ``None``
        values, not the leftovers of merged buckets.  Segments are kept
        allocated -- contraction is usually followed by re-expansion.
        """
        if nbuckets < 0:
            raise ValueError(f"nbuckets must be >= 0, got {nbuckets}")
        if nbuckets >= self._nbuckets:
            return
        for bucket in range(nbuckets, self._nbuckets):
            seg_no, off = divmod(bucket, self.segment_size)
            seg = self._dir[seg_no]
            if seg is not None:
                seg[off] = None
        self._nbuckets = nbuckets

    def _locate(self, bucket: int) -> tuple[int, int]:
        if not 0 <= bucket < self._nbuckets:
            raise IndexError(
                f"bucket {bucket} out of range (nbuckets={self._nbuckets})"
            )
        return divmod(bucket, self.segment_size)

    def get(self, bucket: int) -> Any:
        seg_no, off = self._locate(bucket)
        seg = self._dir[seg_no]
        return None if seg is None else seg[off]

    def set(self, bucket: int, value: Any) -> None:
        seg_no, off = self._locate(bucket)
        seg = self._dir[seg_no]
        if seg is None:
            seg = [None] * self.segment_size
            self._dir[seg_no] = seg
        seg[off] = value

    def clear(self, bucket: int) -> None:
        self.set(bucket, None)

    def iter_set(self) -> Iterator[tuple[int, Any]]:
        """Yield ``(bucket, value)`` for every non-None slot."""
        for seg_no, seg in enumerate(self._dir):
            if seg is None:
                continue
            base = seg_no * self.segment_size
            for off, value in enumerate(seg):
                if value is not None:
                    bucket = base + off
                    if bucket < self._nbuckets:
                        yield bucket, value

    def allocated_segments(self) -> int:
        return sum(1 for seg in self._dir if seg is not None)
