"""hsearch-compatible interface over the new package.

System V's hsearch(3) exposes a single global in-memory table via
``hcreate``/``hsearch``/``hdestroy``.  This module reproduces that shape --
including the single-global-table restriction, faithfully -- on top of an
in-memory :class:`~repro.core.table.HashTable`, which removes the
underlying limitations the paper lists: the table grows past ``nelem``,
and (through :class:`HsearchCompat` instances) multiple tables can be used
concurrently where the native interface is chosen.
"""

from __future__ import annotations

from repro.core.constants import DEFAULT_CACHESIZE
from repro.core.table import HashTable

#: hsearch ACTION values.
FIND = 0
ENTER = 1


class HsearchCompat:
    """One hsearch-style table (instantiate several for multiple tables)."""

    def __init__(self, nelem: int, cachesize: int = DEFAULT_CACHESIZE) -> None:
        if nelem < 1:
            raise ValueError(f"nelem must be >= 1, got {nelem}")
        self._table = HashTable.create(
            None, nelem=nelem, cachesize=cachesize, in_memory=True
        )

    def hsearch(self, key: bytes, data: bytes | None, action: int) -> bytes | None:
        """FIND returns the stored data or None; ENTER stores ``data`` if
        the key is absent and returns the (existing or new) data.

        Unlike System V, ENTER never fails with "table full".
        """
        if action == FIND:
            return self._table.get(key)
        if action == ENTER:
            existing = self._table.get(key)
            if existing is not None:
                return existing
            if data is None:
                raise ValueError("ENTER requires data")
            self._table.put(key, data)
            return data
        raise ValueError(f"bad hsearch action {action}")

    def hdestroy(self) -> None:
        self._table.close()

    @property
    def table(self) -> HashTable:
        """Escape hatch to the native interface."""
        return self._table


_global_table: HsearchCompat | None = None


def hcreate(nelem: int) -> bool:
    """Create the single global table (System V semantics)."""
    global _global_table
    if _global_table is not None:
        return False
    _global_table = HsearchCompat(nelem)
    return True


def hsearch(key: bytes, data: bytes | None, action: int) -> bytes | None:
    if _global_table is None:
        raise RuntimeError("hsearch before hcreate")
    return _global_table.hsearch(key, data, action)


def hdestroy() -> None:
    global _global_table
    if _global_table is not None:
        _global_table.hdestroy()
        _global_table = None
