"""ndbm-compatible interface over the new package.

Mirrors the 4.3BSD ndbm(3) calls -- ``dbm_open``, ``dbm_fetch``,
``dbm_store`` (with INSERT/REPLACE), ``dbm_delete``, ``dbm_firstkey``,
``dbm_nextkey``, ``dbm_close`` -- but is backed by a
:class:`~repro.core.table.HashTable`, so it gains the enhanced behaviour
the paper lists: inserts never fail for collision or size reasons, and
pages are cached in memory.

ndbm returned ``datum`` structs; here a fetch returns ``bytes`` or ``None``
(the null datum).
"""

from __future__ import annotations

import os

from repro.core.constants import DEFAULT_CACHESIZE
from repro.core.table import HashTable

#: dbm_store flags (values match the historical header).
DBM_INSERT = 0
DBM_REPLACE = 1


class NdbmCompat:
    """One open ndbm-style database (multiple may be open concurrently)."""

    def __init__(self, table: HashTable) -> None:
        self._table = table

    # -- the ndbm(3) calls ---------------------------------------------------

    def fetch(self, key: bytes) -> bytes | None:
        """dbm_fetch: the datum stored under ``key``, or None."""
        return self._table.get(key)

    def store(self, key: bytes, content: bytes, flags: int = DBM_REPLACE) -> int:
        """dbm_store: 0 on success, 1 if DBM_INSERT found an existing key."""
        if flags not in (DBM_INSERT, DBM_REPLACE):
            raise ValueError(f"bad dbm_store flags {flags}")
        stored = self._table.put(key, content, replace=(flags == DBM_REPLACE))
        return 0 if stored else 1

    def delete(self, key: bytes) -> int:
        """dbm_delete: 0 on success, -1 if the key was absent."""
        return 0 if self._table.delete(key) else -1

    def firstkey(self) -> bytes | None:
        return self._table.first_key()

    def nextkey(self) -> bytes | None:
        return self._table.next_key()

    def close(self) -> None:
        self._table.close()

    # -- conveniences beyond the C interface ------------------------------------

    @property
    def table(self) -> HashTable:
        """Escape hatch to the native interface."""
        return self._table

    def __enter__(self) -> "NdbmCompat":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dbm_open(
    file: str | os.PathLike,
    flags: str = "c",
    *,
    cachesize: int = DEFAULT_CACHESIZE,
    bsize: int | None = None,
    ffactor: int | None = None,
    nelem: int = 1,
) -> NdbmCompat:
    """Open/create an ndbm-compatible database at ``file``.

    ``flags`` follows the dbm-style letters (``'r'``, ``'w'``, ``'c'``,
    ``'n'``).  Unlike real ndbm no ``.dir``/``.pag`` pair is created -- the
    new package stores everything in the single file ``file``.
    """
    path = os.fspath(file)
    exists = os.path.exists(path)
    if flags == "n" or (flags == "c" and not exists):
        kwargs = {"cachesize": cachesize, "nelem": nelem}
        if bsize is not None:
            kwargs["bsize"] = bsize
        if ffactor is not None:
            kwargs["ffactor"] = ffactor
        table = HashTable.create(path, **kwargs)
    else:
        table = HashTable.open_file(
            path, cachesize=cachesize, readonly=(flags == "r")
        )
    return NdbmCompat(table)
