"""Compatibility interfaces.

"This hashing package provides a set of compatibility routines to implement
the ndbm interface ... It also provides a set of compatibility routines to
implement the hsearch interface."
"""

from repro.core.compat.ndbm import NdbmCompat, dbm_open
from repro.core.compat.hsearch import ENTER, FIND, HsearchCompat

__all__ = ["NdbmCompat", "dbm_open", "HsearchCompat", "ENTER", "FIND"]
