"""On-disk file header of a hash table.

The header records everything needed to reopen a table: the table geometry
(bucket size, fill factor, masks, maximum bucket), the split history
(``spares`` -- cumulative overflow pages per split point), the addresses of
the overflow-allocation bitmap pages (``bitmaps``), and a check value
(``h_charkey``) used to detect that a user-supplied hash function differs
from the one the table was created with.

Layout (big-endian, fixed 512 bytes, zero-padded):

====== ====== =============================================
offset size   field
====== ====== =============================================
0      4      magic (0x061561)
4      4      version
8      4      lorder (byte order marker, 4321 = big-endian)
12     4      bsize (bucket/page size in bytes)
16     4      bshift (log2 of bsize)
20     4      ffactor
24     4      max_bucket
28     4      high_mask
32     4      low_mask
36     4      ovfl_point (current split point)
40     4      last_freed (hint: lowest possibly-free overflow slot, ~0 none)
44     8      nkeys
52     4      hdr_pages
56     4      h_charkey (hash of the CHARKEY constant)
60     128    spares[32] (u32 each, cumulative overflow pages)
188    64     bitmaps[32] (u16 each, oaddr of bitmap page i, 0 = none)
252    4      free_head (first page of the freelist chain, 0 = none)
256    ...    zero padding to 512 bytes
====== ====== =============================================

``free_head`` roots the pager freelist chain (docs/FORMAT.md §1.6):
page 0 is always the header, so 0 doubles as "empty", and files written
before the field existed read back -- correctly -- as having no free
pages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.constants import (
    HASH_MAGIC,
    HASH_VERSION,
    HDR_SIZE,
    MAX_SPLITS,
)
from repro.core.errors import BadFileError

_FIXED = struct.Struct(">IIIIIIIIII IQ II".replace(" ", ""))
_SPARES = struct.Struct(f">{MAX_SPLITS}I")
_BITMAPS = struct.Struct(f">{MAX_SPLITS}H")
_FREE_HEAD = struct.Struct(">I")

#: Sentinel for "no freed overflow slot" in ``last_freed``.
NO_LAST_FREED = 0xFFFFFFFF

#: Byte-order marker stored in the header (we always write big-endian).
LORDER_BIG = 4321


@dataclass
class Header:
    """In-memory form of the file header."""

    bsize: int
    bshift: int
    ffactor: int
    max_bucket: int = 0
    high_mask: int = 1
    low_mask: int = 0
    ovfl_point: int = 0
    last_freed: int = NO_LAST_FREED
    nkeys: int = 0
    hdr_pages: int = 1
    h_charkey: int = 0
    magic: int = HASH_MAGIC
    version: int = HASH_VERSION
    lorder: int = LORDER_BIG
    spares: list[int] = field(default_factory=lambda: [0] * MAX_SPLITS)
    bitmaps: list[int] = field(default_factory=lambda: [0] * MAX_SPLITS)
    #: first page of the on-disk freelist chain; 0 = no free pages
    free_head: int = 0

    def pack(self) -> bytes:
        """Serialize to exactly ``HDR_SIZE`` bytes."""
        fixed = _FIXED.pack(
            self.magic,
            self.version,
            self.lorder,
            self.bsize,
            self.bshift,
            self.ffactor,
            self.max_bucket,
            self.high_mask,
            self.low_mask,
            self.ovfl_point,
            self.last_freed,
            self.nkeys,
            self.hdr_pages,
            self.h_charkey,
        )
        out = (
            fixed
            + _SPARES.pack(*self.spares)
            + _BITMAPS.pack(*self.bitmaps)
            + _FREE_HEAD.pack(self.free_head)
        )
        if len(out) > HDR_SIZE:
            raise AssertionError(
                f"header serialization of {len(out)} bytes exceeds HDR_SIZE"
            )
        return out + b"\0" * (HDR_SIZE - len(out))

    @classmethod
    def unpack(cls, data: bytes) -> "Header":
        """Deserialize and validate a header read from the file front."""
        if len(data) < HDR_SIZE:
            raise BadFileError(
                f"file too short to hold a hash header ({len(data)} bytes)"
            )
        fields = _FIXED.unpack_from(data, 0)
        (
            magic,
            version,
            lorder,
            bsize,
            bshift,
            ffactor,
            max_bucket,
            high_mask,
            low_mask,
            ovfl_point,
            last_freed,
            nkeys,
            hdr_pages,
            h_charkey,
        ) = fields
        if magic != HASH_MAGIC:
            raise BadFileError(
                f"bad magic {magic:#x} (expected {HASH_MAGIC:#x}): not a hash file"
            )
        if version != HASH_VERSION:
            raise BadFileError(
                f"unsupported hash file version {version} (expected {HASH_VERSION})"
            )
        if lorder != LORDER_BIG:
            raise BadFileError(f"unsupported byte-order marker {lorder}")
        if bsize <= 0 or (1 << bshift) != bsize:
            raise BadFileError(f"corrupt header: bsize={bsize}, bshift={bshift}")
        spares = list(_SPARES.unpack_from(data, _FIXED.size))
        bitmaps = list(_BITMAPS.unpack_from(data, _FIXED.size + _SPARES.size))
        (free_head,) = _FREE_HEAD.unpack_from(
            data, _FIXED.size + _SPARES.size + _BITMAPS.size
        )
        return cls(
            bsize=bsize,
            bshift=bshift,
            ffactor=ffactor,
            max_bucket=max_bucket,
            high_mask=high_mask,
            low_mask=low_mask,
            ovfl_point=ovfl_point,
            last_freed=last_freed,
            nkeys=nkeys,
            hdr_pages=hdr_pages,
            h_charkey=h_charkey,
            magic=magic,
            version=version,
            lorder=lorder,
            spares=spares,
            bitmaps=bitmaps,
            free_head=free_head,
        )
