"""Constants and limits of the new hashing package.

The limits mirror the paper exactly: offsets within pages are 16 bits
(maximum page size 32 KiB), an overflow address packs a 5-bit split point
and an 11-bit page number into 16 bits, so a file may split 32 times
yielding at most 2**32 buckets and 32 * 2**11 overflow pages.
"""

from __future__ import annotations

# --- file format ------------------------------------------------------------

#: Magic number of the hash file header (the historical 4.4BSD value).
HASH_MAGIC = 0x061561

#: On-disk format version of *this* reproduction (not byte-compatible with
#: the C package; see DESIGN.md section 7).
HASH_VERSION = 1

#: Fixed byte size of the serialized header.  The header occupies
#: ``ceil(HDR_SIZE / bsize)`` pages at the front of the file.
HDR_SIZE = 512

# --- table parameter defaults (from the paper) -------------------------------

#: Default bucket/page size in bytes ("The bucket size ... defaults to 256").
DEFAULT_BSIZE = 256

#: Default fill factor ("Its default is eight").
DEFAULT_FFACTOR = 8

#: Default buffer-pool budget ("the package allocates up to 64K bytes of
#: buffered pages").
DEFAULT_CACHESIZE = 64 * 1024

#: Value hashed into the header so a wrong user hash function can be
#: detected when an existing table is reopened.
CHARKEY = b"%$sniglet&*"

# --- hard limits (paper, "Overflow Pages" section) ----------------------------

#: Minimum sane page size; "A bucket size smaller than 64 bytes is not
#: recommended" -- we enforce it as a hard floor.
MIN_BSIZE = 64

#: Offsets within pages are 16 bits, "limiting the maximum page size to 32K".
MAX_BSIZE = 32768

#: Bits of an overflow address devoted to the split point.
SPLIT_BITS = 5

#: Bits of an overflow address devoted to the page number within the split
#: point.
PAGE_BITS = 11

#: "files may split 32 times"
MAX_SPLITS = 1 << SPLIT_BITS  # 32

#: Maximum overflow pages per split point (page number 0 is reserved so a
#: zero overflow address can mean "none").
MAX_OVFL_PER_SPLIT = (1 << PAGE_BITS) - 1  # 2047

#: Mask extracting the page-number field of an overflow address.
OVFL_PAGE_MASK = (1 << PAGE_BITS) - 1

#: The null overflow address ("no overflow page").
NO_OADDR = 0

# --- page layout --------------------------------------------------------------

#: Bytes of fixed header at the start of every slotted page:
#: u16 nslots | u16 data_off | u16 ovfl_addr | u16 flags.
PAGE_HDR_SIZE = 8

#: Bytes per slot-table entry: u16 entry_off | u16 klen | u16 dlen.
SLOT_SIZE = 6

#: Flag bit in a slot's klen/dlen fields marking a big (overflow-resident)
#: key/data pair.
BIG_FLAG = 0x8000

#: Mask for the length portion of a slot's klen/dlen fields.
LEN_MASK = 0x7FFF

#: Page-level flags.
PAGE_F_BITMAP = 0x0001  #: page holds an overflow-allocation bitmap
PAGE_F_BIG = 0x0002  #: page belongs to a big key/data pair chain

#: Bytes of fixed header on a big-pair chain page: u16 next_oaddr | u16 used.
BIG_PAGE_HDR_SIZE = 4

#: Bytes of the big-pair inline reference before the key prefix:
#: u16 chain oaddr | u32 key length | u32 data length.
BIG_REF_SIZE = 10

#: Key-prefix bytes stored inline with a big-pair reference so most lookups
#: can reject without fetching the chain.
BIG_KEY_PREFIX = 16

# --- in-memory structures ------------------------------------------------------

#: Bucket-array segment size ("the array is arranged in segments of 256
#: pointers").
SEGMENT_SIZE = 256

#: Initial number of segment slots ("Initially, there is space to allocate
#: 256 segments").
DIR_SIZE = 256
