"""Exception hierarchy of the hashing package."""

from __future__ import annotations


class HashError(Exception):
    """Base class for all errors raised by the hashing package."""


class BadFileError(HashError):
    """The file is not a hash table, is corrupt, or has a bad version."""


class HashFunctionMismatchError(BadFileError):
    """An existing table was opened with a different hash function than the
    one it was created with (detected via the stored charkey hash)."""


class HashFullError(HashError):
    """A hard format limit was hit (32 split points exhausted, or 2047
    overflow pages within one split point)."""


class ReadOnlyError(HashError):
    """A mutating operation was attempted on a read-only table."""


class ClosedError(HashError):
    """An operation was attempted on a closed table."""


class InvalidParameterError(HashError, ValueError):
    """A table-creation parameter was out of range."""


class TransactionError(HashError):
    """Transaction-API misuse: ``begin()`` on a table opened without
    ``durability=``, nested ``begin()``, ``commit()``/``abort()`` with no
    open transaction, or ``sync()``/``checkpoint()`` called inside one."""


class WALCorruptionError(BadFileError):
    """The write-ahead log's file header is not a WAL of the expected
    version, or does not match the table it sits next to.  (A corrupt
    frame *tail* is not an error: replay stops cleanly before it.)"""


class ConcurrentModificationError(HashError):
    """A cursor's position was invalidated by a concurrent structural
    change (a bucket split relocated pairs the scan had not reached).

    Raised only by tables opened with ``concurrent=True``: instead of
    silently skipping or double-returning relocated pairs, the cursor
    fails fast and the caller restarts the scan with :meth:`first`."""
