"""The hash table engine: linear hashing over buffered, slotted pages.

This is the paper's contribution.  Splits occur in the predefined order of
linear hashing, but the *time* at which pages are split is determined both
by page overflows (uncontrolled splitting) and by exceeding the fill factor
(controlled splitting) -- the hybrid of the dbm family's overflow-driven
splitting and dynahash's fill-factor-driven splitting.

A :class:`HashTable` composes the substrates:

- a paged file (real, temporary, or RAM) from :mod:`repro.storage`;
- the buddy-in-waiting address arithmetic (:mod:`repro.core.addressing`);
- an LRU buffer pool (:mod:`repro.core.buffer`);
- overflow-page bitmaps (:mod:`repro.core.bitmaps`);
- big key/data chains (:mod:`repro.core.bigpairs`);
- the segmented bucket array (:mod:`repro.core.bucketarray`).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.core import addressing
from repro.core.addressing import log2_ceil
from repro.core.bigpairs import BigPairStore
from repro.core.bitmaps import OvflAllocator
from repro.core.bucketarray import BucketArray
from repro.core.buffer import BufferHeader, BufferPool
from repro.core.constants import (
    BIG_KEY_PREFIX,
    CHARKEY,
    DEFAULT_BSIZE,
    DEFAULT_CACHESIZE,
    DEFAULT_FFACTOR,
    HDR_SIZE,
    MAX_BSIZE,
    MAX_SPLITS,
    MIN_BSIZE,
    NO_OADDR,
)
from repro.core.errors import (
    BadFileError,
    ClosedError,
    ConcurrentModificationError,
    HashFunctionMismatchError,
    InvalidParameterError,
    ReadOnlyError,
    TransactionError,
)
from repro.core.hashfuncs import HashFunction, get_hash_function
from repro.core.header import Header
from repro.core.locking import NULL_GUARD, RWLock
from repro.core.pages import PageView, is_big_pair
from repro.core.wal import (
    DEFAULT_CHECKPOINT_BYTES,
    DURABILITY_LEVELS,
    FT_DELETE,
    FT_PUT,
    MemByteStore,
    TransactionContext,
    TransactionManager,
    WALPager,
    WriteAheadLog,
    recover as wal_recover,
    wal_path_for,
)
from repro.storage.bytefile import ByteFile
from repro.storage.freelist import FreeListError
from repro.obs.hooks import TraceHooks
from repro.obs.registry import Registry
from repro.obs.trace import TraceSupport
from repro.storage.pager import open_pager


@dataclass
class TableStats:
    """Operation counters of one table (reset at open)."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    splits: int = 0
    controlled_splits: int = 0
    uncontrolled_splits: int = 0
    merges: int = 0
    compactions: int = 0
    pages_freed: int = 0
    big_pairs_stored: int = 0
    ovfl_pages_linked: int = 0
    extra: dict = field(default_factory=dict)
    #: mutex for the reader-side counter (writer-side counters are already
    #: serialized by the table's exclusive write lock); None = lock-free
    _lock: threading.Lock | None = field(default=None, repr=False, compare=False)

    def make_threadsafe(self) -> "TableStats":
        if self._lock is None:
            self._lock = threading.Lock()
        return self

    def bump_gets(self, n: int = 1) -> None:
        """Count ``n`` gets: the one counter bumped under a *shared* lock,
        so concurrent tables serialize it (``+=`` is not atomic)."""
        lock = self._lock
        if lock is None:
            self.gets += n
            return
        with lock:
            self.gets += n


def suggest_parameters(
    average_pair_length: int,
    bsize: int | None = None,
    ffactor: int | None = None,
) -> tuple[int, int]:
    """Apply the paper's Equation 1 to pick near-optimal parameters.

    ``(average_pair_length + 4) * ffactor >= bsize``.  Given one of the two
    parameters (or neither), returns a satisfying ``(bsize, ffactor)`` pair;
    defaults start from the package defaults.
    """
    if average_pair_length <= 0:
        raise InvalidParameterError("average_pair_length must be positive")
    per_key = average_pair_length + 4
    if bsize is not None and ffactor is not None:
        return bsize, ffactor
    if bsize is not None:
        return bsize, max(1, -(-bsize // per_key))  # ceil division
    if ffactor is None:
        ffactor = DEFAULT_FFACTOR
    size = MIN_BSIZE
    while size < per_key * ffactor and size < MAX_BSIZE:
        size <<= 1
    return size, ffactor


class HashTable(TraceSupport):
    """A disk- or memory-resident linear hash table of byte-string pairs.

    Construct with :meth:`create` or :meth:`open_file` (or the module-level
    :func:`repro.open` convenience).  Keys and values are ``bytes``.
    """

    # ------------------------------------------------------------------ setup

    #: Valid split policies.  The paper's contribution is the *hybrid*:
    #: "Splits occur in the predefined order of linear hashing, but the
    #: time at which pages are split is determined both by page overflows
    #: (uncontrolled splitting) and by exceeding the fill factor
    #: (controlled splitting)."  'controlled' alone is dynahash's schedule;
    #: 'uncontrolled' alone approximates the dbm family's trigger.  The
    #: non-hybrid policies exist for the ablation benchmark.
    SPLIT_POLICIES = ("hybrid", "controlled", "uncontrolled")

    def __init__(
        self,
        file,
        header: Header,
        hashfn: HashFunction,
        cachesize: int,
        readonly: bool = False,
        split_policy: str = "hybrid",
        buffer_policy: str = "lru",
        observability: bool = True,
        concurrent: bool = False,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_audit: bool = False,
        wal_wrapper=None,
        wal_fresh: bool = False,
        min_fill: float = 0.0,
    ) -> None:
        if split_policy not in self.SPLIT_POLICIES:
            raise InvalidParameterError(
                f"split_policy must be one of {self.SPLIT_POLICIES}, "
                f"got {split_policy!r}"
            )
        if not 0.0 <= min_fill < 1.0:
            raise InvalidParameterError(
                f"min_fill must be in [0.0, 1.0), got {min_fill}"
            )
        if durability not in DURABILITY_LEVELS:
            raise InvalidParameterError(
                f"durability must be one of {DURABILITY_LEVELS}, "
                f"got {durability!r}"
            )
        self._file = file
        self.header = header
        self._hash = hashfn
        self.readonly = readonly
        self._closed = False
        self.split_policy = split_policy
        #: utilization floor for linear-hash contraction; 0.0 keeps the
        #: paper's never-contract behavior (footnote 6)
        self.min_fill = min_fill
        self.stats = TableStats()
        #: table-level rwlock (hierarchy level 1) and its reusable guards;
        #: ``concurrent=False`` keeps both guards the shared no-op object,
        #: so single-threaded operations never touch a lock.
        self.concurrent = concurrent
        self._lock = RWLock() if concurrent else None
        self._rd = self._lock.reader if concurrent else NULL_GUARD
        self._wr = self._lock.writer if concurrent else NULL_GUARD
        #: bumped by every structural change (bucket split, overflow-page
        #: reclaim); concurrent cursors compare it to fail fast instead of
        #: silently skipping or double-returning relocated pairs.
        self._structure_version = 0
        #: metrics tree rooted at this table; ``stat()`` renders it.  With
        #: ``observability=False`` every instrument is a shared null object
        #: and the op wrappers skip the clock entirely.
        self.obs = Registry("hash", enabled=observability)
        if concurrent:
            self.stats.make_threadsafe()
            self.obs.make_threadsafe()
            file.stats.make_threadsafe()
        self.hooks = TraceHooks()
        # disabled tracer until enable_tracing(): each traced call site
        # costs one attribute load + truth test (see obs.trace.TraceSupport)
        self._init_tracing()
        # Durability: interpose the write-ahead log between the buffer
        # pool and the real pager, so page write-back lands in the log
        # and the table file is only written by checkpoints/recovery
        # (see repro.core.wal).  Read-only tables skip the machinery --
        # recovery already ran at open, and nothing will be written.
        self.durability = durability if not readonly else "none"
        self._wal: WriteAheadLog | None = None
        self._txn: TransactionManager | None = None
        #: what replay did at open time (None when no recovery ran)
        self.wal_recovery: dict | None = None
        if self.durability != "none":
            path = getattr(file, "path", None)
            if path is None:
                # Anonymous temp / RAM tables: full transaction semantics
                # (atomic commit/abort), no durable sidecar -- same
                # lifetime as the table itself.
                store = MemByteStore()
                fresh = True
            else:
                wpath = wal_path_for(path)
                fresh = wal_fresh or not os.path.exists(wpath)
                store = ByteFile(wpath, create=fresh)
            if wal_wrapper is not None:
                store = wal_wrapper(store)
            if concurrent:
                store.stats.make_threadsafe()
            self._wal = WriteAheadLog(store, header.bsize, fresh=fresh)
            self._file = WALPager(file, self._wal)
        self.pool = BufferPool(
            self._file,
            header.bsize,
            cachesize,
            self._address_of,
            policy=buffer_policy,
            obs=self.obs.child("buffer"),
            hooks=self.hooks,
            concurrent=concurrent,
        )
        _ops = self.obs.child("ops")
        self._ops = _ops
        self._h_get = _ops.histogram("get")
        self._h_put = _ops.histogram("put")
        self._h_delete = _ops.histogram("delete")
        self._h_split = _ops.histogram("split")
        # batch-op histograms are created lazily on first use, keeping the
        # metrics-tree shape of batch-free workloads identical to before
        self._h_put_many = None
        self._h_get_many = None
        self._h_delete_many = None
        self._h_merge = None
        self._clock = time.perf_counter if observability else None
        # Page-I/O trace events piggyback on the file's callback slot; the
        # storage layer stays ignorant of the hook machinery.  The slot is
        # wired only while on_page_io has subscribers (hook fast path):
        # an unobserved table leaves it None, and the storage layer's
        # ``cb is None`` check makes every page read/write emit-free.
        self.hooks.on_change = self._hooks_changed
        self._hooks_changed("on_page_io")
        # Fault injection (FaultyPager) exposes the same style of slot;
        # route it into on_fault so the flight recorder logs the injected
        # fault before the crash it causes.
        if hasattr(file, "on_fault"):
            file.on_fault = self._fault_event
        if concurrent:
            self._lock.wait_hook = self._lock_wait_event
        if self._wal is not None:
            self._txn = TransactionManager(
                wal=self._wal,
                walpager=self._file,
                inner=file,
                pool=self.pool,
                write_meta=self._write_header,
                snapshot=self._txn_snapshot,
                restore=self._txn_restore,
                check=self._check_writable,
                guard=self._wr,
                hooks=self.hooks,
                obs=self.obs.child("wal"),
                fsync=(self.durability == "wal+fsync"),
                checkpoint_bytes=wal_checkpoint_bytes,
                audit=wal_audit,
            )
        self.allocator = OvflAllocator(header, self.pool)
        self.bigstore = BigPairStore(self.pool, self.allocator, hooks=self.hooks)
        self.buckets = BucketArray()
        self.buckets.grow_to(header.max_bucket + 1)
        # Persistent freelist (docs/FORMAT.md §1.6): the chain head lives
        # in the header; the chain is read through the outermost pager so
        # WAL redirection applies.  A broken chain must never block access
        # to the data, so corruption degrades to "no free pages" with a
        # note in stats.extra.
        if header.free_head:
            fl = self._file.freelist
            try:
                fl.load(self._file, header.free_head, npages=self._file.npages())
            except FreeListError as exc:
                fl.clear()
                fl.dirty = True  # force the next header write to zero free_head
                self.stats.extra["freelist_dropped"] = str(exc)
            else:
                live = set(range(header.hdr_pages))
                live.update(
                    addressing.bucket_to_page(b, header.hdr_pages, header.spares)
                    for b in range(header.max_bucket + 1)
                )
                bad = sorted(p for p in fl.pages() if p in live)
                if bad:
                    fl.clear()
                    self.stats.extra["freelist_dropped"] = (
                        f"chain claims live header/bucket pages {bad[:4]}"
                    )
        self._scan: "TableCursor | None" = None

    @classmethod
    def create(
        cls,
        path: str | os.PathLike | None = None,
        *,
        bsize: int = DEFAULT_BSIZE,
        ffactor: int = DEFAULT_FFACTOR,
        nelem: int = 1,
        cachesize: int = DEFAULT_CACHESIZE,
        hashfn: str | HashFunction | None = None,
        in_memory: bool = False,
        split_policy: str = "hybrid",
        buffer_policy: str = "lru",
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_audit: bool = False,
        wal_wrapper=None,
        min_fill: float = 0.0,
    ) -> "HashTable":
        """Create a new table.

        ``path=None`` uses an anonymous temporary file (an in-memory table
        that spills to temp storage under buffer-pool pressure, exactly the
        paper's memory-resident mode); ``in_memory=True`` keeps all pages in
        RAM with no file at all.

        ``nelem`` is the expected final number of elements: the table is
        created at full size so no splitting happens while it fills --
        Figure 6's "known in advance" case.

        ``durability`` selects the crash-safety level (see
        docs/TRANSACTIONS.md): ``'none'`` is the historical
        sync-when-asked behavior; ``'wal'`` adds a write-ahead log with
        atomic transactions (``begin``/``commit``/``abort``); and
        ``'wal+fsync'`` additionally fsyncs the log at every commit,
        with concurrent committers coalesced by group commit.
        ``wal_checkpoint_bytes`` bounds the log (and replay) length;
        ``wal_audit`` adds per-operation PUT/DELETE audit frames;
        ``wal_wrapper`` decorates the log's byte store (fault
        injection), the WAL twin of ``file_wrapper``.

        ``min_fill`` (0.0 <= min_fill < 1.0) arms linear-hash
        *contraction*: when deletes push utilization below
        ``min_fill * ffactor`` keys per bucket, the highest bucket is
        merged back into its buddy and its page freed (see
        docs/STORAGE.md).  The default 0.0 keeps the paper's
        never-contract behavior (footnote 6).
        """
        if bsize < MIN_BSIZE or bsize > MAX_BSIZE:
            raise InvalidParameterError(
                f"bsize must be in [{MIN_BSIZE}, {MAX_BSIZE}], got {bsize}"
            )
        if bsize & (bsize - 1):
            raise InvalidParameterError(f"bsize must be a power of two, got {bsize}")
        if ffactor < 1:
            raise InvalidParameterError(f"ffactor must be >= 1, got {ffactor}")
        if nelem < 1:
            raise InvalidParameterError(f"nelem must be >= 1, got {nelem}")
        if cachesize < 0:
            raise InvalidParameterError("cachesize must be non-negative")
        fn = get_hash_function(hashfn)
        # Pre-size: nelem/ffactor buckets, rounded up to a power of two.
        nbuckets = 1
        while nbuckets * ffactor < nelem:
            nbuckets <<= 1
        hdr_pages = -(-HDR_SIZE // bsize)  # ceil
        header = Header(
            bsize=bsize,
            bshift=bsize.bit_length() - 1,
            ffactor=ffactor,
            max_bucket=nbuckets - 1,
            high_mask=(nbuckets << 1) - 1,
            low_mask=nbuckets - 1,
            ovfl_point=log2_ceil(nbuckets),
            hdr_pages=hdr_pages,
            h_charkey=fn(CHARKEY),
        )
        # e.g. repro.storage.simdisk.SimulatedDisk for modelled I/O time, or
        # repro.storage.faulty.FaultyPager for crash injection
        t_open = time.perf_counter()
        file = open_pager(
            path, pagesize=bsize, create=True, in_memory=in_memory,
            wrapper=file_wrapper,
        )
        table = cls(
            file,
            header,
            fn,
            cachesize,
            split_policy=split_policy,
            buffer_policy=buffer_policy,
            observability=observability,
            concurrent=concurrent,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
            wal_audit=wal_audit,
            wal_wrapper=wal_wrapper,
            wal_fresh=True,
            min_fill=min_fill,
        )
        table._write_header()
        if table._txn is not None:
            # Materialize the freshly logged header into the table file
            # right away: a crash after create() then finds a valid (if
            # empty) table plus whatever the log holds.
            table.checkpoint()
        if tracing:
            table._trace_open(t_open, "create")
        return table

    @classmethod
    def open_file(
        cls,
        path: str | os.PathLike,
        *,
        cachesize: int = DEFAULT_CACHESIZE,
        hashfn: str | HashFunction | None = None,
        readonly: bool = False,
        observability: bool = True,
        concurrent: bool = False,
        tracing: bool = False,
        file_wrapper=None,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_audit: bool = False,
        wal_wrapper=None,
        min_fill: float = 0.0,
    ) -> "HashTable":
        """Open an existing table.

        If ``hashfn`` is given, the stored charkey hash is checked; a
        mismatch raises :class:`HashFunctionMismatchError` ("the hash
        package will try to determine that the hash function supplied is
        the one with which the table was created").

        If a write-ahead log (``<path>.wal``) is present -- whatever
        ``durability`` this open requests -- committed transactions are
        replayed into the table file *before* the header is even probed,
        so a post-crash file is repaired unconditionally (see
        :func:`repro.core.wal.recover`).
        """
        fn = get_hash_function(hashfn)
        t_open = time.perf_counter()
        recovery = wal_recover(
            path, file_wrapper=file_wrapper, wal_wrapper=wal_wrapper
        )
        probe = open_pager(path, pagesize=HDR_SIZE, readonly=readonly)
        try:
            if probe.size_bytes() < HDR_SIZE:
                raise BadFileError(
                    f"{os.fspath(path)}: too small to hold a hash header "
                    "(truncated or not a hash file)"
                )
            raw = probe.read_page(0)
            header = Header.unpack(raw)
        finally:
            probe.close()
        if header.h_charkey != fn(CHARKEY):
            raise HashFunctionMismatchError(
                "table was created with a different hash function"
            )
        file = open_pager(
            path, pagesize=header.bsize, readonly=readonly, wrapper=file_wrapper
        )
        table = cls(
            file,
            header,
            fn,
            cachesize,
            readonly=readonly,
            observability=observability,
            concurrent=concurrent,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
            wal_audit=wal_audit,
            wal_wrapper=wal_wrapper,
            min_fill=min_fill,
        )
        if recovery["frames"]:
            table.wal_recovery = recovery
            table.stats.extra["wal_recovery"] = recovery
        if tracing:
            table._trace_open(t_open, "open")
        return table

    # --------------------------------------------------------------- plumbing

    def _address_of(self, key) -> int:
        kind, addr = key
        h = self.header
        if kind == "B":
            return addressing.bucket_to_page(addr, h.hdr_pages, h.spares)
        return addressing.oaddr_to_page(addr, h.hdr_pages, h.spares)

    def _page_io_event(self, kind: str, pageno: int, nbytes: int) -> None:
        hooks = self.hooks
        if hooks.on_page_io:
            hooks.emit(
                "on_page_io", {"kind": kind, "pageno": pageno, "nbytes": nbytes}
            )

    def _hooks_changed(self, event: str | None) -> None:
        """``TraceHooks.on_change`` callback: (un)wire the storage layer's
        per-I/O callback to track on_page_io subscriptions, so tables with
        no subscribers pay zero Python calls per page read/write."""
        if event is not None and event != "on_page_io":
            return
        self._file.on_page_io = (
            self._page_io_event if self.hooks.on_page_io else None
        )

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("operation on closed HashTable")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ReadOnlyError("table is read-only")

    def _write_header(self) -> None:
        fl = self._file.freelist
        if fl.dirty:
            # The chain lives in the free pages themselves; writing it
            # through self._file keeps it inside the WAL when one is on,
            # so chain and header commit (or vanish) together.
            self.header.free_head = fl.persist(self._file)
        raw = self.header.pack()
        bsize = self.header.bsize
        if self.header.hdr_pages == 1:
            self._file.write_page(0, raw[:bsize])
            return
        # Multi-page headers go out as one vectored write (one syscall).
        span = self.header.hdr_pages * bsize
        self._file.write_pages(0, raw[:span] + b"\0" * max(0, span - len(raw)))

    def _bucket_of_hash(self, h: int) -> int:
        hdr = self.header
        bucket = h & hdr.high_mask
        if bucket > hdr.max_bucket:
            bucket = h & hdr.low_mask
        return bucket

    def _bucket_of(self, key: bytes) -> int:
        return self._bucket_of_hash(self._hash(key))

    def _fault(self, bufkey, *, create: bool = False) -> BufferHeader:
        """Fetch a page, formatting never-written (hole) bucket pages.

        ``hdr.formatted`` short-circuits the hole check once a resident
        page has been through it, so repeat faults cost one attribute
        test instead of a header parse.  ``create=True`` always
        reformats: a freshly allocated address may land on a recycled,
        still-resident buffer with stale contents.
        """
        hdr = self.pool.get(bufkey, create=create)
        if hdr.formatted and not create:
            return hdr
        view = hdr.view()
        if create or view.looks_uninitialized():
            view.initialize()
            if create:
                hdr.dirty = True
        hdr.formatted = True
        return hdr

    # ---------------------------------------------------------------- lookup

    def _match_big(self, view: PageView, slot: int, key: bytes) -> bool:
        """Does big-ref ``slot`` hold ``key``?  Prefix and length reject
        cheaply; only a real candidate fetches the chain."""
        oaddr, klen, _dlen, prefix = view.get_big_ref(slot)
        if klen != len(key):
            return False
        if prefix != key[: len(prefix)]:
            return False
        return self.bigstore.fetch_key(oaddr, klen) == key

    def _locate(
        self, bucket: int, key: bytes
    ) -> tuple[BufferHeader | None, BufferHeader, int] | None:
        """Find ``key`` in ``bucket``'s chain.

        Returns ``(predecessor buffer or None, buffer, slot index)`` with
        *both* buffers pinned (caller unpins), or ``None`` if absent.
        """
        prev: BufferHeader | None = None
        hooks = self.hooks
        depth = 0
        hdr = self._fault(("B", bucket))
        hdr.pin()
        while True:
            view = hdr.view()
            i = view.find_inline(key)
            if i < 0:
                for j, big in view.iter_slots():
                    if big and self._match_big(view, j, key):
                        i = j
                        break
            if i >= 0:
                return prev, hdr, i
            nxt = view.ovfl_addr
            if nxt == NO_OADDR:
                hdr.unpin()
                if prev is not None:
                    prev.unpin()
                return None
            if prev is not None:
                prev.unpin()
            prev = hdr
            depth += 1
            if hooks.on_overflow_hop:
                hooks.emit(
                    "on_overflow_hop",
                    {"bucket": bucket, "oaddr": nxt, "depth": depth},
                )
            nhdr = self._fault(("O", nxt))
            nhdr.pin()
            self.pool.link_chain(hdr, nhdr)
            hdr = nhdr

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        """Value stored under ``key``, or ``default`` if absent."""
        if self.tracer.enabled:
            return self._traced_op(
                "get", self._h_get, self._rd, self._get_impl, key, default
            )
        with self._rd:
            clock = self._clock
            if clock is None:
                return self._get_impl(key, default)
            t0 = clock()
            try:
                return self._get_impl(key, default)
            finally:
                self._h_get.observe(clock() - t0)

    def _get_impl(
        self,
        key: bytes,
        default: bytes | None = None,
        *,
        _hash: int | None = None,
    ) -> bytes | None:
        self._check_open()
        if not isinstance(key, bytes):
            key = bytes(key)  # copy only on non-bytes input
        self.stats.bump_gets()
        h = self._hash(key) if _hash is None else _hash
        found = self._locate(self._bucket_of_hash(h), key)
        if found is None:
            return default
        prev, hdr, slot = found
        try:
            view = hdr.view()
            if view.slot_is_big(slot):
                oaddr, klen, dlen, _prefix = view.get_big_ref(slot)
                _k, data = self.bigstore.fetch(oaddr, klen, dlen)
                return data
            return view.get_data(slot)
        finally:
            hdr.unpin()
            if prev is not None:
                prev.unpin()

    def __contains__(self, key: bytes) -> bool:
        with self._rd:
            self._check_open()
            found = self._locate(self._bucket_of(key), key)
            if found is None:
                return False
            prev, hdr, _slot = found
            hdr.unpin()
            if prev is not None:
                prev.unpin()
            return True

    # ---------------------------------------------------------------- insert

    def _place_pair(self, bucket: int, key: bytes, data: bytes) -> bool:
        """Insert a pair into ``bucket``'s chain (no existence check, no
        split decision, no nkeys accounting).  Returns True if a new
        overflow page had to be linked (the uncontrolled-split trigger)."""
        big = is_big_pair(len(key), len(data), self.header.bsize)
        hdr = self._fault(("B", bucket))
        hdr.pin()
        added_overflow = False
        try:
            view = hdr.view()
            while True:
                fits = view.fits_big_ref(len(key)) if big else view.fits(len(key), len(data))
                if fits:
                    break
                nxt = view.ovfl_addr
                if nxt == NO_OADDR:
                    # Extend the chain with a fresh overflow page.
                    oaddr = self.allocator.alloc()
                    nhdr = self._fault(("O", oaddr), create=True)
                    nhdr.pin()
                    view.ovfl_addr = oaddr
                    hdr.dirty = True
                    self.pool.link_chain(hdr, nhdr)
                    self.stats.ovfl_pages_linked += 1
                    if self.hooks.on_overflow_link:
                        self.hooks.emit(
                            "on_overflow_link", {"bucket": bucket, "oaddr": oaddr}
                        )
                    added_overflow = True
                    hdr.unpin()
                    hdr = nhdr
                    view = hdr.view()
                    break
                nhdr = self._fault(("O", nxt))
                nhdr.pin()
                self.pool.link_chain(hdr, nhdr)
                hdr.unpin()
                hdr = nhdr
                view = hdr.view()
            if big:
                head = self.bigstore.store(key, data)
                view.add_big_ref(head, len(key), len(data), key[:BIG_KEY_PREFIX])
                self.stats.big_pairs_stored += 1
            else:
                view.add_pair(key, data)
            hdr.dirty = True
        finally:
            hdr.unpin()
        return added_overflow

    def put(self, key: bytes, data: bytes, *, replace: bool = True) -> bool:
        """Store ``key -> data``.

        With ``replace=False`` an existing key is left untouched and False
        is returned (ndbm's DBM_INSERT semantics).  Inserts never fail for
        size or collision reasons -- the paper's headline guarantee.
        """
        if self.tracer.enabled:
            return self._traced_op(
                "put", self._h_put, self._wr, self._put_impl, key, data,
                replace=replace,
            )
        with self._wr:
            clock = self._clock
            if clock is None:
                return self._put_impl(key, data, replace=replace)
            t0 = clock()
            try:
                return self._put_impl(key, data, replace=replace)
            finally:
                self._h_put.observe(clock() - t0)

    def _put_impl(
        self,
        key: bytes,
        data: bytes,
        *,
        replace: bool = True,
        _hash: int | None = None,
    ) -> bool:
        self._check_writable()
        # Copy only on non-bytes input: the common bytes-in case is
        # zero-copy all the way to the page write.
        if not isinstance(key, bytes):
            if not isinstance(key, bytearray):
                raise TypeError("keys and values must be bytes")
            key = bytes(key)
        if not isinstance(data, bytes):
            if not isinstance(data, bytearray):
                raise TypeError("keys and values must be bytes")
            data = bytes(data)
        self.stats.puts += 1
        h = self._hash(key) if _hash is None else _hash
        bucket = self._bucket_of_hash(h)
        found = self._locate(bucket, key)
        if found is not None:
            prev, hdr, slot = found
            if not replace:
                hdr.unpin()
                if prev is not None:
                    prev.unpin()
                return False
            self._delete_at(prev, hdr, slot)  # unpins both buffers
        added_overflow = self._place_pair(bucket, key, data)
        self.header.nkeys += 1
        uncontrolled_ok = self.split_policy in ("hybrid", "uncontrolled")
        controlled_ok = self.split_policy in ("hybrid", "controlled")
        if added_overflow and uncontrolled_ok:
            self.stats.uncontrolled_splits += 1
            self._expand_table("uncontrolled")
        elif controlled_ok and self.header.nkeys > self.header.ffactor * (
            self.header.max_bucket + 1
        ):
            self.stats.controlled_splits += 1
            self._expand_table("controlled")
        txn = self._txn
        if txn is not None and txn.audit:
            txn.log_op(FT_PUT, key, len(data))
        return True

    # ---------------------------------------------------------------- delete

    def _delete_at(
        self, prev: BufferHeader | None, hdr: BufferHeader, slot: int
    ) -> None:
        """Remove the pair at ``slot`` of pinned page ``hdr``; frees big
        chains and empty overflow pages; unpins both buffers."""
        try:
            view = hdr.view()
            if view.slot_is_big(slot):
                oaddr, _klen, _dlen, _prefix = view.get_big_ref(slot)
                self.bigstore.free(oaddr)
            view.delete_slot(slot)
            hdr.dirty = True
            self.header.nkeys -= 1
            kind, addr = hdr.key
            if (
                kind == "O"
                and view.nslots == 0
                and prev is not None
            ):
                # Unlink and reclaim the now-empty overflow page.
                pview = prev.view()
                pview.ovfl_addr = view.ovfl_addr
                prev.dirty = True
                self.pool.unlink_chain(prev)
                hdr.unpin()
                hdr = None
                self.allocator.free(addr)
                # A reclaimed overflow page is a structural change: a
                # cursor parked on it would scan a recycled page.
                self._structure_version += 1
        finally:
            if hdr is not None:
                hdr.unpin()
            if prev is not None:
                prev.unpin()

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True if it was present.

        By default the bucket address space never contracts (paper,
        footnote 6): buckets stay allocated, only overflow pages are
        reclaimed.  Opening the table with ``min_fill > 0`` changes
        that -- when utilization drops below the floor, the highest
        bucket is merged back into its buddy and its page is freed for
        reuse (see :meth:`_contract_table`).
        """
        if self.tracer.enabled:
            return self._traced_op(
                "delete", self._h_delete, self._wr, self._delete_impl, key
            )
        with self._wr:
            clock = self._clock
            if clock is None:
                return self._delete_impl(key)
            t0 = clock()
            try:
                return self._delete_impl(key)
            finally:
                self._h_delete.observe(clock() - t0)

    def _delete_impl(self, key: bytes, *, _hash: int | None = None) -> bool:
        self._check_writable()
        if not isinstance(key, bytes):
            key = bytes(key)  # copy only on non-bytes input
        self.stats.deletes += 1
        h = self._hash(key) if _hash is None else _hash
        found = self._locate(self._bucket_of_hash(h), key)
        if found is None:
            return False
        prev, hdr, slot = found
        self._delete_at(prev, hdr, slot)
        if self.min_fill:
            self._maybe_contract()
        txn = self._txn
        if txn is not None and txn.audit:
            txn.log_op(FT_DELETE, key)
        return True

    # ------------------------------------------------------------- batch ops

    @staticmethod
    def _as_bytes(value, what: str) -> bytes:
        """Normalize batch input to ``bytes``, copying only when needed."""
        if isinstance(value, bytes):
            return value
        if isinstance(value, (bytearray, memoryview)):
            return bytes(value)
        raise TypeError(f"{what}s must be bytes")

    def _group_by_bucket(self, hashes: list[int]) -> dict[int, list[int]]:
        """Input indices grouped by tentative bucket.

        Computed outside the lock as a locality heuristic; every
        operation recomputes its bucket from the stored hash once the
        lock is held, so a concurrent split cannot misroute a key.
        """
        groups: dict[int, list[int]] = {}
        bucket_of = self._bucket_of_hash
        for i, h in enumerate(hashes):
            groups.setdefault(bucket_of(h), []).append(i)
        return groups

    def _batch_span(self, name: str, n: int, ngroups: int):
        """One aggregate span for a whole batch (or None, tracing off)."""
        tracer = self.tracer
        if not tracer.enabled:
            return None
        return tracer.start(name, attrs={"n": n, "groups": ngroups})

    def put_many(self, items, *, replace: bool = True) -> int:
        """Store many ``(key, data)`` pairs; returns how many were stored.

        Keys are hashed up front and grouped by bucket, so consecutive
        operations hit hot buffers; under ``concurrent=True`` the write
        lock is taken once per bucket group -- O(groups), not O(N) --
        and tracing emits one aggregate ``put_many`` span for the whole
        batch instead of a span per pair.
        """
        pairs = [
            (self._as_bytes(k, "key"), self._as_bytes(d, "value"))
            for k, d in items
        ]
        hashes = [self._hash(k) for k, _d in pairs]
        groups = self._group_by_bucket(hashes)
        span = self._batch_span("put_many", len(pairs), len(groups))
        clock = self._clock
        t0 = clock() if clock is not None else None
        stored = 0
        try:
            for idxs in groups.values():
                with self._wr:
                    for i in idxs:
                        key, data = pairs[i]
                        if self._put_impl(
                            key, data, replace=replace, _hash=hashes[i]
                        ):
                            stored += 1
        finally:
            if t0 is not None:
                if self._h_put_many is None:
                    self._h_put_many = self._ops.histogram("put_many")
                self._h_put_many.observe(clock() - t0)
            if span is not None:
                self.tracer.end(span)
        return stored

    def get_many(self, keys, default: bytes | None = None) -> list:
        """Values for ``keys``, order preserved (``default`` where absent).

        One read-lock acquisition and one chain walk per bucket group:
        each page in a bucket's chain is faulted and pinned exactly once
        for all the keys that hash to it.
        """
        keys_b = [self._as_bytes(k, "key") for k in keys]
        hashes = [self._hash(k) for k in keys_b]
        groups = self._group_by_bucket(hashes)
        out: list = [default] * len(keys_b)
        span = self._batch_span("get_many", len(keys_b), len(groups))
        clock = self._clock
        t0 = clock() if clock is not None else None
        try:
            for idxs in groups.values():
                with self._rd:
                    self._check_open()
                    self.stats.bump_gets(len(idxs))
                    # Recompute buckets under the lock: a split between
                    # grouping and locking may have rehomed some keys.
                    actual: dict[int, list[int]] = {}
                    for i in idxs:
                        actual.setdefault(
                            self._bucket_of_hash(hashes[i]), []
                        ).append(i)
                    for bucket, ids in actual.items():
                        self._lookup_chain(bucket, ids, keys_b, out)
        finally:
            if t0 is not None:
                if self._h_get_many is None:
                    self._h_get_many = self._ops.histogram("get_many")
                self._h_get_many.observe(clock() - t0)
            if span is not None:
                self.tracer.end(span)
        return out

    def _lookup_chain(
        self, bucket: int, ids: list[int], keys: list[bytes], out: list
    ) -> None:
        """Resolve every key index in ``ids`` against ``bucket``'s chain
        in a single walk, pinning each page once."""
        pending = ids
        hooks = self.hooks
        depth = 0
        hdr = self._fault(("B", bucket))
        hdr.pin()
        try:
            while True:
                view = hdr.view()
                missing = []
                for i in pending:
                    key = keys[i]
                    s = view.find_inline(key)
                    if s < 0:
                        for j, big in view.iter_slots():
                            if big and self._match_big(view, j, key):
                                s = j
                                break
                    if s < 0:
                        missing.append(i)
                    elif view.slot_is_big(s):
                        oaddr, klen, dlen, _prefix = view.get_big_ref(s)
                        out[i] = self.bigstore.fetch(oaddr, klen, dlen)[1]
                    else:
                        out[i] = view.get_data(s)
                pending = missing
                if not pending:
                    return
                nxt = view.ovfl_addr
                if nxt == NO_OADDR:
                    return
                depth += 1
                if hooks.on_overflow_hop:
                    hooks.emit(
                        "on_overflow_hop",
                        {"bucket": bucket, "oaddr": nxt, "depth": depth},
                    )
                nhdr = self._fault(("O", nxt))
                nhdr.pin()
                self.pool.link_chain(hdr, nhdr)
                hdr.unpin()
                hdr = nhdr
        finally:
            hdr.unpin()

    def delete_many(self, keys) -> int:
        """Remove many keys; returns how many were present.

        Same lock amortization as :meth:`put_many`: one write-lock
        acquisition per bucket group.
        """
        keys_b = [self._as_bytes(k, "key") for k in keys]
        hashes = [self._hash(k) for k in keys_b]
        groups = self._group_by_bucket(hashes)
        span = self._batch_span("delete_many", len(keys_b), len(groups))
        clock = self._clock
        t0 = clock() if clock is not None else None
        removed = 0
        try:
            for idxs in groups.values():
                with self._wr:
                    for i in idxs:
                        if self._delete_impl(keys_b[i], _hash=hashes[i]):
                            removed += 1
        finally:
            if t0 is not None:
                if self._h_delete_many is None:
                    self._h_delete_many = self._ops.histogram("delete_many")
                self._h_delete_many.observe(clock() - t0)
            if span is not None:
                self.tracer.end(span)
        return removed

    # ------------------------------------------------------------- bulk load

    def bulk_load(self, items, *, nelem: int | None = None) -> int:
        """Presized bottom-up load of an empty table -- Figure 6's
        "number of entries known in advance" case as an actual fast path.

        Materializes ``items`` (a later duplicate key wins, matching
        ``put(replace=True)``), grows the bucket address space to its
        final size in one step, then packs each bucket's chain directly:
        **zero splits, zero redistribution**.  ``nelem`` overrides the
        presize element count (defaults to ``len(items)``).

        Requires a pristine table -- no keys, no splits, no overflow
        pages -- and raises :class:`InvalidParameterError` otherwise;
        use :meth:`put_many` to feed a populated table.  Returns the
        number of pairs stored.
        """
        if self.tracer.enabled:
            return self._traced_op(
                "bulk_load", None, self._wr, self._bulk_load_impl, items, nelem
            )
        with self._wr:
            return self._bulk_load_impl(items, nelem)

    def _bulk_load_impl(self, items, nelem: int | None) -> int:
        self._check_writable()
        h = self.header
        if h.nkeys != 0 or any(h.bitmaps) or any(h.spares):
            raise InvalidParameterError(
                "bulk_load requires a pristine table (no keys, no overflow "
                "pages); use put_many() on a populated table"
            )
        unique: dict[bytes, bytes] = {}
        for k, d in items:
            unique[self._as_bytes(k, "key")] = self._as_bytes(d, "value")
        n = len(unique)
        target = max(nelem or 0, n, 1)
        # Same presize math as create(nelem=...): nelem/ffactor buckets,
        # rounded up to a power of two.
        nbuckets = 1
        while nbuckets * h.ffactor < target:
            nbuckets <<= 1
        if nbuckets > h.max_bucket + 1:
            # One-step growth to the final address space.  With no keys,
            # no spares and no overflow pages, every bucket page is still
            # an unwritten hole, so only the masks need to move.
            h.max_bucket = nbuckets - 1
            h.high_mask = (nbuckets << 1) - 1
            h.low_mask = nbuckets - 1
            h.ovfl_point = log2_ceil(nbuckets)
            self.buckets.grow_to(nbuckets)
            self._structure_version += 1
        groups: dict[int, list[tuple[bytes, bytes]]] = {}
        for k, d in unique.items():
            groups.setdefault(self._bucket_of(k), []).append((k, d))
        for bucket, pairs in groups.items():
            for k, d in pairs:
                self._place_pair(bucket, k, d)
        h.nkeys += n
        self.stats.puts += n
        self._write_header()
        return n

    # ---------------------------------------------------------------- splits

    def _expand_table(self, reason: str = "structural") -> None:
        """One step of linear-hash growth: create bucket ``max_bucket+1``
        and split its buddy.  Hard format limits make this a no-op instead
        of an error (chains simply lengthen afterwards).

        ``reason`` records what triggered the split ('controlled',
        'uncontrolled', or 'structural') for the ``on_split`` trace event.
        """
        h = self.header
        new_bucket = h.max_bucket + 1
        spare_ndx = log2_ceil(new_bucket + 1)
        if spare_ndx >= MAX_SPLITS:
            self.stats.extra["expansion_stopped"] = (
                self.stats.extra.get("expansion_stopped", 0) + 1
            )
            return
        if new_bucket > h.high_mask:
            # Starting a new doubling (generation).
            h.low_mask = h.high_mask
            h.high_mask = new_bucket | h.low_mask
        old_bucket = new_bucket & h.low_mask
        h.max_bucket = new_bucket
        if spare_ndx > h.ovfl_point:
            # spares entries above ovfl_point already mirror spares[ovfl_point]
            h.ovfl_point = spare_ndx
        self.buckets.grow_to(new_bucket + 1)
        self.stats.splits += 1
        self._structure_version += 1
        clock = self._clock
        if clock is None:
            self._split_bucket(old_bucket, new_bucket)
        else:
            t0 = clock()
            try:
                self._split_bucket(old_bucket, new_bucket)
            finally:
                self._h_split.observe(clock() - t0)
        if self.hooks.on_split:
            self.hooks.emit(
                "on_split",
                {
                    "old_bucket": old_bucket,
                    "new_bucket": new_bucket,
                    "reason": reason,
                    "nkeys": h.nkeys,
                },
            )

    def _split_bucket(self, old_bucket: int, new_bucket: int) -> None:
        """Redistribute ``old_bucket``'s pairs between it and ``new_bucket``
        under the new masks, reclaiming its overflow pages."""
        # -- collect ---------------------------------------------------------
        inline_pairs: list[tuple[bytes, bytes]] = []
        big_refs: list[tuple[int, int, int, bytes]] = []  # oaddr, klen, dlen, key
        chain_oaddrs: list[int] = []
        hdr = self._fault(("B", old_bucket))
        primary_hdr = hdr
        primary_hdr.pin()
        cur = hdr
        while True:
            view = cur.view()
            for i, big in view.iter_slots():
                if big:
                    oaddr, klen, dlen, _prefix = view.get_big_ref(i)
                    full_key = self.bigstore.fetch_key(oaddr, klen)
                    big_refs.append((oaddr, klen, dlen, full_key))
                else:
                    inline_pairs.append(view.get_pair(i))
            nxt = view.ovfl_addr
            if nxt == NO_OADDR:
                break
            chain_oaddrs.append(nxt)
            cur = self._fault(("O", nxt))
        # -- reset ------------------------------------------------------------
        pview = primary_hdr.view()
        pview.initialize()
        primary_hdr.dirty = True
        self.pool.unlink_chain(primary_hdr)
        primary_hdr.unpin()
        new_hdr = self._fault(("B", new_bucket), create=True)
        new_hdr.dirty = True
        for oaddr in chain_oaddrs:
            self.allocator.free(oaddr)
        # -- redistribute -------------------------------------------------------
        for key, data in inline_pairs:
            dest = self._bucket_of(key)
            self._place_pair(dest, key, data)
        for oaddr, klen, dlen, full_key in big_refs:
            dest = self._bucket_of(full_key)
            self._place_big_ref(dest, oaddr, klen, dlen, full_key)

    def _place_big_ref(
        self, bucket: int, oaddr: int, klen: int, dlen: int, key: bytes
    ) -> None:
        """Re-home an existing big-pair reference (chain pages untouched)."""
        hdr = self._fault(("B", bucket))
        hdr.pin()
        try:
            while True:
                view = hdr.view()
                if view.fits_big_ref(klen):
                    view.add_big_ref(oaddr, klen, dlen, key[:BIG_KEY_PREFIX])
                    hdr.dirty = True
                    return
                nxt = view.ovfl_addr
                if nxt == NO_OADDR:
                    new_oaddr = self.allocator.alloc()
                    nhdr = self._fault(("O", new_oaddr), create=True)
                    nhdr.pin()
                    view.ovfl_addr = new_oaddr
                    hdr.dirty = True
                    self.pool.link_chain(hdr, nhdr)
                    self.stats.ovfl_pages_linked += 1
                    if self.hooks.on_overflow_link:
                        self.hooks.emit(
                            "on_overflow_link",
                            {"bucket": bucket, "oaddr": new_oaddr},
                        )
                    hdr.unpin()
                    hdr = nhdr
                    continue
                nhdr = self._fault(("O", nxt))
                nhdr.pin()
                self.pool.link_chain(hdr, nhdr)
                hdr.unpin()
                hdr = nhdr
        finally:
            hdr.unpin()

    # ------------------------------------------------------------ contraction

    def _maybe_contract(self) -> None:
        """Undo split steps while the table sits below the ``min_fill``
        utilization floor.

        The floor is opt-in (``min_fill=0.0`` keeps the paper's
        never-contract behavior, footnote 6).  The second condition is
        the anti-thrash guard: a merge only fires when the post-merge
        table still sits at or below the controlled-split trigger
        (``nkeys <= ffactor * max_bucket``), so a put right after a
        delete cannot split the merged bucket straight back apart.
        """
        h = self.header
        ffactor = h.ffactor
        floor = self.min_fill * ffactor
        while (
            h.max_bucket > 0
            and h.nkeys < floor * (h.max_bucket + 1)
            and h.nkeys <= ffactor * h.max_bucket
        ):
            self._contract_table("floor")

    def _contract_table(self, reason: str = "floor") -> None:
        """One inverse split step: merge bucket ``max_bucket`` into its
        buddy, free its page, and rewind the masks -- the exact mirror
        of :meth:`_expand_table`.

        ``ovfl_point`` and ``spares`` are deliberately NOT rewound:
        overflow-page addresses are physical file offsets derived from
        the spares vector, and pages still in use must keep their
        addresses across contraction.  Re-expansion reuses the same
        spares entries, so the arithmetic stays consistent (and the
        re-created bucket page's write clears its free mark -- see
        repro.storage.freelist).
        """
        h = self.header
        mb = h.max_bucket
        if mb <= 0:
            return
        clock = self._clock
        t0 = clock() if clock is not None else None
        # -- collect the doomed bucket's pairs -------------------------------
        inline_pairs: list[tuple[bytes, bytes]] = []
        big_refs: list[tuple[int, int, int, bytes]] = []  # oaddr, klen, dlen, key
        chain_oaddrs: list[int] = []
        cur = self._fault(("B", mb))
        doomed = cur
        while True:
            view = cur.view()
            for i, big in view.iter_slots():
                if big:
                    oaddr, klen, dlen, _prefix = view.get_big_ref(i)
                    full_key = self.bigstore.fetch_key(oaddr, klen)
                    big_refs.append((oaddr, klen, dlen, full_key))
                else:
                    inline_pairs.append(view.get_pair(i))
            nxt = view.ovfl_addr
            if nxt == NO_OADDR:
                break
            chain_oaddrs.append(nxt)
            cur = self._fault(("O", nxt))
        # -- drop the bucket -------------------------------------------------
        # Resolve the physical page BEFORE mutating the header: the
        # spares vector indexes by split point of the bucket number.
        freed_page = addressing.bucket_to_page(mb, h.hdr_pages, h.spares)
        self.pool.unlink_chain(doomed)
        self.pool.invalidate(("B", mb))  # never write the dead page back
        for oaddr in chain_oaddrs:
            self.allocator.free(oaddr)
        # -- rewind the address space (inverse of _expand_table) -------------
        if mb - 1 < h.low_mask:
            # The doubling that created ``mb`` is now empty: step the
            # masks back one generation.
            h.high_mask = h.low_mask
            h.low_mask >>= 1
        buddy = mb & h.low_mask
        h.max_bucket = mb - 1
        self.buckets.shrink_to(mb)
        # A bucket page that was never flushed has no physical page to
        # reclaim (the invalidate above already dropped its buffer).
        page_freed = freed_page < self._file.npages()
        if page_freed:
            self._file.free_page(freed_page)
            self.stats.pages_freed += 1
        self.stats.merges += 1
        self._structure_version += 1
        # -- re-place into the buddy under the rewound masks -----------------
        for key, data in inline_pairs:
            self._place_pair(self._bucket_of(key), key, data)
        for oaddr, klen, dlen, full_key in big_refs:
            self._place_big_ref(
                self._bucket_of(full_key), oaddr, klen, dlen, full_key
            )
        if t0 is not None:
            if self._h_merge is None:
                self._h_merge = self._ops.histogram("merge")
            self._h_merge.observe(clock() - t0)
        hooks = self.hooks
        if page_freed and hooks.on_free:
            hooks.emit("on_free", {"pageno": freed_page, "kind": "bucket"})
        if hooks.on_merge:
            hooks.emit(
                "on_merge",
                {
                    "bucket": mb,
                    "buddy": buddy,
                    "reason": reason,
                    "nkeys": h.nkeys,
                    "freed_page": freed_page,
                },
            )

    # ------------------------------------------------------------- iteration

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield every ``(key, data)`` pair in bucket order.

        Single-threaded tables stream lazily (the table must not be
        modified during iteration); concurrent tables materialize the
        whole scan under the read lock, so the returned iterator is a
        stable snapshot no writer can invalidate.
        """
        if self._lock is None:
            return self._iter_items()
        with self._rd:
            return iter(list(self._iter_items()))

    def _iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        for bucket in range(self.header.max_bucket + 1):
            hdr = self._fault(("B", bucket))
            while True:
                view = hdr.view()
                for i, big in view.iter_slots():
                    if big:
                        oaddr, klen, dlen, _prefix = view.get_big_ref(i)
                        yield self.bigstore.fetch(oaddr, klen, dlen)
                    else:
                        yield view.get_pair(i)
                nxt = view.ovfl_addr
                if nxt == NO_OADDR:
                    break
                hdr = self._fault(("O", nxt))

    def keys(self) -> Iterator[bytes]:
        for key, _data in self.items():
            yield key

    def values(self) -> Iterator[bytes]:
        for _key, data in self.items():
            yield data

    def __len__(self) -> int:
        return self.header.nkeys

    def __iter__(self) -> Iterator[bytes]:
        return self.keys()

    # -- sequential scans ---------------------------------------------------------

    def cursor(self) -> "TableCursor":
        """A fresh forward scan cursor; any number may be open at once."""
        self._check_open()
        return TableCursor(self)

    def first_key(self) -> bytes | None:
        """Start a sequential scan; returns the first key or None.

        ndbm-style convenience over a hidden :class:`TableCursor`; use
        :meth:`cursor` for independent concurrent scans.
        """
        self._check_open()
        self._scan = TableCursor(self)
        item = self._scan.first()
        return None if item is None else item[0]

    def next_key(self) -> bytes | None:
        """Key after the previous :meth:`first_key`/:meth:`next_key`."""
        self._check_open()
        if self._scan is None:
            return self.first_key()
        item = self._scan.next()
        return None if item is None else item[0]

    # ----------------------------------------------------------- transactions

    def _require_txn(self) -> TransactionManager:
        if self._txn is None:
            raise TransactionError(
                "transactions require opening the table with "
                "durability='wal' or 'wal+fsync'"
            )
        return self._txn

    def begin(self) -> None:
        """Open an explicit transaction: every mutation until
        :meth:`commit` is atomic (all-or-nothing across crashes) and
        :meth:`abort` undoes all of them.  Holds the table's write lock
        until commit/abort, so transactions are thread-affine and do
        not nest.  Requires ``durability='wal'`` or ``'wal+fsync'``."""
        self._check_writable()
        self._require_txn().begin()

    def commit(self) -> None:
        """Commit the open transaction.  Under ``durability='wal+fsync'``
        this blocks until the log is fsynced (group commit shares that
        fsync among concurrent committers)."""
        self._check_open()
        self._require_txn().commit()

    def abort(self) -> None:
        """Roll back the open transaction: logged frames are orphaned
        and the in-memory state rewinds to the :meth:`begin` point."""
        self._check_open()
        self._require_txn().abort()

    def transaction(self) -> TransactionContext:
        """``with table.transaction(): ...`` -- commit on clean exit,
        abort if the body raises."""
        return TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.in_transaction

    def checkpoint(self) -> int:
        """Force a WAL checkpoint: committed pages move into the table
        file, the file is fsynced, the log is truncated.  Returns the
        number of pages transferred.  Raises :class:`TransactionError`
        inside an open transaction (or without ``durability=``)."""
        self._check_writable()
        txn = self._require_txn()
        with self._wr:
            return txn.checkpoint_locked()

    def _txn_snapshot(self) -> tuple[Header, tuple[int, ...]]:
        """Copy out the volatile state abort must rewind: the header
        (with its mutable spares/bitmaps lists) and the freelist's page
        set (contraction frees pages mid-transaction).  Page bytes need
        no snapshot -- abort just drops their buffers and the next fault
        rereads pre-transaction images."""
        h = self.header
        return (
            dataclasses.replace(h, spares=list(h.spares), bitmaps=list(h.bitmaps)),
            self._file.freelist.pages(),
        )

    def _txn_restore(self, snap: tuple[Header, tuple[int, ...]]) -> None:
        """Put the snapshot back IN PLACE: the allocator, addresser and
        big-pair store all hold references to ``self.header``, so the
        object must keep its identity."""
        header_copy, free_pages = snap
        h = self.header
        for f in dataclasses.fields(h):
            setattr(h, f.name, getattr(header_copy, f.name))
        self._file.freelist.restore(free_pages)
        nbuckets = h.max_bucket + 1
        self.buckets.shrink_to(nbuckets)
        self.buckets.grow_to(nbuckets)
        # Splits/merges undone by the rollback are structural changes
        # too: fail any cursor that was scanning mid-transaction state.
        self._structure_version += 1

    # ------------------------------------------------------------ maintenance

    def sync(self) -> None:
        """Flush dirty pages and the header, then fsync -- the shared
        flush-before-sync ordering of every access method (see
        docs/STORAGE.md): batched page write-back, header/meta write,
        one group sync.  In WAL mode this is a full checkpoint (commit
        the implicit transaction, transfer, truncate the log), and
        raises :class:`TransactionError` inside an open transaction."""
        if self.tracer.enabled:
            self._traced_op("sync", None, self._wr, self._sync_impl)
            return
        with self._wr:
            self._sync_impl()

    def _sync_impl(self) -> None:
        self._check_open()
        if self._txn is not None:
            self._txn.checkpoint_locked()
            return
        self.pool.flush()
        self._trim_tail()
        self._write_header()
        self._file.sync()

    def _trim_tail(self) -> None:
        """Give trailing free pages back to the filesystem.

        Non-WAL tables only: under a WAL, a logged-but-uncommitted state
        could still roll back to one that needs those pages, so WAL-mode
        tables reuse free pages in place and only shrink during
        :meth:`compact` (which checkpoints around the truncate)."""
        fl = self._file.freelist
        if not fl:
            return
        cut = fl.trim(self._file)
        if cut:
            self.stats.extra["pages_trimmed"] = (
                self.stats.extra.get("pages_trimmed", 0) + cut
            )

    # -------------------------------------------------------------- compaction

    def compact(self) -> dict:
        """Rewrite the table into pristine, presized form in place.

        Reclaims every dead page churn left behind: the result is
        byte-for-byte what :meth:`bulk_load` of the surviving pairs into
        a fresh table would produce -- minimal file size AND minimal
        lookup I/O (no overflow chains the survivors don't need).

        Mostly-online: the live pairs are snapshotted under the *read*
        lock and the replacement image is built without any table lock;
        only the final swap holds the write lock (if a writer slipped in
        between snapshot and swap, the build redoes itself exclusively
        -- detected via the op counters, so the swapped image is never
        stale).  Returns a report dict (``before``/``after`` page and
        byte sizes, ``pages_reclaimed``, ``nkeys``).

        Under a WAL the swap is bracketed by checkpoints, so a crash at
        any point leaves either the old table or the new one, never a
        mix.  Without a WAL, compact carries the same mid-operation
        crash caveat as any structural write.  Raises
        :class:`TransactionError` inside an open transaction.
        """
        self._check_writable()
        if self._txn is not None and self._txn.in_transaction:
            raise TransactionError(
                "compact() inside an open transaction; commit or abort first"
            )
        span = (
            self.tracer.start("compact") if self.tracer.enabled else None
        )
        try:
            report = self._compact_impl()
        finally:
            if span is not None:
                self.tracer.end(span)
        if self.hooks.on_compact:
            self.hooks.emit("on_compact", dict(report))
        return report

    def _compact_impl(self) -> dict:
        with self._rd:
            self._check_writable()
            items = list(self._iter_items())
            marker = (self.stats.puts, self.stats.deletes, self._structure_version)
        temp = self._build_compact_image(items)
        try:
            with self._wr:
                now = (
                    self.stats.puts, self.stats.deletes, self._structure_version
                )
                if now != marker:
                    # Writers slipped in between snapshot and swap: redo
                    # the snapshot and build while exclusive (rare --
                    # correctness over the lost concurrency of one build).
                    temp.close()
                    items = list(self._iter_items())
                    temp = self._build_compact_image(items)
                return self._compact_swap(temp, len(items))
        finally:
            temp.close()

    def _build_compact_image(self, items) -> "HashTable":
        """A pristine, presized RAM twin of this table loaded with
        ``items`` -- the swap source of :meth:`compact`."""
        h = self.header
        nelem = max(len(items), 1)
        temp = HashTable.create(
            None,
            in_memory=True,
            bsize=h.bsize,
            ffactor=h.ffactor,
            nelem=nelem,
            hashfn=self._hash,
            split_policy=self.split_policy,
            observability=False,
        )
        try:
            temp.bulk_load(items, nelem=nelem)
            temp._sync_impl()  # flush pages + header into the RAM file
        except BaseException:
            temp.close()
            raise
        return temp

    def _compact_swap(self, temp: "HashTable", nkeys: int) -> dict:
        """Replace this table's file contents with ``temp``'s image.
        Caller holds the write lock; ``temp`` is flushed and in RAM."""
        before_pages = self._file.npages()
        before_bytes = self._file.size_bytes()
        txn = self._txn
        if txn is not None:
            # Quiesce: materialize everything logged so far, so the copy
            # below is the only pending work in the log.
            txn.checkpoint_locked()
        self.pool.discard(lambda hdr: True)
        src = temp._file
        new_n = src.npages()
        ps = self.header.bsize
        i = 0
        while i < new_n:
            j = min(new_n, i + 64)
            blob = b"".join(src.read_page(p) for p in range(i, j))
            self._file.write_pages(i, blob)
            i = j
        th = temp.header
        h = self.header
        for f in dataclasses.fields(h):
            setattr(h, f.name, getattr(th, f.name))
        h.spares = list(th.spares)
        h.bitmaps = list(th.bitmaps)
        self._file.freelist.clear()
        h.free_head = 0
        self.buckets.shrink_to(h.max_bucket + 1)
        self.buckets.grow_to(h.max_bucket + 1)
        self._structure_version += 1
        if txn is not None:
            # Commit + transfer the new image, THEN drop the tail: the
            # truncate only ever follows a fully materialized file.
            txn.checkpoint_locked()
            if self._file.npages() > new_n:
                self._file.truncate(new_n)
                self._file.sync()
        else:
            self._write_header()
            if self._file.npages() > new_n:
                self._file.truncate(new_n)
            self._file.sync()
        self.pool._hole_threshold = new_n
        self.stats.compactions += 1
        after_pages = self._file.npages()
        return {
            "nkeys": nkeys,
            "before": {"pages": before_pages, "bytes": before_bytes},
            "after": {"pages": after_pages, "bytes": self._file.size_bytes()},
            "pages_reclaimed": max(0, before_pages - after_pages),
            "pagesize": ps,
        }

    def close(self) -> None:
        """Flush, sync and release everything; idempotent (a second
        close is a no-op); further operations raise.  An open
        uncommitted transaction is ROLLED BACK first -- close never
        half-flushes work that was never committed."""
        with self._wr:
            if self._closed:
                return
            txn = self._txn
            if not self.readonly:
                if txn is not None:
                    txn.abort_for_close()
                    txn.checkpoint_locked()
                    self.pool.drop_all()
                else:
                    self.pool.drop_all()
                    self._trim_tail()
                    self._write_header()
                    self._file.sync()
            self._closed = True
            self._file.close()
            if txn is not None:
                txn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "HashTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- inspection

    @property
    def nkeys(self) -> int:
        return self.header.nkeys

    @property
    def nbuckets(self) -> int:
        return self.header.max_bucket + 1

    @property
    def io_stats(self):
        return self._file.stats

    def fill_ratio(self) -> float:
        """Current keys per bucket (compare against ffactor)."""
        return self.header.nkeys / (self.header.max_bucket + 1)

    def stat(self) -> dict:
        """The table's full metrics tree as one nested dict.

        The top-level shape -- ``type``, ``nkeys``, ``ops`` (counts +
        latency quantiles), ``buffer``, ``io``, ``method`` -- is shared by
        every access method, so callers can report on any database the same
        way.  With ``observability=False`` the latency entries are
        shape-stable zeros; the counts are always live.
        """
        with self._rd:
            return self._stat_impl()

    def _stat_impl(self) -> dict:
        self._check_open()
        h = self.header
        s = self.stats
        wal = {} if self._txn is None else {"wal": self._txn.metrics()}
        return {
            "type": "hash",
            **wal,
            "nkeys": h.nkeys,
            "ops": {
                "counts": {
                    "gets": s.gets,
                    "puts": s.puts,
                    "deletes": s.deletes,
                    "splits": s.splits,
                },
                "latency": {
                    "get": self._h_get.as_value(),
                    "put": self._h_put.as_value(),
                    "delete": self._h_delete.as_value(),
                    "split": self._h_split.as_value(),
                },
            },
            "buffer": self.pool.metrics(),
            "io": self._file.stats.as_dict(),
            "method": {
                "nbuckets": h.max_bucket + 1,
                "bsize": h.bsize,
                "ffactor": h.ffactor,
                "fill_ratio": self.fill_ratio(),
                "split_policy": self.split_policy,
                "min_fill": self.min_fill,
                "controlled_splits": s.controlled_splits,
                "uncontrolled_splits": s.uncontrolled_splits,
                "merges": s.merges,
                "compactions": s.compactions,
                "pages_freed": s.pages_freed,
                "ovfl_pages_linked": s.ovfl_pages_linked,
                "big_pairs_stored": s.big_pairs_stored,
            },
            "space": self._space_impl(),
        }

    def _space_impl(self) -> dict:
        """The ``stat()['space']`` section: where every page of the file
        is, and how much of the file is live.

        ``fill_factor`` is keys per bucket over the configured ffactor
        (1.0 = exactly at the split trigger); ``fragmentation_pct`` is
        the share of file pages that hold no live data (freelist pages
        plus allocated-but-unused overflow slots)."""
        h = self.header
        file_pages = self._file.npages()
        fl = self._file.freelist
        bucket_pages = h.max_bucket + 1
        ovfl_allocated = self.allocator.total_slots
        ovfl_in_use = self.allocator.in_use_count()
        free_pages = len(fl)
        dead = free_pages + (ovfl_allocated - ovfl_in_use)
        return {
            "file_pages": file_pages,
            "file_bytes": self._file.size_bytes(),
            "header_pages": h.hdr_pages,
            "bucket_pages": bucket_pages,
            "overflow_pages": {
                "allocated": ovfl_allocated,
                "in_use": ovfl_in_use,
            },
            "freelist_pages": free_pages,
            "fill_factor": (
                h.nkeys / (h.ffactor * bucket_pages) if bucket_pages else 0.0
            ),
            "fragmentation_pct": (
                100.0 * dead / file_pages if file_pages else 0.0
            ),
        }

    def check_invariants(self) -> None:
        """Internal consistency checks used by the test suite.

        Verifies mask arithmetic, that every key hashes to the bucket whose
        chain stores it, and that nkeys matches a full scan.
        """
        try:
            with self._rd:
                self._check_invariants_impl()
        except AssertionError:
            # a failed check is exactly when the event tail matters
            if self.tracer.enabled:
                self.tracer.recorder.auto_dump("check_failure")
            raise

    def _check_invariants_impl(self) -> None:
        h = self.header
        assert h.low_mask == (h.high_mask >> 1), (h.low_mask, h.high_mask)
        assert h.low_mask <= h.max_bucket <= h.high_mask
        count = 0
        for bucket in range(h.max_bucket + 1):
            hdr = self._fault(("B", bucket))
            while True:
                view = hdr.view()
                for i, big in view.iter_slots():
                    if big:
                        oaddr, klen, _dlen, _prefix = view.get_big_ref(i)
                        key = self.bigstore.fetch_key(oaddr, klen)
                    else:
                        key = view.get_key(i)
                    assert self._bucket_of(key) == bucket, (
                        f"key {key!r} stored in bucket {bucket} but hashes to "
                        f"{self._bucket_of(key)}"
                    )
                    count += 1
                nxt = view.ovfl_addr
                if nxt == NO_OADDR:
                    break
                hdr = self._fault(("O", nxt))
        assert count == h.nkeys, f"scan found {count} keys, header says {h.nkeys}"


class TableCursor:
    """A forward-only scan over a :class:`HashTable` with private state.

    Any number of cursors may be open on one table; each advances
    independently.  :meth:`first` and :meth:`next` return full
    ``(key, data)`` pairs, or ``None`` past the end (hash order is
    arbitrary, so there is no backward or keyed positioning -- the access
    layer raises for those, as 4.4BSD hash did).

    The position is a (bucket, overflow address, slot) triple and pages are
    not pinned between calls, so a table mutated mid-scan degrades loosely
    rather than failing: pairs untouched for the whole scan are seen
    exactly once, but pairs relocated by a split or delete may be seen
    twice or skipped.

    On a table opened with ``concurrent=True`` each call holds the read
    lock, and the loose degradation is replaced by fail-fast: if a split
    or overflow reclaim changed the table's structure since :meth:`first`,
    the next fetch raises :class:`ConcurrentModificationError` and the
    caller restarts the scan.
    """

    __slots__ = ("table", "_pos", "_done", "_version")

    def __init__(self, table: HashTable) -> None:
        self.table = table
        self._pos: tuple[int, int, int] | None = None
        self._done = False
        self._version = table._structure_version

    def first(self) -> tuple[bytes, bytes] | None:
        """(Re)position at the first pair; None if the table is empty."""
        t = self.table
        if t.tracer.enabled:
            return t._traced_op("cursor_first", None, t._rd, self._first_impl)
        with t._rd:
            return self._first_impl()

    def _first_impl(self) -> tuple[bytes, bytes] | None:
        self.table._check_open()
        self._pos = (0, NO_OADDR, 0)
        self._done = False
        self._version = self.table._structure_version
        return self._fetch(advance=False)

    def next(self) -> tuple[bytes, bytes] | None:
        """The pair after the current one; starts at :meth:`first` if
        unpositioned; None (forever) once exhausted."""
        t = self.table
        if t.tracer.enabled:
            return t._traced_op("cursor_next", None, t._rd, self._next_impl)
        with t._rd:
            return self._next_impl()

    def _next_impl(self) -> tuple[bytes, bytes] | None:
        self.table._check_open()
        if self._done:
            return None
        if self._pos is None:
            self._pos = (0, NO_OADDR, 0)
            self._version = self.table._structure_version
            return self._fetch(advance=False)
        return self._fetch(advance=True)

    def _fetch(self, advance: bool) -> tuple[bytes, bytes] | None:
        t = self.table
        if t.concurrent and self._version != t._structure_version:
            raise ConcurrentModificationError(
                "table structure changed under this cursor (split or "
                "overflow reclaim); restart the scan with first()"
            )
        bucket, oaddr, slot = self._pos
        if advance:
            slot += 1
        while bucket <= t.header.max_bucket:
            if oaddr == NO_OADDR:
                hdr = t._fault(("B", bucket))
            else:
                hdr = t._fault(("O", oaddr))
            view = hdr.view()
            if slot < view.nslots:
                self._pos = (bucket, oaddr, slot)
                if view.slot_is_big(slot):
                    boaddr, klen, dlen, _prefix = view.get_big_ref(slot)
                    return t.bigstore.fetch(boaddr, klen, dlen)
                return view.get_pair(slot)
            nxt = view.ovfl_addr
            if nxt != NO_OADDR:
                oaddr, slot = nxt, 0
            else:
                bucket, oaddr, slot = bucket + 1, NO_OADDR, 0
        self._pos = (bucket, NO_OADDR, 0)
        self._done = True
        return None
