"""Large key/data pair storage.

"Although large key/data pair handling is difficult and expensive, it is
essential. ... we can use the same mechanism for large key/data pairs that
we use for overflow pages."

A pair whose key+data cannot fit on one page is written to a chain of
overflow pages dedicated to that pair; the bucket page keeps only a small
reference slot (chain address, true lengths, key prefix).  Chain pages use a
minimal layout distinct from slotted pages:

::

    +------+------+-----------+-------+------------------+
    |  0   | used | next addr | flags |     payload      |
    | u16  | u16  |   u16     | u16   |  (key || data)   |
    +------+------+-----------+-------+------------------+

``used`` is payload bytes on this page; ``next addr`` is the overflow
address of the next chain page (0 ends the chain); ``flags`` carries
:data:`~repro.core.constants.PAGE_F_BIG`.
"""

from __future__ import annotations

import struct

from repro.core.constants import NO_OADDR, PAGE_F_BIG, PAGE_HDR_SIZE


class BigPageView:
    """Access to one big-pair chain page buffer."""

    __slots__ = ("buf", "bsize")

    def __init__(self, buf: bytearray) -> None:
        self.buf = buf
        self.bsize = len(buf)

    @property
    def used(self) -> int:
        return struct.unpack_from(">H", self.buf, 2)[0]

    @used.setter
    def used(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 2, value)

    @property
    def next_oaddr(self) -> int:
        return struct.unpack_from(">H", self.buf, 4)[0]

    @next_oaddr.setter
    def next_oaddr(self, value: int) -> None:
        struct.pack_into(">H", self.buf, 4, value)

    @property
    def flags(self) -> int:
        return struct.unpack_from(">H", self.buf, 6)[0]

    def initialize(self) -> None:
        self.buf[:PAGE_HDR_SIZE] = struct.pack(">HHHH", 0, 0, NO_OADDR, PAGE_F_BIG)

    @property
    def capacity(self) -> int:
        return self.bsize - PAGE_HDR_SIZE

    def payload(self) -> bytes:
        return bytes(self.buf[PAGE_HDR_SIZE : PAGE_HDR_SIZE + self.used])

    def set_payload(self, chunk: bytes) -> None:
        if len(chunk) > self.capacity:
            raise ValueError(
                f"chunk of {len(chunk)} bytes exceeds page capacity {self.capacity}"
            )
        self.buf[PAGE_HDR_SIZE : PAGE_HDR_SIZE + len(chunk)] = chunk
        self.used = len(chunk)


class BigPairStore:
    """Stores, fetches and frees big pairs on overflow chains.

    Operates through the table's buffer pool and overflow allocator so big
    pages share caching and the buddy-in-waiting address space with
    everything else.
    """

    def __init__(self, pool, allocator, hooks=None) -> None:
        self.pool = pool
        self.allocator = allocator
        #: optional TraceHooks: ``on_big_pair`` fires per store/fetch/free
        self.hooks = hooks

    def _emit(self, kind: str, head: int, npages: int) -> None:
        hooks = self.hooks
        if hooks is not None and hooks.on_big_pair:
            hooks.emit(
                "on_big_pair", {"kind": kind, "head": head, "npages": npages}
            )

    def store(self, key: bytes, data: bytes) -> int:
        """Write ``key || data`` to a fresh chain; returns the head address.

        The previous chain page stays pinned until its forward link is
        written, so LRU eviction during allocation cannot lose the link.
        """
        payload = key + data
        cap = None
        head = NO_OADDR
        prev_hdr = None
        pos = 0
        npages = 0
        try:
            while pos < len(payload) or head == NO_OADDR:
                oaddr = self.allocator.alloc()
                hdr = self.pool.get(("O", oaddr), create=True)
                hdr.pin()
                view = BigPageView(hdr.page)
                view.initialize()
                if cap is None:
                    cap = view.capacity
                chunk = payload[pos : pos + cap]
                view.set_payload(chunk)
                hdr.dirty = True
                pos += len(chunk)
                npages += 1
                if head == NO_OADDR:
                    head = oaddr
                else:
                    prev_view = BigPageView(prev_hdr.page)
                    prev_view.next_oaddr = oaddr
                    prev_hdr.dirty = True
                    prev_hdr.unpin()
                prev_hdr = hdr
        finally:
            if prev_hdr is not None and prev_hdr.pins:
                prev_hdr.unpin()
        self._emit("store", head, npages)
        return head

    def _walk(self, head: int) -> list[int]:
        """Chain addresses from ``head`` in order."""
        addrs = []
        oaddr = head
        while oaddr != NO_OADDR:
            addrs.append(oaddr)
            hdr = self.pool.get(("O", oaddr))
            oaddr = BigPageView(hdr.page).next_oaddr
            if len(addrs) > 0xFFFF:
                raise AssertionError("big-pair chain cycle detected")
        return addrs

    def fetch(self, head: int, klen: int, dlen: int) -> tuple[bytes, bytes]:
        """Read the pair back from the chain at ``head``."""
        total = klen + dlen
        parts = []
        got = 0
        oaddr = head
        while oaddr != NO_OADDR and got < total:
            hdr = self.pool.get(("O", oaddr))
            view = BigPageView(hdr.page)
            chunk = view.payload()
            parts.append(chunk)
            got += len(chunk)
            oaddr = view.next_oaddr
        payload = b"".join(parts)
        if len(payload) < total:
            raise AssertionError(
                f"big-pair chain truncated: expected {total} bytes, got {len(payload)}"
            )
        self._emit("fetch", head, len(parts))
        return payload[:klen], payload[klen : klen + dlen]

    def fetch_key(self, head: int, klen: int) -> bytes:
        """Read only the key portion (enough chain pages to cover it)."""
        parts = []
        got = 0
        oaddr = head
        while oaddr != NO_OADDR and got < klen:
            hdr = self.pool.get(("O", oaddr))
            view = BigPageView(hdr.page)
            chunk = view.payload()
            parts.append(chunk)
            got += len(chunk)
            oaddr = view.next_oaddr
        key = b"".join(parts)[:klen]
        if len(key) < klen:
            raise AssertionError("big-pair chain truncated while reading key")
        return key

    def free(self, head: int) -> None:
        """Release every page of the chain at ``head``."""
        addrs = self._walk(head)
        for oaddr in addrs:
            self.allocator.free(oaddr)
        self._emit("free", head, len(addrs))
