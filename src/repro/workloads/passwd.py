"""The password-file dataset.

"The second was constructed from a password file with approximately 300
accounts.  Two records were constructed for each account.  The first used
the account name as the key and the remainder of the password entry for the
data.  The second was keyed by uid and contained the entire password entry
as its data field."

This module synthesizes a deterministic passwd(5) file of the same shape.
"""

from __future__ import annotations

import random
from typing import Iterator

#: "approximately 300 accounts"
DEFAULT_ACCOUNTS = 300

_FIRST = [
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "karl", "lena", "mallory", "nina", "oscar", "peggy",
    "quinn", "rupert", "sybil", "trent", "uma", "victor", "wendy", "xavier",
    "yolanda", "zane",
]
_SHELLS = ["/bin/sh", "/bin/csh", "/bin/ksh", "/usr/bin/false"]


def passwd_accounts(
    n: int = DEFAULT_ACCOUNTS, seed: int = 1991
) -> list[tuple[str, int, str]]:
    """``n`` synthetic accounts as ``(name, uid, full passwd line)``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = random.Random(seed)
    accounts = []
    seen: set[str] = set()
    uid = 100
    for _ in range(n):
        name = rng.choice(_FIRST) + rng.choice("abcdefghijklmnopqrstuvwxyz")
        while name in seen:
            name += rng.choice("abcdefghijklmnopqrstuvwxyz")
        seen.add(name)
        uid += rng.randint(1, 3)
        gid = rng.choice([10, 20, 31, 100])
        gecos = f"{name.capitalize()} User,Room {rng.randint(100, 999)}"
        home = f"/usr/home/{name}"
        shell = rng.choice(_SHELLS)
        entry = f"{name}:*:{uid}:{gid}:{gecos}:{home}:{shell}"
        accounts.append((name, uid, entry))
    return accounts


def passwd_pairs(
    n: int = DEFAULT_ACCOUNTS, seed: int = 1991
) -> Iterator[tuple[bytes, bytes]]:
    """The paper's two records per account: name -> rest-of-entry and
    uid -> full entry."""
    for name, uid, entry in passwd_accounts(n, seed):
        rest = entry[len(name) + 1 :]  # everything after "name:"
        yield name.encode("ascii"), rest.encode("ascii")
        yield str(uid).encode("ascii"), entry.encode("ascii")
