"""Generic key/value workload generators for tests and ablations."""

from __future__ import annotations

import random
from typing import Iterable, Iterator


def uniform_pairs(
    n: int,
    *,
    key_len: int = 16,
    value_len: int = 32,
    seed: int = 0,
) -> Iterator[tuple[bytes, bytes]]:
    """``n`` unique random pairs with fixed key/value lengths."""
    if key_len < 8:
        raise ValueError("key_len must be >= 8 to guarantee uniqueness")
    rng = random.Random(seed)
    for i in range(n):
        # unique prefix + random tail
        prefix = f"{i:08d}".encode("ascii")
        key = prefix + bytes(rng.randrange(33, 127) for _ in range(key_len - 8))
        value = bytes(rng.randrange(33, 127) for _ in range(value_len))
        yield key[:key_len], value


def zipf_pairs(
    n_distinct: int,
    n_ops: int,
    *,
    alpha: float = 1.1,
    value_len: int = 32,
    seed: int = 0,
) -> Iterator[tuple[bytes, bytes]]:
    """``n_ops`` accesses over ``n_distinct`` keys with Zipf popularity --
    the skewed-access pattern that makes caching matter (Figure 7's point)."""
    rng = random.Random(seed)
    # Inverse-CDF sampling over a truncated zeta distribution.
    weights = [1.0 / (rank**alpha) for rank in range(1, n_distinct + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    value = b"v" * value_len
    for _ in range(n_ops):
        u = rng.random()
        lo, hi = 0, n_distinct - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        yield f"zipf-key-{lo:08d}".encode("ascii"), value


def average_pair_length(pairs: Iterable[tuple[bytes, bytes]]) -> float:
    """Mean key+data length of a workload (feeds Equation 1)."""
    total = 0
    count = 0
    for key, data in pairs:
        total += len(key) + len(data)
        count += 1
    if count == 0:
        raise ValueError("empty workload")
    return total / count
