"""The dictionary dataset.

"The data set consisted of 24474 keys taken from an online dictionary.
The data value for each key was an ASCII string for an integer from 1 to
24474 inclusive."

No 1991 ``/usr/share/dict/words`` ships with this repository, so the keys
are deterministic pseudo-English words with a realistic length distribution
(mean ~8 characters, like webster-era word lists), unique, lowercase.
Everything that matters to the experiments -- key count, key sizes, and
uniqueness -- matches the paper's description; see DESIGN.md section 2.
"""

from __future__ import annotations

import random
from typing import Iterator

#: The paper's dictionary size.
DICTIONARY_SIZE = 24474

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiouy"
_CLUSTERS = ["st", "tr", "ch", "sh", "th", "ph", "br", "gr", "pl", "sp"]
_SUFFIXES = ["", "", "", "s", "ed", "ing", "er", "ly", "tion", "ness"]


def _make_word(rng: random.Random) -> str:
    """One pronounceable pseudo-word: alternating cluster/vowel syllables
    plus an optional suffix."""
    nsyll = rng.choices([1, 2, 3, 4], weights=[1, 4, 3, 1])[0]
    parts = []
    for _ in range(nsyll):
        onset = rng.choice(_CLUSTERS) if rng.random() < 0.25 else rng.choice(_CONSONANTS)
        parts.append(onset + rng.choice(_VOWELS))
    if rng.random() < 0.3:
        parts.append(rng.choice(_CONSONANTS))
    word = "".join(parts) + rng.choice(_SUFFIXES)
    return word


def dictionary_words(n: int = DICTIONARY_SIZE, seed: int = 1991) -> list[bytes]:
    """``n`` unique pseudo-dictionary words, deterministically generated."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = random.Random(seed)
    words: list[bytes] = []
    seen: set[str] = set()
    while len(words) < n:
        word = _make_word(rng)
        if word in seen:
            # Disambiguate duplicates the way real dictionaries do not have
            # to: append a numeric tag (rare -- keeps generation O(n)).
            word = f"{word}{len(seen)}"
            if word in seen:
                continue
        seen.add(word)
        words.append(word.encode("ascii"))
    return words


def dictionary_pairs(
    n: int = DICTIONARY_SIZE, seed: int = 1991
) -> Iterator[tuple[bytes, bytes]]:
    """The paper's exact pairing: word -> ASCII string of an integer from
    1 to n inclusive."""
    for i, word in enumerate(dictionary_words(n, seed), start=1):
        yield word, str(i).encode("ascii")
