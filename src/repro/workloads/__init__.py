"""Deterministic synthetic workloads matching the paper's datasets."""

from repro.workloads.dictionary import DICTIONARY_SIZE, dictionary_pairs, dictionary_words
from repro.workloads.passwd import passwd_accounts, passwd_pairs
from repro.workloads.generators import uniform_pairs, zipf_pairs, average_pair_length

__all__ = [
    "DICTIONARY_SIZE",
    "dictionary_words",
    "dictionary_pairs",
    "passwd_accounts",
    "passwd_pairs",
    "uniform_pairs",
    "zipf_pairs",
    "average_pair_length",
]
