"""Hierarchical metrics registry: counters, gauges, bounded histograms.

One :class:`Registry` node holds named instruments plus named child
registries, forming a tree that serializes to a nested dict via
:meth:`Registry.as_dict` -- the shape ``db.stat()`` returns.  A registry
created with ``enabled=False`` hands out shared null instruments whose
operations are no-ops, so instrumented code needs no branches of its own.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Scope",
    "Registry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SCOPE",
]


class Counter:
    """A monotonically increasing integer.

    ``inc`` is lock-free by default; :meth:`make_threadsafe` installs a
    mutex for instruments updated by unserialized concurrent readers.
    Code that bumps ``.value`` directly (the buffer pool) must hold its
    own lock instead.
    """

    __slots__ = ("name", "value", "_lock")
    is_null = False

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0
        self._lock: threading.Lock | None = None

    def make_threadsafe(self) -> None:
        if self._lock is None:
            self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        lock = self._lock
        if lock is None:
            self.value += n
            return
        with lock:
            self.value += n

    def reset(self) -> None:
        self.value = 0

    def as_value(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time number, optionally computed lazily via a callback."""

    __slots__ = ("name", "_value", "_fn")
    is_null = False

    def __init__(self, name: str = "", fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value = 0
        self._fn = fn

    def make_threadsafe(self) -> None:
        """No-op: ``set`` is a single attribute store (atomic under the
        GIL) and function-backed gauges read live state at snapshot
        time; present for uniformity with the other instruments."""

    def set(self, value) -> None:
        self._value = value

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make the gauge read ``fn()`` at snapshot time (live values --
        e.g. resident buffers -- without per-operation bookkeeping)."""
        self._fn = fn

    @property
    def value(self):
        return self._fn() if self._fn is not None else self._value

    def reset(self) -> None:
        self._value = 0

    def as_value(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


#: quarter-octave buckets: 4 sub-buckets per power of two.  With exponents
#: clamped to [-40, 23] the histogram covers ~1e-12 .. ~1e7 in 256 cells of
#: at most 12.5% relative width -- bounded memory, ~13% worst-case quantile
#: error, good enough to tell a 2us buffer hit from a 30ms seek.
_SUBS = 4
_EXP_MIN = -40
_EXP_MAX = 23
_NBUCKETS = (_EXP_MAX - _EXP_MIN + 1) * _SUBS


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return 0
    m, e = math.frexp(value)  # value = m * 2**e, 0.5 <= m < 1
    if e < _EXP_MIN:
        return 0
    if e > _EXP_MAX:
        return _NBUCKETS - 1
    sub = int((m - 0.5) * 2 * _SUBS)
    if sub >= _SUBS:  # m rounding at exactly 1.0
        sub = _SUBS - 1
    return (e - _EXP_MIN) * _SUBS + sub


def _bucket_bounds(index: int) -> tuple[float, float]:
    e = index // _SUBS + _EXP_MIN
    sub = index % _SUBS
    base = math.ldexp(0.5, e)  # 2**(e-1)
    step = base / _SUBS
    lo = base + sub * step
    return lo, lo + step


class Histogram:
    """Log-bucketed distribution with exact count/sum/min/max.

    Memory is a fixed dict of non-empty buckets (at most ``_NBUCKETS``
    entries), regardless of how many samples are observed.  Quantiles are
    estimated by linear interpolation inside the matched bucket and clamped
    to the exact ``[min, max]`` observed, so a constant stream reports its
    exact value.
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max", "_buckets", "_lock")
    is_null = False

    def __init__(self, name: str = "", unit: str = "seconds") -> None:
        self.name = name
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}
        self._lock: threading.Lock | None = None

    def make_threadsafe(self) -> None:
        if self._lock is None:
            self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        lock = self._lock
        if lock is not None:
            lock.acquire()
        try:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            idx = _bucket_index(value)
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
        finally:
            if lock is not None:
                lock.release()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets.clear()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1) of the observed values.

        Defined edge cases (no interpolation artifacts): an empty
        histogram returns 0.0; ``q=0``/``q=1`` return the exact observed
        min/max; a single-sample histogram returns that sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self.count == 1 or q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)  # 0-based fractional rank
        seen = 0
        for idx in sorted(self._buckets):
            n = self._buckets[idx]
            if rank < seen + n:
                lo, hi = _bucket_bounds(idx)
                frac = (rank - seen + 0.5) / n  # midpoint convention
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            seen += n
        return self.max

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_value(self) -> dict:
        empty = self.count == 0
        out = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            **self.percentiles(),
        }
        if self.unit != "seconds":
            # non-default units (the server's "ms" latency histograms, the
            # batcher's "ops" sizes) must say so, or exporters mislabel
            # and mis-scale them; seconds histograms stay byte-identical
            # with every recorded BENCH_*.json snapshot
            out["unit"] = self.unit
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} count={self.count} mean={self.mean:.3g}>"


class Scope:
    """Context-manager timer: measures a block into a histogram.

    Re-entrant per instance is not supported; create one per block or use
    :meth:`Registry.timer` each time (allocation is one slotted object).
    """

    __slots__ = ("hist", "_t0")
    is_null = False

    def __init__(self, hist: Histogram) -> None:
        self.hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "Scope":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.hist.observe(time.perf_counter() - self._t0)


class _NullCounter:
    __slots__ = ()
    is_null = True
    name = ""
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def reset(self) -> None:
        pass

    def as_value(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()
    is_null = True
    name = ""
    value = 0

    def set(self, value) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def reset(self) -> None:
        pass

    def as_value(self) -> int:
        return 0


class _NullHistogram:
    __slots__ = ()
    is_null = True
    name = ""
    unit = "seconds"
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def as_value(self) -> dict:
        return {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }


class _NullScope:
    __slots__ = ()
    is_null = True

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: shared no-op instruments handed out by disabled registries
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_SCOPE = _NullScope()


class Registry:
    """A named node in the metrics tree.

    Instruments and children are created on first request and cached, so
    ``registry.counter("hits")`` is both the declaration and the lookup.
    A disabled registry (and every child it creates) returns the shared
    null instruments; its :meth:`as_dict` is always ``{}``.
    """

    __slots__ = ("name", "enabled", "_metrics", "_children", "_threadsafe")

    def __init__(self, name: str = "", enabled: bool = True) -> None:
        self.name = name
        self.enabled = enabled
        self._metrics: dict[str, object] = {}
        self._children: dict[str, Registry] = {}
        self._threadsafe = False

    def make_threadsafe(self) -> "Registry":
        """Install mutexes on every instrument in this subtree, and on
        any instrument or child created afterwards.  Idempotent; called
        once by tables opened with ``concurrent=True``, so disabled and
        single-threaded registries never pay for a lock."""
        if not self._threadsafe:
            self._threadsafe = True
            for metric in self._metrics.values():
                make = getattr(metric, "make_threadsafe", None)
                if make is not None:
                    make()
            for node in self._children.values():
                node.make_threadsafe()
        return self

    # -- structure -------------------------------------------------------------

    def child(self, name: str) -> "Registry":
        node = self._children.get(name)
        if node is None:
            node = Registry(name, enabled=self.enabled)
            if self._threadsafe:
                node.make_threadsafe()
            self._children[name] = node
        return node

    def attach(self, instrument) -> object:
        """Adopt an externally created instrument under this node."""
        if self.enabled and not instrument.is_null:
            if self._threadsafe:
                make = getattr(instrument, "make_threadsafe", None)
                if make is not None:
                    make()
            self._metrics[instrument.name] = instrument
        return instrument

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        c = self._metrics.get(name)
        if c is None:
            c = Counter(name)
            if self._threadsafe:
                c.make_threadsafe()
            self._metrics[name] = c
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        g = self._metrics.get(name)
        if g is None:
            g = Gauge(name)
            self._metrics[name] = g
        return g

    def histogram(self, name: str, unit: str = "seconds") -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        h = self._metrics.get(name)
        if h is None:
            h = Histogram(name, unit=unit)
            if self._threadsafe:
                h.make_threadsafe()
            self._metrics[name] = h
        return h

    def timer(self, name: str) -> Scope:
        """A fresh Scope over the named latency histogram."""
        if not self.enabled:
            return NULL_SCOPE
        return Scope(self.histogram(name))

    # -- serialization ---------------------------------------------------------

    def as_dict(self) -> dict:
        """The subtree as one nested dict (instruments then children)."""
        if not self.enabled:
            return {}
        out: dict = {}
        for name, metric in self._metrics.items():
            out[name] = metric.as_value()
        for name, node in self._children.items():
            out[name] = node.as_dict()
        return out

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()
        for node in self._children.values():
            node.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Registry {self.name!r} {state} metrics={len(self._metrics)} "
            f"children={len(self._children)}>"
        )
