"""Unified observability: hierarchical metrics + trace-event hooks.

The paper's entire evaluation hinges on counting the work each layer does
-- system calls, page faults, buffer hits (Figures 5-8).  This package is
the measurement substrate those figures need: every layer of the database
(storage, buffer pool, access methods) registers its counters, gauges and
latency histograms under one :class:`~repro.obs.registry.Registry` tree,
so ``db.stat()`` can return a single nested dict for any access method,
and subscribes trace callbacks through :class:`~repro.obs.hooks.TraceHooks`
for event-level visibility (splits, evictions, page I/O, overflow links).

Design constraints:

- **bounded memory**: histograms are log-bucketed (quarter-octave), never
  per-sample;
- **cheap when enabled**: counters are a slotted attribute add;
- **near-zero when disabled**: a disabled registry hands out shared no-op
  null instruments and null timers, and emit sites guard on an attribute
  check.
"""

from repro.obs.export import to_chrome_trace, to_ndjson, to_prometheus
from repro.obs.hooks import TraceHooks
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SCOPE,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Scope,
)
from repro.obs.trace import FlightRecorder, Span, Tracer

__all__ = [
    "Registry",
    "Counter",
    "Gauge",
    "Histogram",
    "Scope",
    "TraceHooks",
    "Tracer",
    "Span",
    "FlightRecorder",
    "to_chrome_trace",
    "to_prometheus",
    "to_ndjson",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SCOPE",
]
