"""Slow-operation capture: complete span trees for requests over a threshold.

The flight recorder answers "what happened *recently*"; this module
answers "what did the *slow* requests look like", which is a different
retention policy -- a 40 ms outlier among a million fast ops falls out
of a shared ring long before anyone asks about it.  A :class:`SlowLog`
keeps its own bounded ring (a :class:`~repro.obs.trace.FlightRecorder`,
reused verbatim: same capacity semantics, same dropped accounting, same
dump machinery) holding one entry per threshold breach.

When the request was traced, the entry embeds the request's **complete
span tree** lifted out of the tracer's recorder: every record reachable
from the request's root span by parent edges *or* span links -- links
are what connect a request to the coalescer's shared ``coalesce.exec``
span and, through it, to the engine batch and WAL fsync it waited on
(see docs/OBSERVABILITY.md).  With tracing off the entry degrades to the
op name, duration, and status: still enough to see *that* something was
slow, just not *why*.

Entries are plain dicts, served by ``/debug/slow`` and rendered by
``python -m repro.tools slow``.
"""

from __future__ import annotations

from repro.obs.trace import FlightRecorder

__all__ = ["SlowLog", "span_tree"]


def span_tree(records: list[dict], root_id: int) -> list[dict]:
    """Every record reachable from ``root_id`` via parent edges or span
    links, in timestamp order.

    Inclusion runs to a fixed point because the causal edges point both
    ways: children name their parent, but the coalescer's shared span
    names its *member requests* in ``links`` -- so a record joins the
    tree when its parent OR any of its links is already in it, and its
    own descendants join on a later pass.
    """
    included = {root_id}
    out = []
    remaining = [r for r in records if r.get("id") is not None]
    changed = True
    while changed:
        changed = False
        rest = []
        for rec in remaining:
            rid = rec["id"]
            if rid in included:
                out.append(rec)
                continue
            if rec.get("parent") in included or any(
                l in included for l in rec.get("links") or ()
            ):
                included.add(rid)
                out.append(rec)
                changed = True
            else:
                rest.append(rec)
        remaining = rest
    out.sort(key=lambda r: r.get("ts", 0.0))
    return out


class SlowLog:
    """A bounded ring of slow-request captures.

    ``threshold_ms`` is the breach line; ``capacity`` bounds the ring
    (oldest captures fall out first).  Thread-safe after
    :meth:`make_threadsafe` (the serving layer calls it: captures happen
    on event-loop callbacks while ``/debug/slow`` snapshots from the
    HTTP handler).
    """

    def __init__(self, threshold_ms: float, capacity: int = 64) -> None:
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        self.threshold_ms = threshold_ms
        self.ring = FlightRecorder(capacity)

    def make_threadsafe(self) -> "SlowLog":
        self.ring.make_threadsafe()
        return self

    def observe(
        self,
        name: str,
        dur_ms: float,
        *,
        status: int | None = None,
        attrs: dict | None = None,
        root_span_id: int | None = None,
        recorder: FlightRecorder | None = None,
    ) -> bool:
        """Capture the op if it breached the threshold; returns whether
        it did.  With ``root_span_id`` + the tracer's ``recorder`` the
        entry embeds the full causal span tree."""
        if dur_ms < self.threshold_ms:
            return False
        entry: dict = {
            "type": "slow",
            "op": name,
            "dur_ms": round(dur_ms, 3),
            "seq": self.ring.recorded,
        }
        if status is not None:
            entry["status"] = status
        if attrs:
            entry["attrs"] = dict(attrs)
        if root_span_id is not None and recorder is not None:
            entry["root_span"] = root_span_id
            entry["spans"] = span_tree(recorder.events(), root_span_id)
        self.ring.record(entry)
        return True

    def entries(self) -> list[dict]:
        """Oldest-first snapshot of the captured entries."""
        return self.ring.events()

    def as_dict(self) -> dict:
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.ring.capacity,
            "captured": self.ring.recorded,
            "dropped": self.ring.dropped,
            "entries": self.entries(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SlowLog >={self.threshold_ms}ms "
            f"{len(self.ring)}/{self.ring.capacity}>"
        )
