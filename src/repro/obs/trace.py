"""Causal span tracing and the crash flight recorder.

The metrics registry answers "how much" and the trace hooks answer "that
it happened"; this module answers **why this operation was slow**.  Every
public database operation (``get``/``put``/``delete``/cursor step/
``sync``/``open``) opens a root :class:`Span`, and every nested event the
engine emits while that operation runs -- buffer hit/miss, page
read/write, overflow-page hop, split, big-pair segment, lock wait, fault
injection -- attaches as a child with monotonic timestamps.  A single
slow ``get`` therefore decomposes into its exact chain of page I/Os and
lock waits.

Design constraints (mirroring the rest of :mod:`repro.obs`):

- **default-off costs one predicate**: engines guard every trace call on
  ``tracer.enabled``, and the nested events reuse the existing
  :class:`~repro.obs.hooks.TraceHooks` emit points, which already guard
  on their subscriber lists.  A table that never calls
  ``enable_tracing()`` pays one attribute load + truth test per op.
- **bounded memory**: finished spans and events land in a
  :class:`FlightRecorder` ring buffer of the last N records; a 10-hour
  run holds exactly as much trace as a 10-second one.
- **post-mortem by default**: the recorder auto-dumps its contents to a
  JSON file the first time an operation dies (unhandled exception,
  injected :class:`~repro.storage.faulty.CrashPoint`) or a ``check()``
  fails, so the events *leading up to* the failure survive it.

The ring buffer is lock-free when ``concurrent=False`` (a plain
``deque.append``); :meth:`FlightRecorder.make_threadsafe` installs the
optional mutex used by concurrent tables, the same pattern as
:class:`~repro.obs.registry.Counter`.

Records are plain JSON-ready dicts::

    {"type": "span",  "id": 7, "parent": 3, "tid": 0, "name": "get",
     "cat": "op", "ts": 0.0123, "dur": 0.0004, "attrs": {...}}
    {"type": "event", "id": 8, "parent": 7, "tid": 0, "name": "buffer_miss",
     "cat": "buffer", "ts": 0.0124, "attrs": {...}}

``ts`` is seconds since the tracer's epoch (``time.perf_counter`` at
construction), so exporters never deal with wall-clock skew.  See
:mod:`repro.obs.export` for the Chrome-trace / Prometheus / NDJSON
renderings and docs/OBSERVABILITY.md for the span model contract.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = ["Span", "Tracer", "FlightRecorder", "TraceSupport"]


class Span:
    """One in-flight operation: a named interval with a parent and attrs.

    ``links`` holds span ids this span is *causally related to* beyond
    its single parent -- the coalescer's one-engine-batch-N-requests
    merge and group commit's one-fsync-N-committers are the motivating
    cases.  Links export as an attr-like record field; the single
    ``parent`` stays the tree edge.
    """

    __slots__ = ("id", "parent_id", "name", "cat", "tid", "t0", "t1", "attrs",
                 "links")

    def __init__(
        self,
        id: int,  # noqa: A002 - record field name
        parent_id: int | None,
        name: str,
        cat: str,
        tid: int,
        t0: float,
    ) -> None:
        self.id = id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.tid = tid
        self.t0 = t0
        self.t1 = 0.0
        self.attrs: dict = {}
        self.links: list[int] | None = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span #{self.id} {self.name!r} parent={self.parent_id}>"


class FlightRecorder:
    """Bounded ring buffer of the last N trace records.

    ``capacity=None`` keeps everything (the trace CLI uses that for full
    exports); the default keeps the tail -- exactly what a post-mortem
    needs.  :meth:`dump` writes the contents as one JSON document;
    :meth:`auto_dump` is the crash path: it fires at most once per
    recorder (a crashed pager raises on *every* subsequent op, and the
    first dump is the one with the evidence), never raises, and is a
    no-op until a dump path is configured.
    """

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        #: total records ever seen (``recorded - len(ring)`` = dropped)
        self.recorded = 0
        #: where :meth:`auto_dump` writes; None disables auto-dumping
        self.dump_path: str | None = None
        self.auto_dumped: str | None = None
        self._lock: threading.Lock | None = None

    def make_threadsafe(self) -> "FlightRecorder":
        """Install the snapshot mutex (idempotent).  ``record`` stays a
        bare ``deque.append`` -- atomic in CPython -- but concurrent
        ``events()`` snapshots need the ring to hold still."""
        if self._lock is None:
            self._lock = threading.Lock()
        return self

    def record(self, rec: dict) -> None:
        self.recorded += 1
        self._ring.append(rec)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring by later ones."""
        return self.recorded - len(self._ring)

    def events(self) -> list[dict]:
        """A stable snapshot of the ring, oldest first."""
        lock = self._lock
        if lock is None:
            return list(self._ring)
        with lock:
            return list(self._ring)

    def clear(self) -> None:
        lock = self._lock
        if lock is not None:
            lock.acquire()
        try:
            self._ring.clear()
            self.recorded = 0
            self.auto_dumped = None
        finally:
            if lock is not None:
                lock.release()

    # -- dumping ---------------------------------------------------------------

    def dump(self, path: str | os.PathLike | None = None, *, reason: str = "explicit") -> str:
        """Write the ring to ``path`` (default :attr:`dump_path`) as JSON;
        returns the path written."""
        target = os.fspath(path) if path is not None else self.dump_path
        if target is None:
            raise ValueError("no dump path: pass one or set recorder.dump_path")
        payload = {
            "reason": reason,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": self.events(),
        }
        with open(target, "w") as fh:
            json.dump(payload, fh, indent=1, default=_json_default)
            fh.write("\n")
        return target

    def auto_dump(self, reason: str) -> str | None:
        """The crash path: dump once to :attr:`dump_path`, swallow I/O
        errors (a post-mortem must never mask the original failure)."""
        if self.dump_path is None or self.auto_dumped is not None:
            return None
        try:
            path = self.dump(reason=reason)
        except OSError:  # pragma: no cover - disk-full during post-mortem
            return None
        self.auto_dumped = reason
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder {len(self._ring)}/{self.capacity} "
            f"recorded={self.recorded}>"
        )


def _json_default(obj):
    """Fallback serializer for payload values (bytes keys, odd objects)."""
    if isinstance(obj, (bytes, bytearray)):
        return obj.decode("utf-8", "backslashreplace")
    return repr(obj)


class _SpanContext:
    """Context-manager wrapper returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._tracer.end(self.span)


class _AttachContext:
    """Context-manager returned by :meth:`Tracer.attach`: pushes an
    already-open span onto the calling thread's stack and pops back to
    the prior depth on exit (without closing the span)."""

    __slots__ = ("_tracer", "_span", "_depth")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._depth = 0

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack()
        del stack[self._depth :]


class Tracer:
    """Per-database span tracer: a stack of open spans per thread plus a
    :class:`FlightRecorder` sink.

    Engines hold one Tracer from construction (``enabled=False`` -- every
    call site guards on :attr:`enabled`, so a disabled tracer is one
    attribute load).  ``enable_tracing()`` on a database swaps in an
    enabled tracer wired to the engine's hooks.
    """

    __slots__ = ("enabled", "recorder", "_clock", "epoch", "_next_id",
                 "_id_lock", "_tls", "_tids")

    def __init__(
        self,
        enabled: bool = True,
        recorder: FlightRecorder | None = None,
    ) -> None:
        self.enabled = enabled
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self._clock = time.perf_counter
        #: perf_counter origin: all record timestamps are relative to this
        self.epoch = self._clock()
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._tls = threading.local()
        #: thread ident -> small stable tid for export (0, 1, 2, ...)
        self._tids: dict[int, int] = {}

    # -- bookkeeping ------------------------------------------------------------

    def _alloc_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._id_lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self.epoch

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- spans ------------------------------------------------------------------

    def start(self, name: str, cat: str = "op", attrs: dict | None = None) -> Span:
        """Open a span as a child of the calling thread's current span."""
        parent = self.current_span()
        span = Span(
            self._alloc_id(),
            parent.id if parent is not None else None,
            name,
            cat,
            self._tid(),
            self.now(),
        )
        if attrs:
            span.attrs.update(attrs)
        self._stack().append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` and record it.  Tolerates out-of-order closes
        (pops through to the given span) so an exception path that skips
        a child's ``end`` cannot wedge the stack."""
        span.t1 = self.now()
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
        self._record_span(span)

    def _record_span(self, span: Span) -> None:
        rec = {
            "type": "span",
            "id": span.id,
            "parent": span.parent_id,
            "tid": span.tid,
            "name": span.name,
            "cat": span.cat,
            "ts": span.t0,
            "dur": span.t1 - span.t0,
            "attrs": span.attrs,
        }
        if span.links:
            rec["links"] = list(span.links)
        self.recorder.record(rec)

    # -- detached spans ----------------------------------------------------------
    #
    # Request-scoped spans in the serving layer don't nest like call
    # frames: a connection task opens a span, hands its id to the
    # coalescer, and the engine closes the causal chain on a *different*
    # thread.  These helpers manage such spans without ever touching the
    # per-thread stacks.

    def open_span(
        self,
        name: str,
        cat: str = "op",
        attrs: dict | None = None,
        *,
        parent_id: int | None = None,
        links: list[int] | None = None,
    ) -> Span:
        """Open a span *without* pushing it on the thread's stack.

        ``parent_id=None`` makes it a root (it does NOT adopt the current
        span -- pass ``self.current_span().id`` explicitly for that).
        Close with :meth:`close_span`, or lend it to a worker thread via
        :meth:`attach` so nested engine spans become its children.
        """
        span = Span(self._alloc_id(), parent_id, name, cat, self._tid(), self.now())
        if attrs:
            span.attrs.update(attrs)
        if links:
            span.links = list(links)
        return span

    def close_span(self, span: Span, attrs: dict | None = None) -> None:
        """Close a span opened with :meth:`open_span` and record it."""
        if attrs:
            span.attrs.update(attrs)
        span.t1 = self.now()
        self._record_span(span)

    def attach(self, span: Span) -> "_AttachContext":
        """``with tracer.attach(span):`` -- make ``span`` the current
        parent on *this* thread for the duration of the block, so spans
        and events the block emits nest under it.  The span itself is not
        closed; pair with :meth:`close_span`."""
        return _AttachContext(self, span)

    def span(self, name: str, cat: str = "op", **attrs) -> _SpanContext:
        """``with tracer.span("get"):`` -- start/end as a context manager."""
        return _SpanContext(self, self.start(name, cat, attrs or None))

    # -- child events -----------------------------------------------------------

    def instant(self, name: str, cat: str = "event", attrs: dict | None = None) -> None:
        """A zero-duration child event under the current span."""
        parent = self.current_span()
        self.recorder.record(
            {
                "type": "event",
                "id": self._alloc_id(),
                "parent": parent.id if parent is not None else None,
                "tid": self._tid(),
                "name": name,
                "cat": cat,
                "ts": self.now(),
                "attrs": dict(attrs) if attrs else {},
            }
        )

    def complete(
        self,
        name: str,
        t0: float,
        dur: float,
        cat: str = "event",
        attrs: dict | None = None,
        *,
        parent_id: int | None = None,
        links: list[int] | None = None,
    ) -> int:
        """A pre-measured child interval (e.g. a lock wait timed by the
        lock itself).  ``t0`` is an absolute ``perf_counter`` reading.
        ``parent_id`` overrides the default current-span parent (for
        spans measured on one thread but owned by a request on another);
        ``links`` adds extra causal edges.  Returns the span id.
        """
        if parent_id is None:
            parent = self.current_span()
            parent_id = parent.id if parent is not None else None
        sid = self._alloc_id()
        rec = {
            "type": "span",
            "id": sid,
            "parent": parent_id,
            "tid": self._tid(),
            "name": name,
            "cat": cat,
            "ts": t0 - self.epoch,
            "dur": dur,
            "attrs": dict(attrs) if attrs else {},
        }
        if links:
            rec["links"] = list(links)
        self.recorder.record(rec)
        return sid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state} {self.recorder!r}>"


class TraceSupport:
    """Engine mixin: span tracing over the engine's TraceHooks fabric.

    The host class provides ``hooks`` (a :class:`~repro.obs.hooks.TraceHooks`),
    ``concurrent`` (bool), ``_file`` (its pager, for the default dump
    path), optionally ``_clock`` (the histogram clock), and op wrappers
    that branch to :meth:`_traced_op` when ``self.tracer.enabled``.  Call
    :meth:`_init_tracing` during construction; it leaves a disabled
    tracer in place so the guard is one attribute load + truth test.

    Engines with extra emit points feed them through the two event
    adapters: ``_lock_wait_event`` (install as ``RWLock.wait_hook``) and
    ``_fault_event`` (install as ``FaultyPager.on_fault``).
    """

    def _init_tracing(self) -> None:
        self.tracer = Tracer(enabled=False)
        self._trace_subs: list = []

    # -- engine emit-point adapters ---------------------------------------------

    def _fault_event(self, payload: dict) -> None:
        hooks = self.hooks
        if hooks.on_fault:
            hooks.emit("on_fault", payload)

    def _lock_wait_event(self, mode: str, t0: float, wait: float) -> None:
        hooks = self.hooks
        if hooks.on_lock:
            hooks.emit("on_lock", {"mode": mode, "wait": wait, "t0": t0})

    # -- lifecycle ---------------------------------------------------------------

    def enable_tracing(
        self,
        *,
        ring_capacity: int | None = FlightRecorder.DEFAULT_CAPACITY,
        dump_path: str | os.PathLike | None = None,
    ) -> Tracer:
        """Turn on span tracing: every public op opens a root span, every
        hook event attaches as a child, and the last ``ring_capacity``
        records live in :attr:`flight_recorder` (``None`` = unbounded).

        ``dump_path`` is where crashes auto-dump the ring; it defaults to
        ``<db file>.flight.json`` for on-disk databases and stays unset
        (no auto-dump) for in-memory ones.  Idempotent.
        """
        if self.tracer.enabled:
            return self.tracer
        recorder = FlightRecorder(capacity=ring_capacity)
        if dump_path is None:
            file_path = getattr(self._file, "path", None)
            if file_path is not None:
                dump_path = os.fspath(file_path) + ".flight.json"
        recorder.dump_path = (
            os.fspath(dump_path) if dump_path is not None else None
        )
        if self.concurrent:
            recorder.make_threadsafe()
        self.tracer = Tracer(enabled=True, recorder=recorder)
        self._wire_tracing()
        return self.tracer

    def disable_tracing(self) -> None:
        """Unsubscribe the tracer from every hook and drop back to the
        one-predicate-per-op disabled state.  The recorder (and any dump
        it wrote) survives on the old tracer object."""
        for event, fn in self._trace_subs:
            self.hooks.unsubscribe(event, fn)
        self._trace_subs = []
        self.tracer = Tracer(enabled=False)

    @property
    def flight_recorder(self) -> FlightRecorder:
        return self.tracer.recorder

    def _wire_tracing(self) -> None:
        """Subscribe the tracer to every engine emit point, so nested
        events land as children of whichever op span is open."""
        tracer = self.tracer
        wiring = (
            ("on_page_io", "io", lambda p: "page_" + p["kind"]),
            ("on_buffer", "buffer", lambda p: "buffer_" + p["kind"]),
            ("on_overflow_hop", "chain", lambda p: "overflow_hop"),
            ("on_overflow_link", "chain", lambda p: "overflow_link"),
            ("on_big_pair", "chain", lambda p: "big_pair_" + p["kind"]),
            ("on_split", "split", lambda p: "split"),
            ("on_merge", "split", lambda p: "merge"),
            ("on_free", "space", lambda p: "page_free"),
            ("on_compact", "space", lambda p: "compact"),
            ("on_evict", "buffer", lambda p: "evict"),
            ("on_fault", "fault", lambda p: "fault_injected"),
            ("on_commit", "wal", lambda p: "commit"),
        )
        for event, cat, namer in wiring:
            def relay(payload, _cat=cat, _namer=namer):
                tracer.instant(_namer(payload), _cat, payload)
            self.hooks.subscribe(event, relay)
            self._trace_subs.append((event, relay))

        def wal_relay(payload):
            # timed WAL phases (group-commit fsync / commit_wait carry
            # their own measured interval) become proper spans; the rest
            # of the WAL chatter stays zero-duration instants
            if "dur" in payload and "t0" in payload:
                attrs = {
                    k: v for k, v in payload.items() if k not in ("t0", "dur", "kind")
                }
                tracer.complete(
                    "wal_" + payload["kind"], payload["t0"], payload["dur"],
                    "wal", attrs,
                )
            else:
                tracer.instant("wal_" + payload["kind"], "wal", payload)

        self.hooks.subscribe("on_wal", wal_relay)
        self._trace_subs.append(("on_wal", wal_relay))

        def lock_wait(payload):
            tracer.complete(
                "lock_wait",
                payload["t0"],
                payload["wait"],
                "lock",
                {"mode": payload["mode"]},
            )

        self.hooks.subscribe("on_lock", lock_wait)
        self._trace_subs.append(("on_lock", lock_wait))

    def _trace_open(self, t_open: float, how: str) -> None:
        """create/open path: enable tracing and backfill the 'open' root
        span covering pager open + construction (epoch re-anchors to the
        open start, so the span sits at ts=0)."""
        tracer = self.enable_tracing()
        tracer.epoch = t_open
        tracer.complete(
            "open", t_open, time.perf_counter() - t_open, "op", {"how": how}
        )

    # -- the traced op wrapper ---------------------------------------------------

    def _traced_op(self, name: str, hist, guard, fn, *args, **kwargs):
        """Run ``fn`` under ``guard`` inside a root span named ``name``.

        The span opens *before* the engine lock so a contended
        acquisition shows up as a ``lock_wait`` child of this op (the
        lock's wait hook fires between span start and ``fn``).  A raising
        op marks the span, auto-dumps the flight recorder once, and
        re-raises.
        """
        tracer = self.tracer
        span = tracer.start(name, "op")
        try:
            with guard:
                result = fn(*args, **kwargs)
        except BaseException as exc:
            span.attrs["error"] = type(exc).__name__
            tracer.end(span)
            tracer.recorder.auto_dump(f"exception:{type(exc).__name__}")
            raise
        tracer.end(span)
        if hist is not None and getattr(self, "_clock", None) is not None:
            hist.observe(span.t1 - span.t0)
        return result
