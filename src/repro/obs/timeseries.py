"""Live time-series over the metric tree: periodic deltas in a ring.

``stat()`` is a point-in-time snapshot; operators watching a live server
need *rates* -- ops/sec now, not ops since boot.  A :class:`TimeSeries`
samples a snapshot callable on a fixed interval and keeps the last N
samples in a ring, each holding the **deltas** of every counter-like
leaf and the **levels** of every gauge-like leaf since the previous
sample.  ``/debug/timeseries`` serves the ring as JSON and
``python -m repro.tools watch`` renders it top-style.

Classification is structural, not declared: the stat tree flattens to
dotted ``path -> number`` leaves, and every leaf starts life as a
counter (report the delta).  The first time a leaf's value *decreases*
it is reclassified as a gauge -- permanently, so one sawtooth doesn't
flap the rendering -- and reported by level from then on.  Leaves whose
terminal name is known to be a level (histogram ``mean``/``min``/
``max``/``p50``/``p95``/``p99``, and anything under a ``*_active`` or
``*depth*`` style name the registry exports as a Gauge) are seeded as
gauges up front so their first samples aren't nonsense deltas.

Sampling and snapshotting are the caller's problem by design: the
serving layer drives :meth:`sample` from an asyncio task (taking the
``stat()`` on a worker thread), tests drive it synchronously, and the
ring itself is protected by one small mutex so HTTP reads never tear a
sample.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["TimeSeries", "flatten_stat"]

#: terminal leaf names seeded as gauges (levels, not accumulators)
GAUGE_LEAF_NAMES = frozenset(
    ("mean", "min", "max", "p50", "p90", "p95", "p99", "stddev")
)


def flatten_stat(stat: dict, prefix: str = "") -> dict[str, float]:
    """Flatten a nested stat tree to dotted-path numeric leaves.

    Strings (e.g. histogram ``unit`` tags) and booleans are skipped;
    lists are skipped (they're structure, not metrics).
    """
    flat: dict[str, float] = {}
    for key, value in stat.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_stat(value, path))
    return flat


class TimeSeries:
    """A bounded ring of periodic metric deltas.

    ``snapshot`` is a zero-arg callable returning the stat tree;
    ``interval`` is advisory metadata for renderers (the caller owns the
    actual timer); ``retention`` bounds the ring.
    """

    def __init__(
        self,
        snapshot,
        *,
        interval: float = 1.0,
        retention: int = 120,
    ) -> None:
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._snapshot = snapshot
        self.interval = interval
        self.retention = retention
        self._ring: deque = deque(maxlen=retention)
        self._lock = threading.Lock()
        self._prev: dict[str, float] | None = None
        self._prev_t = 0.0
        self._gauges: set[str] = set()
        #: samples ever taken (``taken - len(ring)`` fell off the ring)
        self.taken = 0

    def sample(self, stat: dict | None = None) -> dict | None:
        """Take one sample (calling ``snapshot`` unless ``stat`` is
        given); returns the recorded entry, or None for the baseline
        sample that only primes the deltas."""
        if stat is None:
            stat = self._snapshot()
        now = time.time()
        flat = flatten_stat(stat)
        with self._lock:
            prev, prev_t = self._prev, self._prev_t
            self._prev, self._prev_t = flat, now
            for path in flat:
                if path.rsplit(".", 1)[-1] in GAUGE_LEAF_NAMES:
                    self._gauges.add(path)
            if prev is None:
                return None
            deltas: dict[str, float] = {}
            gauges: dict[str, float] = {}
            for path, value in flat.items():
                if path not in self._gauges:
                    delta = value - prev.get(path, 0.0)
                    if delta < 0:
                        # shrank: this is a level, not an accumulator
                        self._gauges.add(path)
                    else:
                        if delta:
                            deltas[path] = round(delta, 6)
                        continue
                gauges[path] = round(value, 6)
            entry = {
                "t": round(now, 3),
                "dt": round(now - prev_t, 6),
                "deltas": deltas,
                "gauges": gauges,
            }
            self._ring.append(entry)
            self.taken += 1
            return entry

    def samples(self) -> list[dict]:
        """Oldest-first snapshot of the ring."""
        with self._lock:
            return list(self._ring)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "interval": self.interval,
                "retention": self.retention,
                "taken": self.taken,
                "samples": list(self._ring),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimeSeries {len(self._ring)}/{self.retention} "
            f"@{self.interval}s>"
        )
