"""Trace-event hooks: callback lists with cheap empty-path checks.

Emit sites in the engine guard on the per-event subscriber list before
building a payload::

    hooks = self.hooks
    if hooks.on_split:
        hooks.emit("on_split", {"old_bucket": old, "new_bucket": new, ...})

so an unsubscribed event costs one attribute load and one truth test.
Each callback receives a single dict payload; the keys per event are part
of the contract documented in docs/OBSERVABILITY.md:

``on_split``
    ``old_bucket``, ``new_bucket``, ``reason`` ('controlled' |
    'uncontrolled' | 'structural'), ``nkeys``
``on_merge``
    ``bucket`` (the merged-away highest bucket), ``buddy``, ``reason``
    ('floor'), ``nkeys``, ``freed_page`` (physical page handed to the
    freelist) -- the contraction mirror of ``on_split``
``on_free``
    ``pageno`` (physical page returned to the pager freelist), ``kind``
    ('bucket')
``on_compact``
    the :meth:`~repro.core.table.HashTable.compact` report:
    ``nkeys``, ``before``/``after`` (``pages``, ``bytes``),
    ``pages_reclaimed``, ``pagesize``
``on_evict``
    ``key``, ``pageno``, ``dirty``, ``chained``
``on_page_io``
    ``kind`` ('read' | 'write'), ``pageno``, ``nbytes``
``on_overflow_link``
    ``bucket`` (or ``None`` for big-pair/btree data chains), ``oaddr``
``on_overflow_hop``
    ``bucket``, ``oaddr``, ``depth`` (1-based position in the chain walk)
``on_buffer``
    ``kind`` ('hit' | 'miss'), ``key``, ``pageno``
``on_lock``
    ``mode`` ('read' | 'write'), ``wait`` (seconds blocked), ``t0``
    (absolute ``perf_counter`` at block start)
``on_fault``
    ``mode`` (injected fault mode), ``op`` ('read' | 'write' | 'sync')
``on_big_pair``
    ``kind`` ('store' | 'fetch' | 'free'), ``head``, ``npages``
``on_wal``
    ``kind`` ('begin' | 'abort' | 'checkpoint'), ``wal_bytes``, plus
    ``txid`` (begin/abort) or ``pages`` transferred (checkpoint)
``on_commit``
    ``txid``, ``lsn`` of the COMMIT frame, ``npages`` logged by the
    transaction, ``explicit`` (False for implicit commits at
    begin/sync/checkpoint boundaries)

A raising subscriber must never abort the database operation that
emitted the event: ``emit`` isolates each callback, collects the
exception on :attr:`TraceHooks.errors` (bounded), and warns once per
(event, callback) pair.
"""

from __future__ import annotations

import warnings
from typing import Callable

Payload = dict
Callback = Callable[[Payload], None]

__all__ = ["TraceHooks"]


class TraceHooks:
    """Per-table set of trace-event subscriber lists."""

    EVENTS = (
        "on_split",
        "on_merge",
        "on_free",
        "on_compact",
        "on_evict",
        "on_page_io",
        "on_overflow_link",
        "on_overflow_hop",
        "on_buffer",
        "on_lock",
        "on_fault",
        "on_big_pair",
        "on_wal",
        "on_commit",
    )

    #: cap on retained subscriber exceptions (oldest dropped first)
    MAX_ERRORS = 64

    __slots__ = EVENTS + ("errors", "_warned", "on_change")

    def __init__(self) -> None:
        for event in self.EVENTS:
            setattr(self, event, [])
        #: (event, exception) pairs from isolated subscriber failures
        self.errors: list[tuple[str, BaseException]] = []
        self._warned: set = set()
        #: optional ``fn(event_name)`` called after every subscribe /
        #: unsubscribe (and once with ``None`` after :meth:`clear`).  The
        #: engine uses it to wire expensive emit plumbing -- e.g. the
        #: storage layer's per-page-I/O callback -- only while someone is
        #: actually listening, so a fully unsubscribed table pays zero
        #: emit-path calls (see docs/PERFORMANCE.md).
        self.on_change: Callable[[str | None], None] | None = None

    def subscribe(self, event: str, fn: Callback) -> Callback:
        """Register ``fn`` for ``event``; returns ``fn`` (decorator-friendly)."""
        self._listeners(event).append(fn)
        if self.on_change is not None:
            self.on_change(event)
        return fn

    def unsubscribe(self, event: str, fn: Callback) -> None:
        self._listeners(event).remove(fn)
        if self.on_change is not None:
            self.on_change(event)

    def emit(self, event: str, payload: Payload) -> None:
        for fn in self._listeners(event):
            try:
                fn(payload)
            except Exception as exc:
                self._record_error(event, fn, exc)

    def _record_error(self, event: str, fn: Callback, exc: Exception) -> None:
        """Isolate a raising subscriber: keep the exception, warn once."""
        self.errors.append((event, exc))
        del self.errors[: -self.MAX_ERRORS]
        key = (event, id(fn))
        if key not in self._warned:
            self._warned.add(key)
            warnings.warn(
                f"trace subscriber {fn!r} for {event!r} raised "
                f"{type(exc).__name__}: {exc}; suppressed (see hooks.errors)",
                RuntimeWarning,
                stacklevel=3,
            )

    def clear(self) -> None:
        for event in self.EVENTS:
            getattr(self, event).clear()
        self.errors.clear()
        self._warned.clear()
        if self.on_change is not None:
            self.on_change(None)

    def _listeners(self, event: str) -> list:
        if event not in self.EVENTS:
            raise ValueError(
                f"unknown trace event {event!r}; choose from {self.EVENTS}"
            )
        return getattr(self, event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {e: len(getattr(self, e)) for e in self.EVENTS}
        return f"<TraceHooks {counts}>"
