"""Trace-event hooks: callback lists with cheap empty-path checks.

Emit sites in the engine guard on the per-event subscriber list before
building a payload::

    hooks = self.hooks
    if hooks.on_split:
        hooks.emit("on_split", {"old_bucket": old, "new_bucket": new, ...})

so an unsubscribed event costs one attribute load and one truth test.
Each callback receives a single dict payload; the keys per event are part
of the contract documented in docs/OBSERVABILITY.md:

``on_split``
    ``old_bucket``, ``new_bucket``, ``reason`` ('controlled' |
    'uncontrolled' | 'structural'), ``nkeys``
``on_evict``
    ``key``, ``pageno``, ``dirty``, ``chained``
``on_page_io``
    ``kind`` ('read' | 'write'), ``pageno``, ``nbytes``
``on_overflow_link``
    ``bucket`` (or ``None`` for big-pair/btree data chains), ``oaddr``
"""

from __future__ import annotations

from typing import Callable

Payload = dict
Callback = Callable[[Payload], None]

__all__ = ["TraceHooks"]


class TraceHooks:
    """Per-table set of trace-event subscriber lists."""

    EVENTS = ("on_split", "on_evict", "on_page_io", "on_overflow_link")

    __slots__ = EVENTS

    def __init__(self) -> None:
        for event in self.EVENTS:
            setattr(self, event, [])

    def subscribe(self, event: str, fn: Callback) -> Callback:
        """Register ``fn`` for ``event``; returns ``fn`` (decorator-friendly)."""
        self._listeners(event).append(fn)
        return fn

    def unsubscribe(self, event: str, fn: Callback) -> None:
        self._listeners(event).remove(fn)

    def emit(self, event: str, payload: Payload) -> None:
        for fn in self._listeners(event):
            fn(payload)

    def clear(self) -> None:
        for event in self.EVENTS:
            getattr(self, event).clear()

    def _listeners(self, event: str) -> list:
        if event not in self.EVENTS:
            raise ValueError(
                f"unknown trace event {event!r}; choose from {self.EVENTS}"
            )
        return getattr(self, event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {e: len(getattr(self, e)) for e in self.EVENTS}
        return f"<TraceHooks {counts}>"
