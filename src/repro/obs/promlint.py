"""A strict parser/linter for the Prometheus text exposition format.

``/metrics`` output that *looks* plausible can still be unscrapeable --
a stray brace, an unescaped quote in a label value, a duplicate family
declaration -- and nothing in a curl-and-grep smoke test notices.  This
module parses the exposition line by line against the format rules
(https://prometheus.io/docs/instrumenting/exposition_formats/) and
returns every violation, so CI can fail on malformed output instead of
shipping it to a real scraper:

- metric and label names must match the spec grammars;
- label values must be correctly quoted and escaped;
- sample values must be valid floats (``+Inf``/``-Inf``/``NaN`` ok);
- at most one ``# TYPE`` per family, declared *before* its samples;
- ``TYPE``/``HELP`` lines must name a valid type / be well-formed;
- summary families may add ``_sum``/``_count`` and ``quantile`` labels;
- no duplicate samples (same name + same label set);
- the exposition must end with a newline.

``lint(text)`` returns a list of ``"line N: problem"`` strings (empty =
clean); ``python -m repro.tools promlint`` is the CLI (reads a file or
stdin), used by the CI serve job against a live ``/metrics``.
"""

from __future__ import annotations

import re

__all__ = ["lint"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_TYPES = frozenset(
    ("counter", "gauge", "histogram", "summary", "untyped", "info", "stateset")
)
#: sample-name suffixes each complex type may add to its family name
_FAMILY_SUFFIXES = {
    "summary": ("", "_sum", "_count"),
    "histogram": ("", "_bucket", "_sum", "_count"),
}


def _parse_labels(text: str, lineno: int, errors: list[str]) -> str | None:
    """Validate one ``{...}`` label block; returns the canonical label
    string (for duplicate detection) or None after reporting errors."""
    pairs = []
    i = 0
    n = len(text)
    while True:
        while i < n and text[i] in " \t":
            i += 1
        if i >= n:
            break
        m = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", text[i:])
        if not m:
            errors.append(f"line {lineno}: bad label name at {text[i:]!r}")
            return None
        name = m.group(0)
        i += len(name)
        if i >= n or text[i] != "=":
            errors.append(f"line {lineno}: expected '=' after label {name!r}")
            return None
        i += 1
        if i >= n or text[i] != '"':
            errors.append(f"line {lineno}: label {name!r} value must be double-quoted")
            return None
        i += 1
        value_chars = []
        while i < n:
            ch = text[i]
            if ch == "\\":
                if i + 1 >= n or text[i + 1] not in ('"', "\\", "n"):
                    errors.append(
                        f"line {lineno}: bad escape in label {name!r} value"
                    )
                    return None
                value_chars.append(text[i : i + 2])
                i += 2
                continue
            if ch == '"':
                break
            if ch == "\n":
                errors.append(f"line {lineno}: unescaped newline in label value")
                return None
            value_chars.append(ch)
            i += 1
        else:
            errors.append(f"line {lineno}: unterminated label value for {name!r}")
            return None
        i += 1  # closing quote
        pairs.append((name, "".join(value_chars)))
        while i < n and text[i] in " \t":
            i += 1
        if i < n and text[i] == ",":
            i += 1
            continue
        if i < n:
            errors.append(f"line {lineno}: expected ',' or '}}' in labels, got {text[i:]!r}")
            return None
    names = [p[0] for p in pairs]
    if len(names) != len(set(names)):
        errors.append(f"line {lineno}: duplicate label name")
        return None
    return ",".join(f'{k}="{v}"' for k, v in sorted(pairs))


def _valid_value(token: str) -> bool:
    if token in ("+Inf", "-Inf", "Inf", "NaN", "nan"):
        return True
    try:
        float(token)
    except ValueError:
        return False
    return True


def _family_of(sample_name: str, types: dict[str, str]) -> str | None:
    """The declared family a sample belongs to, honoring the suffixes
    its type permits (``x_sum`` belongs to summary ``x``)."""
    if sample_name in types:
        return sample_name
    for family, ftype in types.items():
        for suffix in _FAMILY_SUFFIXES.get(ftype, ()):
            if suffix and sample_name == family + suffix:
                return family
    return None


def lint(text: str) -> list[str]:
    """Parse ``text`` as Prometheus exposition; return every violation."""
    errors: list[str] = []
    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    types: dict[str, str] = {}
    sampled: set[str] = set()  # families that already emitted samples
    seen_samples: set[tuple[str, str]] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not _METRIC_NAME.match(parts[2]):
                    errors.append(f"line {lineno}: malformed # {parts[1]} line")
                    continue
                name = parts[2]
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                        errors.append(
                            f"line {lineno}: bad TYPE for {name!r}: "
                            f"{parts[3] if len(parts) == 4 else '(missing)'}"
                        )
                        continue
                    if name in types:
                        errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
                        continue
                    if name in sampled:
                        errors.append(
                            f"line {lineno}: TYPE for {name!r} after its samples"
                        )
                        continue
                    types[name] = parts[3]
            continue
        # sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if not m:
            errors.append(f"line {lineno}: bad metric name: {line.split()[0]!r}")
            continue
        name = m.group(1)
        rest = line[len(name) :]
        labels = ""
        if rest.startswith("{"):
            end = rest.find("}")
            if end < 0:
                errors.append(f"line {lineno}: unterminated label block")
                continue
            canon = _parse_labels(rest[1:end], lineno, errors)
            if canon is None:
                continue
            labels = canon
            rest = rest[end + 1 :]
        if not rest.startswith(" ") and not rest.startswith("\t"):
            errors.append(f"line {lineno}: missing space before value")
            continue
        tokens = rest.split()
        if not tokens or len(tokens) > 2:
            errors.append(f"line {lineno}: expected 'value [timestamp]', got {rest!r}")
            continue
        if not _valid_value(tokens[0]):
            errors.append(f"line {lineno}: invalid sample value {tokens[0]!r}")
            continue
        if len(tokens) == 2 and not re.match(r"^-?\d+$", tokens[1]):
            errors.append(f"line {lineno}: invalid timestamp {tokens[1]!r}")
            continue
        family = _family_of(name, types)
        if family is not None:
            sampled.add(family)
        sampled.add(name)
        key = (name, labels)
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{{{labels}}}")
            continue
        seen_samples.add(key)
    return errors
