"""Exporters: flight-recorder records and metric trees to standard formats.

Three renderings, three audiences:

- :func:`to_chrome_trace` -- the Trace Event Format consumed by
  ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): drop the
  JSON in and the span tree renders as a flame chart, one track per
  thread.  Spans become ``"ph": "X"`` complete events, instants become
  ``"ph": "i"`` thread-scoped markers; timestamps and durations are in
  integer-ish microseconds as the format requires.
- :func:`to_prometheus` -- the text exposition format, rendered from a
  ``db.stat()`` metric tree.  Nested scope names become metric-name
  segments (``ops.counts.gets`` -> ``repro_ops_counts_gets``);
  histogram snapshots become Prometheus summaries (quantile-labelled
  samples plus ``_sum``/``_count``).
- :func:`to_ndjson` -- one JSON object per line, for grep/jq and
  structured-log shippers.

All three are pure functions over plain dicts -- no sockets, no global
state -- so tests assert on their output directly and the CLI just
writes the strings to files.
"""

from __future__ import annotations

import json
import math
import re

__all__ = ["to_chrome_trace", "merge_chrome_traces", "to_prometheus", "to_ndjson"]

#: keys that identify a Histogram.snapshot() dict among stat() leaves
_HIST_KEYS = {"count", "total", "mean", "min", "max", "p50", "p95", "p99"}

#: snapshot percentile key -> Prometheus quantile label
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def to_chrome_trace(events: list[dict], pid: int = 0) -> list[dict]:
    """Convert flight-recorder records to Chrome trace-event dicts.

    Returns the JSON Array form of the format (a plain list of event
    objects) -- both chrome://tracing and Perfetto accept it directly.
    """
    out = []
    for rec in events:
        args = dict(rec.get("attrs") or {})
        parent = rec.get("parent")
        if parent is not None:
            args["parent_span"] = parent
        args["span_id"] = rec.get("id")
        if rec.get("links"):
            # extra causal edges beyond the parent (coalesced batches,
            # shared group-commit fsyncs)
            args["links"] = list(rec["links"])
        base = {
            "name": rec.get("name", "?"),
            "cat": rec.get("cat", "event"),
            "pid": pid,
            "tid": rec.get("tid", 0),
            "ts": round(rec.get("ts", 0.0) * 1e6, 3),
            "args": _jsonable(args),
        }
        if rec.get("type") == "span":
            base["ph"] = "X"
            base["dur"] = round(rec.get("dur", 0.0) * 1e6, 3)
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        out.append(base)
    return out


def merge_chrome_traces(sources: list[dict]) -> list[dict]:
    """Merge several recorders' records into ONE Chrome trace with
    cross-process flow arrows.

    Each source is ``{"records": [...], "epoch": perf_counter_origin,
    "label": "client"|"server"|...}``.  All tracers in one process share
    the ``perf_counter`` clock, so rebasing every source onto the
    earliest epoch lines their timelines up exactly; each source becomes
    its own ``pid`` with a ``process_name`` metadata event.

    Wire-level causality renders as flow events: a span whose attrs
    carry a ``trace_id`` *without* ``remote_span`` is a client-side
    request span and emits a flow **start** (``ph: "s"``) keyed
    ``trace_id:span_id``; a span carrying ``remote_span`` is the
    server-side continuation and emits the flow **finish** (``ph: "f"``)
    keyed ``trace_id:remote_span`` -- the ids match, so Perfetto draws
    the arrow from the client span to the server span it became.
    """
    if not sources:
        return []
    base = min(src["epoch"] for src in sources)
    out: list[dict] = []
    for pid, src in enumerate(sources):
        label = src.get("label") or f"source{pid}"
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
        shift = src["epoch"] - base
        records = src["records"]
        events = to_chrome_trace(records, pid=pid)
        for rec, ev in zip(records, events):
            ev["ts"] = round(ev["ts"] + shift * 1e6, 3)
            out.append(ev)
            if rec.get("type") != "span":
                continue
            attrs = rec.get("attrs") or {}
            trace_id = attrs.get("trace_id")
            if not trace_id:
                continue
            # bind flow endpoints mid-span so they land inside the slice
            mid_us = round(
                (rec.get("ts", 0.0) + shift + rec.get("dur", 0.0) / 2) * 1e6, 3
            )
            flow = {
                "cat": "request",
                "name": "request",
                "pid": pid,
                "tid": rec.get("tid", 0),
                "ts": mid_us,
            }
            if "remote_span" in attrs:
                flow["ph"] = "f"
                flow["bp"] = "e"  # bind to the enclosing slice
                flow["id"] = f"{trace_id}:{attrs['remote_span']}"
            else:
                flow["ph"] = "s"
                flow["id"] = f"{trace_id}:{rec.get('id')}"
            out.append(flow)
    return out


def _jsonable(obj):
    """Coerce hook payload values (bytes keys, tuples) to JSON-safe types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (bytes, bytearray)):
        return obj.decode("utf-8", "backslashreplace")
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    return repr(obj)


_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(parts: list[str]) -> str:
    name = "_".join(_NAME_BAD.sub("_", p) for p in parts if p)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _is_histogram(d: dict) -> bool:
    return isinstance(d, dict) and _HIST_KEYS.issubset(d.keys())


def to_prometheus(stat: dict, prefix: str = "repro") -> str:
    """Render a ``db.stat()`` tree as Prometheus text exposition format."""
    lines: list[str] = []
    infos: list[str] = []

    def walk(node, parts):
        if _is_histogram(node):
            # Prometheus wants base units: millisecond histograms (the
            # serve layer's request latencies) are scaled to seconds;
            # dimensionless ones (batch sizes) keep their unit as suffix.
            unit = node.get("unit", "seconds")
            if unit in ("ms", "milliseconds"):
                scale, suffix = 1e-3, "_seconds"
            elif unit == "seconds":
                scale, suffix = 1.0, "_seconds"
            else:
                scale, suffix = 1.0, "_" + _NAME_BAD.sub("_", unit)
            name = _metric_name(parts) + suffix

            def scaled(v, _s=scale):
                return v if _s == 1.0 else v * _s

            lines.append(f"# TYPE {name} summary")
            for pkey, q in _QUANTILES:
                lines.append(f'{name}{{quantile="{q}"}} {_fmt(scaled(node[pkey]))}')
            lines.append(f"{name}_sum {_fmt(scaled(node['total']))}")
            lines.append(f"{name}_count {_fmt(node['count'])}")
            return
        if isinstance(node, dict):
            for key in node:
                walk(node[key], parts + [str(key)])
            return
        name = _metric_name(parts)
        if isinstance(node, bool):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {int(node)}")
        elif isinstance(node, (int, float)):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(node)}")
        else:
            # string leaves (e.g. type='hash') become an info-style label
            label = _NAME_BAD.sub("_", parts[-1]) if parts else "value"
            infos.append(f'{label}="{node}"')

    walk(stat, [prefix])
    if infos:
        name = _metric_name([prefix, "info"])
        lines.insert(0, f"{name}{{{','.join(infos)}}} 1")
        lines.insert(0, f"# TYPE {name} gauge")
    return "\n".join(lines) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        if not math.isfinite(v):
            return "NaN"
        return repr(round(v, 9))
    return str(v)


def to_ndjson(events: list[dict]) -> str:
    """One flight-recorder record per line, JSON-encoded."""
    return "\n".join(
        json.dumps(_jsonable(rec), separators=(",", ":")) for rec in events
    ) + ("\n" if events else "")
