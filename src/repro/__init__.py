"""repro -- reproduction of "A New Hashing Package for UNIX" (Seltzer &
Yigit, USENIX Winter 1991).

The package that became Berkeley DB's hash access method: linear hashing
with buddy-in-waiting overflow pages, an LRU buffer pool, large key/data
support, and user-selectable hash functions -- working identically on disk
and in memory.  The repository also contains from-scratch implementations
of every system the paper compares against (dbm/ndbm, sdbm, gdbm, System V
hsearch, dynahash) and a benchmark harness regenerating every figure of the
paper's evaluation.

Quickstart::

    import repro

    db = repro.open("example.db", bsize=1024, ffactor=32)
    db["key"] = "value"
    print(db[b"key"])      # b'value'
    print(db.stat()["nkeys"])
    db.close()

    # Sorted keys and cursors via the btree method:
    bt = repro.open("sorted.db", type=repro.DB_BTREE)
    bt.update({"b": "2", "a": "1"})
    with bt.cursor() as cur:
        for key, value in cur:
            ...
    bt.close()

    # Or the byte-level engine directly:
    t = repro.HashTable.create("raw.db", nelem=10_000)
    t.put(b"k", b"v")
    t.close()
"""

from repro.access import DB_BTREE, DB_HASH, DB_RECNO, AccessMethod, Cursor, db_open, open
from repro.core import (
    HASH_FUNCTIONS,
    BadFileError,
    ClosedError,
    HashDB,
    HashError,
    HashFullError,
    HashFunctionMismatchError,
    HashTable,
    InvalidParameterError,
    ReadOnlyError,
    TableStats,
    TransactionError,
    WALCorruptionError,
    get_hash_function,
    suggest_parameters,
)
from repro.core.dbmap import open as hash_open

__version__ = "1.0.0"

__all__ = [
    "HashTable",
    "HashDB",
    "open",
    "hash_open",
    "db_open",
    "AccessMethod",
    "Cursor",
    "DB_HASH",
    "DB_BTREE",
    "DB_RECNO",
    "TableStats",
    "suggest_parameters",
    "HASH_FUNCTIONS",
    "get_hash_function",
    "HashError",
    "BadFileError",
    "HashFullError",
    "HashFunctionMismatchError",
    "InvalidParameterError",
    "ReadOnlyError",
    "ClosedError",
    "TransactionError",
    "WALCorruptionError",
    "__version__",
]
