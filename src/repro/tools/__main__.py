"""CLI entry point: ``python -m repro.tools
{dump,load,stat,check,compact,wal,prof,trace,top} ...``"""

from __future__ import annotations

import argparse
import sys

from repro.core.check import verify_file
from repro.core.table import HashTable
from repro.tools.dump import dump_table, load_table
from repro.tools.stat import format_space, format_stats


def _cmd_dump(args) -> int:
    table = HashTable.open_file(args.file, readonly=True)
    try:
        if args.output == "-":
            count = dump_table(table, sys.stdout)
        else:
            with open(args.output, "w") as out:
                count = dump_table(table, out)
    finally:
        table.close()
    print(f"dumped {count} pairs", file=sys.stderr)
    return 0


def _cmd_load(args) -> int:
    if args.input == "-":
        count = load_table(args.file, sys.stdin)
    else:
        with open(args.input) as stream:
            count = load_table(args.file, stream)
    print(f"loaded {count} pairs into {args.file}", file=sys.stderr)
    return 0


def _cmd_stat(args) -> int:
    kind = _detect_type(args.file)
    if kind == "btree":
        from repro.access.btree import BTree
        from repro.access.btree.stat import format_btree_stats

        tree = BTree.open_file(args.file, readonly=True)
        try:
            if args.space:
                print(_format_btree_space(tree, args.file))
            else:
                print(format_btree_stats(tree))
        finally:
            tree.close()
        return 0
    if kind == "gdbm":
        from repro.baselines.gdbm.gdbm import Gdbm
        from repro.tools.prof import format_metric_tree

        if args.space:
            print("stat --space: gdbm files are not supported", file=sys.stderr)
            return 2
        with Gdbm(args.file, "r") as db:
            print(format_metric_tree(db.stat()))
        return 0
    table = HashTable.open_file(args.file, readonly=True)
    try:
        print(format_space(table) if args.space else format_stats(table))
    finally:
        table.close()
    return 0


def _format_btree_space(tree, path: str) -> str:
    """Space report for a btree file: total pages vs its in-file free
    chain (the btree keeps its own free list, not the pager's)."""
    from repro.access.btree.nodes import NodeView

    free = 0
    pgno = tree.free_head
    while pgno:
        free += 1
        hdr = tree.pool.get(pgno)
        pgno = NodeView(hdr.page).next
    file_pages = tree._file.npages()
    frag = 100.0 * free / file_pages if file_pages else 0.0
    return "\n".join(
        [
            f"space report for {path}",
            f"  {'file_pages':<22} {file_pages}",
            f"  {'file_bytes':<22} {tree._file.size_bytes()}",
            f"  {'free_pages':<22} {free}",
            f"  {'nkeys':<22} {tree.nkeys}",
            f"  {'fragmentation_pct':<22} {frag:.1f}",
        ]
    )


def _cmd_compact(args) -> int:
    kind = _detect_type(args.file)
    if kind == "gdbm":
        print("compact: gdbm files are not supported", file=sys.stderr)
        return 2
    if kind == "btree":
        from repro.access.btree.btree import BTree

        db = BTree.open_file(args.file)
    else:
        db = HashTable.open_file(args.file)
    try:
        report = db.compact()
    finally:
        db.close()
    b, a = report["before"], report["after"]
    print(
        f"compacted {args.file}: {b['pages']} -> {a['pages']} pages "
        f"({b['bytes']} -> {a['bytes']} bytes), "
        f"{report['pages_reclaimed']} page(s) reclaimed, "
        f"{report['nkeys']} keys"
    )
    return 0


def _detect_type(path: str) -> str:
    """Sniff the file magic: 'hash', 'btree' or 'gdbm'."""
    import struct

    with open(path, "rb") as fh:
        raw = fh.read(4)
    if len(raw) < 4:
        return "hash"  # let the hash verifier produce the error
    magic = struct.unpack(">I", raw)[0]
    from repro.access.btree.btree import BTREE_MAGIC
    from repro.baselines.gdbm.gdbm import GDBM_MAGIC

    if magic == BTREE_MAGIC:
        return "btree"
    if magic == GDBM_MAGIC:
        return "gdbm"
    return "hash"


def _cmd_check(args) -> int:
    kind = _detect_type(args.file)
    if kind == "btree":
        from repro.access.btree.check import verify_btree_file

        report = verify_btree_file(args.file)
        print(report.render())
        return 0 if report.ok else 1
    if kind == "gdbm":
        from repro.baselines.gdbm.gdbm import Gdbm

        with Gdbm(args.file, "r") as db:
            problems = db.check()
        for p in problems:
            print(p)
        print(f"gdbm check: {'ok' if not problems else f'{len(problems)} problem(s)'}")
        return 0 if not problems else 1
    report = verify_file(args.file)
    print(report.render())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools", description="hash-table file utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dump", help="dump a table to text")
    p.add_argument("file")
    p.add_argument("-o", "--output", default="-", help="output file (default stdout)")
    p.set_defaults(fn=_cmd_dump)

    p = sub.add_parser("load", help="create a table from a dump")
    p.add_argument("file", help="table file to create")
    p.add_argument("-i", "--input", default="-", help="dump file (default stdin)")
    p.set_defaults(fn=_cmd_load)

    p = sub.add_parser("stat", help="print table statistics")
    p.add_argument("file")
    p.add_argument(
        "--space",
        action="store_true",
        help="space/fragmentation report (pages, freelist, overflow, fill)",
    )
    p.set_defaults(fn=_cmd_stat)

    p = sub.add_parser("check", help="verify table structure")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "compact", help="rewrite a database into minimal form in place"
    )
    p.add_argument("file")
    p.set_defaults(fn=_cmd_compact)

    from repro.tools.prof import add_prof_parser
    from repro.tools.serve_tools import add_serve_tool_parsers
    from repro.tools.trace import add_trace_parsers
    from repro.tools.waldump import add_wal_parser

    add_prof_parser(sub)
    add_trace_parsers(sub)
    add_wal_parser(sub)
    add_serve_tool_parsers(sub)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
