"""Table statistics (hashstat).

Reports the geometry and distribution figures an operator tunes with:
fill ratio vs fill factor, overflow-chain histogram, page utilization --
the observable counterparts of the paper's Figure 5 parameters.
"""

from __future__ import annotations

from repro.core.constants import NO_OADDR
from repro.core.pages import PageView
from repro.core.table import HashTable


def collect_stats(table: HashTable) -> dict:
    """Gather statistics from an open table (read-only walk)."""
    h = table.header
    chain_histogram: dict[int, int] = {}
    used_bytes = 0
    pages = 0
    big_pairs = 0
    for bucket in range(h.max_bucket + 1):
        hdr = table._fault(("B", bucket))
        view = PageView(hdr.page)
        chain = 0
        while True:
            pages += 1
            used_bytes += view.used_bytes()
            for _i, big in view.iter_slots():
                if big:
                    big_pairs += 1
            nxt = view.ovfl_addr
            if nxt == NO_OADDR:
                break
            chain += 1
            hdr = table._fault(("O", nxt))
            view = PageView(hdr.page)
        chain_histogram[chain] = chain_histogram.get(chain, 0) + 1
    return {
        "path": getattr(table._file, "path", None),
        "bsize": h.bsize,
        "ffactor": h.ffactor,
        "nkeys": h.nkeys,
        "buckets": h.max_bucket + 1,
        "fill_ratio": round(h.nkeys / (h.max_bucket + 1), 2),
        "ovfl_point": h.ovfl_point,
        "overflow_slots": h.spares[h.ovfl_point],
        "big_pairs": big_pairs,
        "chain_histogram": dict(sorted(chain_histogram.items())),
        "page_utilization": round(used_bytes / (pages * h.bsize), 3) if pages else 0.0,
        "pool_hits": table.pool.hits,
        "pool_misses": table.pool.misses,
    }


def format_space(table: HashTable) -> str:
    """Human-readable space/fragmentation report (``stat --space``)."""
    space = table.stat()["space"]
    path = getattr(table._file, "path", None)
    ovfl = space["overflow_pages"]
    lines = [
        f"space report for {path or '<memory>'}",
        f"  {'file_pages':<22} {space['file_pages']}",
        f"  {'file_bytes':<22} {space['file_bytes']}",
        f"  {'header_pages':<22} {space['header_pages']}",
        f"  {'bucket_pages':<22} {space['bucket_pages']}",
        f"  {'overflow_allocated':<22} {ovfl['allocated']}",
        f"  {'overflow_in_use':<22} {ovfl['in_use']}",
        f"  {'freelist_pages':<22} {space['freelist_pages']}",
        f"  {'fill_factor':<22} {space['fill_factor']:.3f}",
        f"  {'fragmentation_pct':<22} {space['fragmentation_pct']:.1f}",
    ]
    return "\n".join(lines)


def format_stats(table: HashTable) -> str:
    """Human-readable hashstat output."""
    stats = collect_stats(table)
    lines = [f"hash table statistics for {stats['path'] or '<memory>'}"]
    order = [
        "bsize",
        "ffactor",
        "nkeys",
        "buckets",
        "fill_ratio",
        "ovfl_point",
        "overflow_slots",
        "big_pairs",
        "page_utilization",
        "pool_hits",
        "pool_misses",
    ]
    for key in order:
        lines.append(f"  {key:<18} {stats[key]}")
    lines.append("  overflow-chain length histogram (length: buckets):")
    for length, count in stats["chain_histogram"].items():
        lines.append(f"    {length:>3}: {count}")
    return "\n".join(lines)
