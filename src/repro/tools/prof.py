"""``repro.tools prof``: replay a workload and print the metric tree.

Runs a synthetic get/put/delete/scan workload against an in-memory
database (or a read-only scan+get replay of an existing file) with
observability enabled, then renders the nested ``db.stat()`` dict --
operation counts, latency quantiles, buffer-pool behaviour and page
I/O -- as an indented tree or JSON.
"""

from __future__ import annotations

import json

from repro.access.api import DB_BTREE, DB_HASH, DB_RECNO
from repro.access.db import db_open
from repro.access.recno.recno import encode_recno


def _workload_keys(type_: str, n: int) -> list[bytes]:
    if type_ == DB_RECNO:
        return [encode_recno(i + 1) for i in range(n)]
    return [f"key-{i:08d}".encode() for i in range(n)]


def run_synthetic(type_: str = DB_HASH, n: int = 5000, **params) -> dict:
    """n puts, n gets, a full cursor scan and n//4 deletes against a fresh
    in-memory database; returns its ``stat()`` dict."""
    db = db_open(None, type_, "c", **params)
    try:
        keys = _workload_keys(type_, n)
        for i, k in enumerate(keys):
            db.put(k, f"value-{i:08d}".encode())
        for k in keys:
            db.get(k)
        cur = db.cursor()
        item = cur.first()
        while item is not None:
            item = cur.next()
        # delete from the end: cheap for recno (no renumbering), neutral
        # for the others
        for k in reversed(keys[-(n // 4) :]):
            db.delete(k)
        return db.stat()
    finally:
        db.close()


def run_replay(path: str, type_: str) -> dict:
    """Read-only replay against an existing file: one full cursor scan,
    then a point ``get`` of every key; returns ``stat()``."""
    if type_ == "gdbm":
        from repro.baselines.gdbm.gdbm import Gdbm

        with Gdbm(path, "r") as gdb:
            for k in list(gdb.keys()):
                gdb.fetch(k)
            return gdb.stat()
    db = db_open(path, type_, "r")
    try:
        keys = []
        cur = db.cursor()
        item = cur.first()
        while item is not None:
            keys.append(item[0])
            item = cur.next()
        for k in keys:
            db.get(k)
        return db.stat()
    finally:
        db.close()


def _fmt_value(v) -> str:
    if isinstance(v, bool) or not isinstance(v, float):
        return str(v)
    if v == 0:
        return "0"
    if abs(v) < 0.001:
        return f"{v * 1e6:.3f}u"  # microseconds for the latency entries
    if abs(v) < 1.0:
        return f"{v * 1e3:.3f}m"
    return f"{v:.6g}"


def format_metric_tree(stat: dict, indent: int = 0) -> str:
    """Render a ``stat()`` dict as an indented key: value tree."""
    lines = []
    pad = "  " * indent
    for k, v in stat.items():
        if isinstance(v, dict):
            lines.append(f"{pad}{k}:")
            lines.append(format_metric_tree(v, indent + 1))
        else:
            lines.append(f"{pad}{k}: {_fmt_value(v)}")
    return "\n".join(lines)


def cmd_prof(args) -> int:
    if args.file:
        from repro.tools.__main__ import _detect_type

        try:
            type_ = _detect_type(args.file)
        except FileNotFoundError:
            import sys

            print(f"prof: no such file: {args.file}", file=sys.stderr)
            return 1
        stat = run_replay(args.file, type_)
    else:
        stat = run_synthetic(args.type, args.n)
    if args.json:
        print(json.dumps(stat, indent=2, sort_keys=True))
    else:
        print(format_metric_tree(stat))
    return 0


def add_prof_parser(sub) -> None:
    p = sub.add_parser(
        "prof", help="replay a workload and print the metric tree"
    )
    p.add_argument(
        "--type",
        choices=(DB_HASH, DB_BTREE, DB_RECNO),
        default=DB_HASH,
        help="access method for the synthetic workload (default hash)",
    )
    p.add_argument(
        "-n", type=int, default=5000, help="synthetic workload size (default 5000)"
    )
    p.add_argument(
        "--file",
        default=None,
        help="replay read-only against this existing database instead",
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of a tree")
    p.set_defaults(fn=cmd_prof)
