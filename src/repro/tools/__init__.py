"""Command-line utilities for hash-table files.

``python -m repro.tools <command>``:

- ``dump``  -- write a table's pairs in a db_dump-style text format;
- ``load``  -- rebuild a table from a dump;
- ``stat``  -- geometry, counters and distribution statistics;
- ``check`` -- structural verification (:mod:`repro.core.check`).
"""

from repro.tools.dump import dump_table, load_table
from repro.tools.stat import format_stats

__all__ = ["dump_table", "load_table", "format_stats"]
