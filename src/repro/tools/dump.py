"""Dump/load hash tables in a db_dump(1)-style text format.

Format::

    VERSION=1
    format=bytevalue
    type=hash
    bsize=256
    ffactor=8
    HEADER=END
     <hex key>
     <hex data>
     ...
    DATA=END

Keys/data are hex-encoded one per line (leading space), alternating, as
db_dump produced; ``load_table`` recreates a table from such a stream.
"""

from __future__ import annotations

import os
from typing import IO, Iterator

from repro.core.table import HashTable

_FORMAT_VERSION = 1


def dump_table(table: HashTable, out: IO[str]) -> int:
    """Write every pair of ``table`` to ``out``; returns the pair count."""
    out.write(f"VERSION={_FORMAT_VERSION}\n")
    out.write("format=bytevalue\n")
    out.write("type=hash\n")
    out.write(f"bsize={table.header.bsize}\n")
    out.write(f"ffactor={table.header.ffactor}\n")
    out.write("HEADER=END\n")
    count = 0
    for key, data in table.items():
        out.write(f" {key.hex()}\n")
        out.write(f" {data.hex()}\n")
        count += 1
    out.write("DATA=END\n")
    return count


def _parse_dump(stream: IO[str]) -> tuple[dict, Iterator[tuple[bytes, bytes]]]:
    meta: dict[str, str] = {}
    line = stream.readline()
    while line:
        line = line.rstrip("\n")
        if line == "HEADER=END":
            break
        if "=" in line:
            k, _eq, v = line.partition("=")
            meta[k] = v
        line = stream.readline()
    else:
        raise ValueError("dump stream missing HEADER=END")
    if meta.get("type") != "hash":
        raise ValueError(f"dump is of type {meta.get('type')!r}, expected 'hash'")

    def pairs() -> Iterator[tuple[bytes, bytes]]:
        while True:
            kline = stream.readline()
            if not kline:
                raise ValueError("dump stream missing DATA=END")
            kline = kline.rstrip("\n")
            if kline == "DATA=END":
                return
            dline = stream.readline().rstrip("\n")
            if dline == "DATA=END":
                raise ValueError("dump stream has a key without data")
            yield bytes.fromhex(kline.strip()), bytes.fromhex(dline.strip())

    return meta, pairs()


def load_table(path: str | os.PathLike, stream: IO[str], **create_kwargs) -> int:
    """Create a fresh table at ``path`` from a dump; returns pairs loaded.

    Geometry recorded in the dump is used unless overridden by
    ``create_kwargs``.
    """
    meta, pairs = _parse_dump(stream)
    kwargs = dict(create_kwargs)
    if "bsize" not in kwargs and "bsize" in meta:
        kwargs["bsize"] = int(meta["bsize"])
    if "ffactor" not in kwargs and "ffactor" in meta:
        kwargs["ffactor"] = int(meta["ffactor"])
    table = HashTable.create(path, **kwargs)
    count = 0
    try:
        for key, data in pairs:
            table.put(key, data)
            count += 1
    finally:
        table.close()
    return count
