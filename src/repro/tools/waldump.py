"""Inspect write-ahead logs: ``python -m repro.tools wal <file> [--verify]``.

Scans a ``.wal`` sidecar (or the table file next to it) with the same
torn-tail-tolerant, CRC-checking walk recovery uses, and prints one line
per valid frame plus a summary.  ``--verify`` suppresses the per-frame
listing and sets the exit status: 0 when every byte of the log is a valid
frame, 1 when a torn or corrupt tail was found (recovery would silently
ignore it -- this command is how you *see* that).
"""

from __future__ import annotations

import os
import sys

from repro.core.errors import WALCorruptionError
from repro.core.wal import (
    FRAME_HDR_SIZE,
    FRAME_NAMES,
    FT_CHECKPOINT,
    FT_COMMIT,
    FT_PAGE,
    FT_ROLLBACK,
    WAL_HDR_SIZE,
    WAL_MAGIC,
    WAL_VERSION,
    WriteAheadLog,
    read_wal_header,
    wal_path_for,
)
from repro.storage.bytefile import ByteFile

__all__ = ["scan_wal", "format_wal_report", "add_wal_parser"]


def _resolve_wal_path(path: str) -> str:
    """Accept either the table file or its ``.wal`` sidecar."""
    path = os.fspath(path)
    if path.endswith(".wal") and os.path.exists(path):
        return path
    return wal_path_for(path)


def scan_wal(path: str) -> dict:
    """Scan a log and return its structure as one report dict.

    Keys: ``path``, ``pagesize``, ``frames`` (list of
    ``(lsn, txid, type-name, pageno, length, offset)``), ``counts`` per
    frame type, ``committed`` / ``uncommitted`` txid lists, ``valid_bytes``
    (end of the trusted prefix), ``size`` (actual file size) and ``clean``
    (True when the whole file is valid frames).
    """
    wpath = _resolve_wal_path(path)
    store = ByteFile(wpath, readonly=True)
    try:
        magic, version, pagesize = read_wal_header(store)
        if magic != WAL_MAGIC:
            raise WALCorruptionError(f"{wpath}: bad WAL magic {magic:#x}")
        if version != WAL_VERSION:
            raise WALCorruptionError(f"{wpath}: unsupported WAL version {version}")
        wal = WriteAheadLog(store, pagesize, fresh=False, scan_existing=False)
        frames = []
        counts: dict = {}
        pending: dict = {}
        committed: list = []
        valid_end = WAL_HDR_SIZE
        for f in wal.scan(verify=True):
            name = FRAME_NAMES[f.ftype]
            frames.append((f.lsn, f.txid, name, f.pageno, f.length, f.offset))
            counts[name] = counts.get(name, 0) + 1
            valid_end = f.offset + FRAME_HDR_SIZE + f.length
            if f.ftype == FT_PAGE:
                pending.setdefault(f.txid, set()).add(f.pageno)
            elif f.ftype in (FT_COMMIT, FT_ROLLBACK):
                pending.pop(f.txid, None)
                if f.ftype == FT_COMMIT:
                    committed.append(f.txid)
            elif f.ftype == FT_CHECKPOINT:
                pending.clear()
                committed.clear()
        size = store.size()
        return {
            "path": wpath,
            "pagesize": pagesize,
            "frames": frames,
            "counts": counts,
            "committed": committed,
            "uncommitted": sorted(pending),
            "valid_bytes": valid_end,
            "size": size,
            "clean": valid_end == size,
        }
    finally:
        store.close()


def format_wal_report(report: dict, *, frames: bool = True) -> str:
    """Render a :func:`scan_wal` report for the terminal."""
    lines = [f"{report['path']}: pagesize {report['pagesize']}"]
    if frames:
        for lsn, txid, name, pageno, length, offset in report["frames"]:
            detail = f" page {pageno}" if name == "PAGE" else ""
            lines.append(
                f"  lsn {lsn:6d}  txid {txid:4d}  {name:<10s}{detail}"
                f"  ({length} bytes @ {offset})"
            )
    counts = ", ".join(f"{n} {c}" for n, c in sorted(report["counts"].items()))
    lines.append(f"frames: {len(report['frames'])} ({counts or 'none'})")
    if report["committed"]:
        lines.append(
            f"committed since checkpoint: txids {report['committed']}"
        )
    if report["uncommitted"]:
        lines.append(
            f"uncommitted (replay ignores): txids {report['uncommitted']}"
        )
    if report["clean"]:
        lines.append(f"log is clean: {report['valid_bytes']} bytes, all valid")
    else:
        trailing = report["size"] - report["valid_bytes"]
        lines.append(
            f"TORN/CORRUPT TAIL at offset {report['valid_bytes']}: "
            f"{trailing} trailing byte(s) fail validation (recovery "
            f"stops at the last valid frame)"
        )
    return "\n".join(lines)


def _cmd_wal(args) -> int:
    try:
        report = scan_wal(args.file)
    except FileNotFoundError:
        print(f"no write-ahead log at {_resolve_wal_path(args.file)}", file=sys.stderr)
        return 1
    except WALCorruptionError as exc:
        print(f"not a WAL: {exc}", file=sys.stderr)
        return 1
    print(format_wal_report(report, frames=not args.verify))
    if args.verify:
        return 0 if report["clean"] else 1
    return 0


def add_wal_parser(sub) -> None:
    p = sub.add_parser(
        "wal", help="dump or verify a table's write-ahead log"
    )
    p.add_argument("file", help="table file or its .wal sidecar")
    p.add_argument(
        "--verify",
        action="store_true",
        help="summary only; exit 1 if the log has a torn or corrupt tail",
    )
    p.set_defaults(fn=_cmd_wal)
