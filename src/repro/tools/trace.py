"""``repro.tools trace`` / ``top``: capture and inspect span traces.

``trace`` runs a workload (synthetic, or a read-only replay of an
existing file) with span tracing enabled and writes the flight-recorder
contents as a Chrome trace (``--out``), the final ``stat()`` tree as
Prometheus text exposition (``--prom-out``), and/or the raw records as
NDJSON (``--ndjson-out``).  The Chrome file drops straight into
``chrome://tracing`` or Perfetto.

``top`` renders a flight-recorder dump (the ``*.flight.json`` a crash
leaves behind, an explicit ``dump()``, or ``trace --ndjson-out``) as an
aggregated per-operation table -- count, total, mean, max, errors --
plus the child-event tallies.  ``--follow`` re-reads and re-renders, so
it works as a crude live view over a dump a long-running process
refreshes.
"""

from __future__ import annotations

import json
import sys
import time

from repro.access.api import DB_BTREE, DB_HASH, DB_RECNO
from repro.access.db import db_open
from repro.obs.export import to_chrome_trace, to_ndjson, to_prometheus

WORKLOADS = ("generic", "dictionary")


def _workload_pairs(workload: str, n: int, type_: str) -> list[tuple[bytes, bytes]]:
    if workload == "dictionary":
        from repro.workloads.dictionary import dictionary_pairs

        pairs = list(dictionary_pairs(n))
    else:
        pairs = [
            (f"key-{i:08d}".encode(), f"value-{i:08d}".encode()) for i in range(n)
        ]
    if type_ == DB_RECNO:
        from repro.access.recno.recno import encode_recno

        pairs = [(encode_recno(i + 1), v) for i, (_k, v) in enumerate(pairs)]
    return pairs


def run_traced_synthetic(
    type_: str, n: int, workload: str, ring: int | None
) -> tuple[list[dict], dict]:
    """Puts, gets, a cursor scan and a sync against a fresh in-memory
    database with tracing on; returns ``(records, stat())``."""
    t_open = time.perf_counter()
    db = db_open(None, type_, "c")
    try:
        tracer = db.enable_tracing(ring_capacity=ring)
        # Backfill the construction interval as the trace's 'open' root
        # span (same re-anchoring trick as tracing=True at open).
        tracer.epoch = t_open
        tracer.complete(
            "open", t_open, time.perf_counter() - t_open, "op", {"how": "synthetic"}
        )
        pairs = _workload_pairs(workload, n, type_)
        for k, v in pairs:
            db.put(k, v)
        for k, _v in pairs:
            db.get(k)
        cur = db.cursor()
        item = cur.first()
        while item is not None:
            item = cur.next()
        db.sync()
        return db.flight_recorder.events(), db.stat()
    finally:
        db.close()


def run_traced_replay(path: str, ring: int | None) -> tuple[list[dict], dict]:
    """Read-only traced replay of an existing file: a full cursor scan,
    then a point ``get`` of every key."""
    from repro.tools.__main__ import _detect_type

    type_ = _detect_type(path)
    if type_ == "gdbm":
        from repro.baselines.gdbm.gdbm import Gdbm

        t_open = time.perf_counter()
        with Gdbm(path, "r") as gdb:
            tracer = gdb.enable_tracing(ring_capacity=ring)
            tracer.epoch = t_open
            tracer.complete(
                "open", t_open, time.perf_counter() - t_open, "op", {"how": "replay"}
            )
            for k in list(gdb.keys()):
                gdb.fetch(k)
            return gdb.flight_recorder.events(), gdb.stat()
    t_open = time.perf_counter()
    db = db_open(path, type_, "r")
    try:
        tracer = db.enable_tracing(ring_capacity=ring)
        tracer.epoch = t_open
        tracer.complete(
            "open", t_open, time.perf_counter() - t_open, "op", {"how": "replay"}
        )
        keys = []
        cur = db.cursor()
        item = cur.first()
        while item is not None:
            keys.append(item[0])
            item = cur.next()
        for k in keys:
            db.get(k)
        return db.flight_recorder.events(), db.stat()
    finally:
        db.close()


def cmd_trace(args) -> int:
    ring = None if args.ring == 0 else args.ring
    if args.file:
        try:
            records, stat = run_traced_replay(args.file, ring)
        except FileNotFoundError:
            print(f"trace: no such file: {args.file}", file=sys.stderr)
            return 1
    else:
        records, stat = run_traced_synthetic(args.type, args.n, args.workload, ring)
    spans = sum(1 for r in records if r.get("type") == "span")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(to_chrome_trace(records), fh)
            fh.write("\n")
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(to_prometheus(stat))
    if args.ndjson_out:
        with open(args.ndjson_out, "w") as fh:
            fh.write(to_ndjson(records))
    print(
        f"traced {len(records)} records ({spans} spans, "
        f"{len(records) - spans} events)",
        file=sys.stderr,
    )
    return 0


# -- top -----------------------------------------------------------------------


def load_records(path: str) -> list[dict]:
    """Records from a flight dump (``{"events": [...]}``), a bare JSON
    array, or NDJSON."""
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    if isinstance(doc, dict):
        return doc.get("events", [])
    return doc


def render_top(records: list[dict]) -> str:
    """Aggregate records into a per-span-name table plus event tallies."""
    spans: dict[str, list] = {}  # name -> [count, total, max, errors]
    events: dict[str, int] = {}
    for rec in records:
        name = rec.get("name", "?")
        if rec.get("type") == "span":
            row = spans.setdefault(name, [0, 0.0, 0.0, 0])
            dur = rec.get("dur")
            if dur is None:
                # pre-measured payloads (the serve layer's time_ms) rank
                # alongside engine spans even without a dur field
                dur = (rec.get("attrs") or {}).get("time_ms", 0.0) / 1e3
            row[0] += 1
            row[1] += dur
            row[2] = max(row[2], dur)
            if "error" in (rec.get("attrs") or {}):
                row[3] += 1
        else:
            events[name] = events.get(name, 0) + 1
    lines = [
        f"{'span':<14} {'count':>8} {'total_ms':>10} {'mean_us':>10} "
        f"{'max_us':>10} {'errors':>7}"
    ]
    for name, (count, total, peak, errors) in sorted(
        spans.items(), key=lambda kv: -kv[1][1]
    ):
        mean = total / count if count else 0.0
        lines.append(
            f"{name:<14} {count:>8} {total * 1e3:>10.3f} {mean * 1e6:>10.1f} "
            f"{peak * 1e6:>10.1f} {errors:>7}"
        )
    if events:
        lines.append("")
        lines.append("events:")
        width = max(len(n) for n in events)
        for name, count in sorted(events.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}} {count}")
    lines.append("")
    lines.append(f"{len(records)} records")
    return "\n".join(lines)


def cmd_top(args) -> int:
    iterations = args.iterations if not args.follow else 0
    i = 0
    while True:
        try:
            records = load_records(args.file)
        except FileNotFoundError:
            print(f"top: no such file: {args.file}", file=sys.stderr)
            return 1
        if not args.no_clear and (args.follow or args.iterations > 1):
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_top(records))
        i += 1
        if iterations and i >= iterations:
            return 0
        time.sleep(args.interval)


def add_trace_parsers(sub) -> None:
    p = sub.add_parser(
        "trace", help="run a traced workload and export the span trace"
    )
    p.add_argument(
        "--type",
        choices=(DB_HASH, DB_BTREE, DB_RECNO),
        default=DB_HASH,
        help="access method for the synthetic workload (default hash)",
    )
    p.add_argument(
        "-n", type=int, default=1000, help="synthetic workload size (default 1000)"
    )
    p.add_argument(
        "--workload",
        choices=WORKLOADS,
        default="generic",
        help="key distribution for the synthetic workload",
    )
    p.add_argument(
        "--file",
        default=None,
        help="trace a read-only replay of this existing database instead",
    )
    p.add_argument(
        "--ring",
        type=int,
        default=0,
        help="flight-recorder ring capacity (0 = unbounded, the default here)",
    )
    p.add_argument(
        "-o", "--out", default=None, help="write Chrome trace-event JSON here"
    )
    p.add_argument(
        "--prom-out", default=None, help="write Prometheus text exposition here"
    )
    p.add_argument("--ndjson-out", default=None, help="write NDJSON records here")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "top", help="aggregate a flight-recorder dump into a per-op table"
    )
    p.add_argument("file", help="flight dump, Chrome-less JSON array, or NDJSON")
    p.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    p.add_argument(
        "--iterations", type=int, default=1, help="renders before exiting (default 1)"
    )
    p.add_argument(
        "--follow", action="store_true", help="refresh until interrupted"
    )
    p.add_argument(
        "--no-clear", action="store_true", help="do not clear the screen between renders"
    )
    p.set_defaults(fn=cmd_top)
