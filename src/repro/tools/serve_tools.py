"""``repro.tools slow`` / ``watch`` / ``promlint``: serve-layer observability.

``slow`` renders the slow-op captures a running server exposes at
``/debug/slow`` (or a saved copy of that JSON) as indented span trees --
one block per breach, with queue/exec/commit wait attributed span by
span.  ``watch`` polls ``/debug/timeseries`` and renders a top-style
live view of counter rates and gauge levels.  ``promlint`` runs the
strict exposition-format linter over a ``/metrics`` scrape (file or
stdin), exiting nonzero on any violation -- CI pipes a live scrape
through it so a malformed exposition fails the build rather than a
scraper.
"""

from __future__ import annotations

import json
import sys
import time


def _fetch(source: str) -> str:
    """Read ``source``: an ``http(s)://`` URL, ``-`` for stdin, or a
    file path."""
    if source == "-":
        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        with urlopen(source, timeout=10) as resp:
            return resp.read().decode("utf-8", "replace")
    with open(source) as fh:
        return fh.read()


# -- slow ----------------------------------------------------------------------


def render_span_forest(spans: list[dict], root_id: int | None) -> list[str]:
    """Indent spans by parent depth; linked-but-unparented spans (the
    coalescer's shared exec span, WAL spans under it) nest under their
    first in-tree link so the causal chain reads top to bottom."""
    by_id = {s["id"]: s for s in spans if s.get("id") is not None}
    children: dict[int | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent")
        if parent not in by_id:
            links = [l for l in (s.get("links") or ()) if l in by_id]
            parent = links[0] if links else None
        children.setdefault(parent, []).append(s)

    lines: list[str] = []

    def emit(span: dict, depth: int) -> None:
        name = span.get("name", "?")
        if span.get("type") == "span":
            dur = span.get("dur")
            if dur is None:
                dur = (span.get("attrs") or {}).get("time_ms", 0.0) / 1e3
            desc = f"{dur * 1e3:9.3f} ms  {'  ' * depth}{name}"
        else:
            desc = f"{'':>9}     {'  ' * depth}{name} (event)"
        extra = []
        attrs = span.get("attrs") or {}
        for key in ("rid", "ops", "kind", "status", "lsn", "error"):
            if key in attrs:
                extra.append(f"{key}={attrs[key]}")
        if span.get("links"):
            extra.append(f"links={len(span['links'])}")
        lines.append(desc + ("  [" + " ".join(extra) + "]" if extra else ""))
        for child in sorted(
            children.get(span.get("id"), ()), key=lambda s: s.get("ts", 0.0)
        ):
            emit(child, depth + 1)

    roots = sorted(children.get(None, ()), key=lambda s: s.get("ts", 0.0))
    if root_id is not None and root_id in by_id:
        # the request's own span first, stray roots after
        roots.sort(key=lambda s: (s.get("id") != root_id, s.get("ts", 0.0)))
    for root in roots:
        emit(root, 0)
    return lines


def render_slow(doc: dict) -> str:
    entries = doc.get("entries", [])
    head = (
        f"slow log: threshold {doc.get('threshold_ms', '?')} ms, "
        f"{doc.get('captured', len(entries))} captured "
        f"({doc.get('dropped', 0)} dropped, ring of {doc.get('capacity', '?')})"
    )
    lines = [head]
    for entry in entries:
        lines.append("")
        tag = f"#{entry.get('seq', '?')} {entry.get('op', '?')}"
        status = entry.get("status")
        lines.append(
            f"{tag}  {entry.get('dur_ms', 0.0):.3f} ms"
            + (f"  status=0x{status:02X}" if isinstance(status, int) else "")
        )
        spans = entry.get("spans")
        if spans:
            lines.extend(
                "  " + l
                for l in render_span_forest(spans, entry.get("root_span"))
            )
        else:
            lines.append("  (no span tree: tracing was off)")
    lines.append("")
    return "\n".join(lines)


def cmd_slow(args) -> int:
    try:
        doc = json.loads(_fetch(args.source))
    except FileNotFoundError:
        print(f"slow: no such file: {args.source}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError) as exc:
        print(f"slow: cannot read {args.source}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        json.dump(doc, sys.stdout, indent=1)
        sys.stdout.write("\n")
        return 0
    print(render_slow(doc), end="")
    return 0


# -- watch ---------------------------------------------------------------------


def render_watch(doc: dict, window: int) -> str:
    """Aggregate the last ``window`` samples into rate/level rows."""
    samples = doc.get("samples", [])[-window:]
    head = (
        f"timeseries: {doc.get('taken', 0)} samples taken, interval "
        f"{doc.get('interval', '?')}s, showing last {len(samples)}"
    )
    if not samples:
        return head + "\n  (no samples yet)\n"
    total_dt = sum(s.get("dt", 0.0) for s in samples) or 1.0
    rates: dict[str, float] = {}
    for s in samples:
        for path, delta in (s.get("deltas") or {}).items():
            rates[path] = rates.get(path, 0.0) + delta
    gauges = samples[-1].get("gauges") or {}
    lines = [head, ""]
    if rates:
        width = max(len(p) for p in rates)
        lines.append(f"{'counter':<{width}} {'delta':>12} {'per_sec':>12}")
        for path, total in sorted(rates.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"{path:<{width}} {total:>12.0f} {total / total_dt:>12.1f}"
            )
        lines.append("")
    if gauges:
        width = max(len(p) for p in gauges)
        lines.append(f"{'gauge':<{width}} {'level':>14}")
        for path, level in sorted(gauges.items()):
            lines.append(f"{path:<{width}} {level:>14.3f}")
        lines.append("")
    return "\n".join(lines)


def cmd_watch(args) -> int:
    iterations = args.iterations if not args.follow else 0
    i = 0
    while True:
        try:
            doc = json.loads(_fetch(args.source))
        except FileNotFoundError:
            print(f"watch: no such file: {args.source}", file=sys.stderr)
            return 1
        except (OSError, json.JSONDecodeError) as exc:
            print(f"watch: cannot read {args.source}: {exc}", file=sys.stderr)
            return 1
        if not args.no_clear and (args.follow or args.iterations > 1):
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_watch(doc, args.window))
        i += 1
        if iterations and i >= iterations:
            return 0
        time.sleep(args.interval)


# -- promlint ------------------------------------------------------------------


def cmd_promlint(args) -> int:
    from repro.obs.promlint import lint

    try:
        text = _fetch(args.source)
    except FileNotFoundError:
        print(f"promlint: no such file: {args.source}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"promlint: cannot read {args.source}: {exc}", file=sys.stderr)
        return 1
    errors = lint(text)
    for err in errors:
        print(err)
    if errors:
        print(f"promlint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"promlint: clean ({samples} samples)", file=sys.stderr)
    return 0


def add_serve_tool_parsers(sub) -> None:
    p = sub.add_parser(
        "slow", help="render a server's /debug/slow captures as span trees"
    )
    p.add_argument(
        "source", help="/debug/slow URL, a saved JSON file, or - for stdin"
    )
    p.add_argument(
        "--json", action="store_true", help="pretty-print the raw JSON instead"
    )
    p.set_defaults(fn=cmd_slow)

    p = sub.add_parser(
        "watch", help="top-style live view over a server's /debug/timeseries"
    )
    p.add_argument(
        "source", help="/debug/timeseries URL, a saved JSON file, or - for stdin"
    )
    p.add_argument(
        "--window", type=int, default=10,
        help="samples to aggregate per render (default 10)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    p.add_argument(
        "--iterations", type=int, default=1,
        help="renders before exiting (default 1)",
    )
    p.add_argument(
        "--follow", action="store_true", help="refresh until interrupted"
    )
    p.add_argument(
        "--no-clear", action="store_true",
        help="do not clear the screen between renders",
    )
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser(
        "promlint",
        help="strict Prometheus text-exposition lint (file or - for stdin)",
    )
    p.add_argument("source", help="exposition file, URL, or - for stdin")
    p.set_defaults(fn=cmd_promlint)
