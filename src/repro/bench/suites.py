"""The paper's test procedures.

Disk-based tests (run with bucket size 1024, fill factor 32 in the paper):

- **create** -- "The keys are entered into the hash table, and the file is
  flushed to disk."
- **read** -- "A lookup is performed for each key in the hash table."
- **verify** -- "A lookup is performed for each key ... and the data
  returned is compared against that originally stored."
- **sequential** -- "All keys are retrieved in sequential order" (keys
  only, matching the ndbm interface's first run).
- **sequential+data** -- the second ndbm run, where the data is returned
  too.

In-memory test (bucket size 256, fill factor 8):

- **create/read** -- "a hash table is created by inserting all the
  key/data pairs.  Then a keyed retrieval is performed for each pair, and
  the hash table is destroyed."
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.adapters import Adapter
from repro.bench.timing import Measurement, measure

Pairs = Sequence[tuple[bytes, bytes]]


def _consume_all(iterator) -> int:
    count = 0
    for _item in iterator:
        count += 1
    return count


def create_test(adapter: Adapter, pairs: Pairs, nelem_hint: int = 1) -> Measurement:
    """Enter every pair, then flush the file to disk."""

    def run():
        adapter.create(nelem_hint)
        for key, value in pairs:
            adapter.put(key, value)
        adapter.sync()

    _res, m = measure(run, adapter.io_snapshot)
    return m


def read_test(adapter: Adapter, pairs: Pairs) -> Measurement:
    """Lookup of every key (presence checked, data not compared)."""

    def run():
        missing = 0
        for key, _value in pairs:
            if adapter.get(key) is None:
                missing += 1
        if missing:
            raise AssertionError(f"read test: {missing} keys missing")

    _res, m = measure(run, adapter.io_snapshot)
    return m


def verify_test(adapter: Adapter, pairs: Pairs) -> Measurement:
    """Lookup of every key with full data comparison."""

    def run():
        bad = 0
        for key, value in pairs:
            if adapter.get(key) != value:
                bad += 1
        if bad:
            raise AssertionError(f"verify test: {bad} mismatches")

    _res, m = measure(run, adapter.io_snapshot)
    return m


def sequential_test(adapter: Adapter, expected: int) -> Measurement:
    """Retrieve all keys in sequential order (keys only)."""

    def run():
        n = _consume_all(adapter.iter_keys())
        if n != expected:
            raise AssertionError(f"sequential test: {n} keys, expected {expected}")

    _res, m = measure(run, adapter.io_snapshot)
    return m


def sequential_data_test(adapter: Adapter, expected: int) -> Measurement:
    """Retrieve all keys and their data in sequential order."""

    def run():
        n = _consume_all(adapter.iter_items())
        if n != expected:
            raise AssertionError(
                f"sequential+data test: {n} items, expected {expected}"
            )

    _res, m = measure(run, adapter.io_snapshot)
    return m


def disk_suite(
    adapter: Adapter, pairs: Pairs, *, nelem_hint: int = 1, reopen: bool = True
) -> dict[str, Measurement]:
    """The paper's full disk-based suite for one system.

    ``reopen=True`` closes and reopens the database between create and
    read, so the read tests start from a cold(ish) cache as on the
    paper's testbed.
    """
    results: dict[str, Measurement] = {}
    results["create"] = create_test(adapter, pairs, nelem_hint)
    if reopen:
        adapter.reopen()
    results["read"] = read_test(adapter, pairs)
    results["verify"] = verify_test(adapter, pairs)
    results["sequential"] = sequential_test(adapter, len(pairs))
    results["sequential+data"] = sequential_data_test(adapter, len(pairs))
    adapter.close()
    adapter.destroy()
    return results


def memory_suite(adapter: Adapter, pairs: Pairs) -> dict[str, Measurement]:
    """The paper's in-memory create/read test for one system."""

    def run():
        adapter.create(len(pairs))
        for key, value in pairs:
            adapter.put(key, value)
        missing = 0
        for key, _value in pairs:
            if adapter.get(key) is None:
                missing += 1
        adapter.close()
        if missing:
            raise AssertionError(f"create/read test: {missing} keys missing")

    _res, m = measure(run, adapter.io_snapshot)
    return {"create/read": m}
