"""Measurement of user/system/elapsed time and page I/O.

The paper reports getrusage-style user, system and elapsed seconds.  We
report the same three clocks via ``os.times()``, plus the substrate's page
I/O counters -- the deterministic, machine-independent proxy for 1991
system time (see DESIGN.md section 2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.storage.iostats import IOSnapshot


@dataclass
class Measurement:
    """One timed run."""

    user: float
    system: float
    elapsed: float
    io: IOSnapshot

    @property
    def cpu(self) -> float:
        return self.user + self.system

    def __add__(self, other: "Measurement") -> "Measurement":
        return Measurement(
            user=self.user + other.user,
            system=self.system + other.system,
            elapsed=self.elapsed + other.elapsed,
            io=self.io + other.io,
        )

    def metric(self, name: str) -> float:
        """Fetch a metric by name: user/system/elapsed/cpu or any
        IOSnapshot field (page_io/page_reads/page_writes/syscalls/...)."""
        if name in ("user", "system", "elapsed", "cpu"):
            return getattr(self, name)
        return float(getattr(self.io, name))


_ZERO_IO = IOSnapshot()


def measure(
    fn: Callable[[], object],
    io_fn: Callable[[], IOSnapshot] | None = None,
) -> tuple[object, Measurement]:
    """Run ``fn`` once; returns ``(result, Measurement)``.

    ``io_fn`` returns the *cumulative* I/O snapshot of whatever files the
    operation touches (adapters provide one); the measurement records the
    delta across the run.
    """
    before_io = io_fn() if io_fn is not None else _ZERO_IO
    t0 = os.times()
    result = fn()
    t1 = os.times()
    after_io = io_fn() if io_fn is not None else _ZERO_IO
    return result, Measurement(
        user=t1.user - t0.user,
        system=t1.system - t0.system,
        elapsed=t1.elapsed - t0.elapsed,
        io=after_io - before_io,
    )
