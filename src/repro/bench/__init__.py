"""Benchmark harness regenerating the paper's evaluation.

- :mod:`repro.bench.timing` -- user/system/elapsed + page-I/O measurement.
- :mod:`repro.bench.adapters` -- one uniform driver per hashing system.
- :mod:`repro.bench.suites` -- the paper's CREATE/READ/VERIFY/SEQUENTIAL
  tests (disk suite) and CREATE+READ (memory suite).
- :mod:`repro.bench.report` -- renders the paper's tables and figure
  series as aligned text.
"""

from repro.bench.timing import Measurement, measure
from repro.bench.suites import disk_suite, memory_suite
from repro.bench.report import (
    format_comparison_table,
    format_series_table,
    pct_change,
)

__all__ = [
    "Measurement",
    "measure",
    "disk_suite",
    "memory_suite",
    "format_comparison_table",
    "format_series_table",
    "pct_change",
]
