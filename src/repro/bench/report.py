"""Text rendering of the paper's tables and figure series, plus JSON
serialization of observability-registry snapshots for benchmark artifacts."""

from __future__ import annotations

import json
import os
from typing import Mapping, Sequence

from repro.bench.timing import Measurement


def registry_snapshot(stat: dict, *, label: str, context: dict | None = None) -> dict:
    """Wrap a ``db.stat()`` metric tree as a benchmark artifact payload.

    ``label`` names the workload; ``context`` records the run parameters
    (scale, bsize, cachesize, ...) so snapshots are comparable over time.
    """
    return {"label": label, "context": dict(context or {}), "stat": stat}


def write_bench_json(name: str, payload: dict, directory: str | os.PathLike = ".") -> str:
    """Persist a snapshot payload as ``BENCH_<name>.json``; returns the
    path written."""
    path = os.path.join(os.fspath(directory), f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def pct_change(old: float, new: float) -> float | None:
    """The paper's improvement metric:
    ``% = 100 * (old_time - new_time) / old_time`` (None when old is 0)."""
    if old == 0:
        return None
    return 100.0 * (old - new) / old


def _fmt_pct(value: float | None) -> str:
    return "-" if value is None else f"{value:.0f}"


def format_comparison_table(
    title: str,
    new_results: Mapping[str, Measurement],
    old_results: Mapping[str, Measurement],
    *,
    new_name: str = "hash",
    old_name: str = "ndbm",
    metrics: Sequence[str] = ("user", "system", "elapsed", "page_io"),
) -> str:
    """Render a Figure 8-style table: per test, per metric, new vs old vs
    %change."""
    lines = [title, "=" * len(title)]
    header = f"{'test':<18} {'metric':<9} {new_name:>10} {old_name:>10} {'%change':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for test in new_results:
        if test not in old_results:
            continue
        for metric in metrics:
            new_v = new_results[test].metric(metric)
            old_v = old_results[test].metric(metric)
            if metric == "page_io":
                cell_new, cell_old = f"{new_v:10.0f}", f"{old_v:10.0f}"
            else:
                cell_new, cell_old = f"{new_v:10.2f}", f"{old_v:10.2f}"
            lines.append(
                f"{test:<18} {metric:<9} {cell_new} {cell_old} "
                f"{_fmt_pct(pct_change(old_v, new_v)):>8}"
            )
        lines.append("")
    return "\n".join(lines)


def format_series_table(
    title: str,
    row_label: str,
    col_label: str,
    rows: Sequence,
    cols: Sequence,
    cells: Mapping[tuple, float],
    *,
    fmt: str = "{:.2f}",
) -> str:
    """Render a Figure 5/6/7-style series: one row per series (e.g. bucket
    size), one column per x value (e.g. fill factor)."""
    lines = [title, "=" * len(title)]
    width = max(10, max(len(fmt.format(v)) for v in cells.values()) + 2) if cells else 10
    width = max(width, max((len(str(c)) for c in cols), default=0) + 2)
    corner = row_label + "/" + col_label
    label_width = max(14, max((len(str(r)) for r in rows), default=0) + 2, len(corner) + 2)
    header = f"{corner:<{label_width}}" + "".join(f"{str(c):>{width}}" for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        cells_fmt = []
        for c in cols:
            v = cells.get((r, c))
            cells_fmt.append(f"{'-':>{width}}" if v is None else f"{fmt.format(v):>{width}}")
        lines.append(f"{str(r):<{label_width}}" + "".join(cells_fmt))
    return "\n".join(lines)


def format_bar_table(
    title: str,
    groups: Sequence,
    bars: Mapping[str, Mapping],
    *,
    fmt: str = "{:.2f}",
) -> str:
    """Render a Figure 6-style grouped-bar dataset: one column per group
    (e.g. fill factor), one row per bar series (e.g. 'pre-sized user')."""
    lines = [title, "=" * len(title)]
    width = 12
    header = f"{'series':<26}" + "".join(f"{str(g):>{width}}" for g in groups)
    lines.append(header)
    lines.append("-" * len(header))
    for name, series in bars.items():
        row = [f"{name:<26}"]
        for g in groups:
            v = series.get(g)
            row.append(f"{'-':>{width}}" if v is None else f"{fmt.format(v):>{width}}")
        lines.append("".join(row))
    return "\n".join(lines)
