"""Uniform drivers over every hashing system, for the benchmark suites.

Each adapter exposes the same verbs (create/put/get/iterate/sync/close/
reopen/destroy) and a cumulative I/O snapshot that survives close+reopen,
so the suites can time any system interchangeably.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.baselines.dbm.ndbm import Ndbm
from repro.baselines.dynahash.dynahash import DynaHash
from repro.baselines.gdbm.gdbm import Gdbm
from repro.baselines.hsearch.hsearch import Hsearch
from repro.baselines.sdbm.sdbm import Sdbm
from repro.core.table import HashTable
from repro.storage.iostats import IOSnapshot, IOStats


class Adapter:
    """Base: subclasses set ``name`` and implement the verbs."""

    name = "abstract"
    is_disk = True

    def __init__(self, workdir: str) -> None:
        self.workdir = workdir
        self._io_acc = IOStats()

    # -- I/O accounting across reopen cycles -----------------------------------

    def _live_stats(self) -> list[IOStats]:
        return []

    def io_snapshot(self) -> IOSnapshot:
        snap = self._io_acc.snapshot()
        for s in self._live_stats():
            snap = snap + s.snapshot()
        return snap

    def _absorb_live(self) -> None:
        for s in self._live_stats():
            self._io_acc.merge(s)

    # -- verbs -------------------------------------------------------------------

    def create(self, nelem_hint: int = 1) -> None:
        raise NotImplementedError

    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> bytes | None:
        raise NotImplementedError

    def iter_keys(self) -> Iterator[bytes]:
        raise NotImplementedError

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def reopen(self) -> None:
        raise NotImplementedError

    def destroy(self) -> None:
        """Remove on-disk artifacts (after close)."""

    def _rm(self, *names: str) -> None:
        for n in names:
            p = os.path.join(self.workdir, n)
            if os.path.exists(p):
                os.unlink(p)


class NewHashAdapter(Adapter):
    """The paper's new package ("hash"), disk-resident."""

    name = "hash"

    def __init__(
        self,
        workdir: str,
        *,
        bsize: int = 1024,
        ffactor: int = 32,
        cachesize: int = 1 << 20,
    ) -> None:
        super().__init__(workdir)
        self.bsize = bsize
        self.ffactor = ffactor
        self.cachesize = cachesize
        self.path = os.path.join(workdir, "new.hash")
        self.table: HashTable | None = None

    def _live_stats(self) -> list[IOStats]:
        if self.table is not None and not self.table.closed:
            return [self.table.io_stats]
        return []

    def create(self, nelem_hint: int = 1) -> None:
        self.table = HashTable.create(
            self.path,
            bsize=self.bsize,
            ffactor=self.ffactor,
            nelem=nelem_hint,
            cachesize=self.cachesize,
        )

    def put(self, key: bytes, value: bytes) -> None:
        self.table.put(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.table.get(key)

    def iter_keys(self) -> Iterator[bytes]:
        return self.table.keys()

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.table.items()

    def sync(self) -> None:
        self.table.sync()

    def close(self) -> None:
        if self.table is not None and not self.table.closed:
            self._absorb_live()
            self.table.close()

    def reopen(self) -> None:
        self.close()
        self.table = HashTable.open_file(self.path, cachesize=self.cachesize)

    def destroy(self) -> None:
        self._rm("new.hash")


class NewHashMemoryAdapter(NewHashAdapter):
    """The new package in its memory-resident mode (hsearch comparison)."""

    name = "hash (mem)"
    is_disk = False

    def __init__(
        self,
        workdir: str,
        *,
        bsize: int = 256,
        ffactor: int = 8,
        cachesize: int = 1 << 20,
    ) -> None:
        super().__init__(
            workdir, bsize=bsize, ffactor=ffactor, cachesize=cachesize
        )

    def create(self, nelem_hint: int = 1) -> None:
        self.table = HashTable.create(
            None,
            bsize=self.bsize,
            ffactor=self.ffactor,
            nelem=nelem_hint,
            cachesize=self.cachesize,
            in_memory=True,
        )

    def sync(self) -> None:
        pass  # memory-resident: nothing to flush

    def reopen(self) -> None:
        raise NotImplementedError("memory tables cannot be reopened")

    def destroy(self) -> None:
        pass


class NdbmAdapter(Adapter):
    """4.3BSD ndbm (Thompson's algorithm)."""

    name = "ndbm"

    def __init__(self, workdir: str, *, block_size: int = 1024) -> None:
        super().__init__(workdir)
        self.base = os.path.join(workdir, "ndbm")
        self.block_size = block_size
        self.db: Ndbm | None = None

    def _live_stats(self) -> list[IOStats]:
        return [self.db.io_stats] if self.db is not None else []

    def create(self, nelem_hint: int = 1) -> None:
        self.db = Ndbm(self.base, "n", block_size=self.block_size)

    def put(self, key: bytes, value: bytes) -> None:
        self.db.store(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.db.fetch(key)

    def iter_keys(self) -> Iterator[bytes]:
        return self.db.db.keys()

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        # ndbm's sequential interface returns keys; fetching the data
        # "requires a second call to the library" -- modelled faithfully.
        for key in self.db.db.keys():
            yield key, self.db.fetch(key)

    def sync(self) -> None:
        self.db.sync()

    def close(self) -> None:
        if self.db is not None:
            self._absorb_live()
            self.db.close()
            self.db = None

    def reopen(self) -> None:
        self.close()
        self.db = Ndbm(self.base, "w", block_size=self.block_size)

    def destroy(self) -> None:
        self._rm("ndbm.pag", "ndbm.dir")


class SdbmAdapter(Adapter):
    name = "sdbm"

    def __init__(self, workdir: str, *, block_size: int = 1024) -> None:
        super().__init__(workdir)
        self.base = os.path.join(workdir, "sdbm")
        self.block_size = block_size
        self.db: Sdbm | None = None

    def _live_stats(self) -> list[IOStats]:
        return [self.db.io_stats] if self.db is not None else []

    def create(self, nelem_hint: int = 1) -> None:
        self.db = Sdbm(self.base, "n", block_size=self.block_size)

    def put(self, key: bytes, value: bytes) -> None:
        self.db.store(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.db.fetch(key)

    def iter_keys(self) -> Iterator[bytes]:
        return self.db.keys()

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        for key in self.db.keys():
            yield key, self.db.fetch(key)

    def sync(self) -> None:
        self.db.sync()

    def close(self) -> None:
        if self.db is not None:
            self._absorb_live()
            self.db.close()
            self.db = None

    def reopen(self) -> None:
        self.close()
        self.db = Sdbm(self.base, "w", block_size=self.block_size)

    def destroy(self) -> None:
        self._rm("sdbm.pag", "sdbm.dir")


class GdbmAdapter(Adapter):
    name = "gdbm"

    def __init__(self, workdir: str, *, block_size: int = 1024) -> None:
        super().__init__(workdir)
        self.path = os.path.join(workdir, "gdbm.db")
        self.block_size = block_size
        self.db: Gdbm | None = None

    def _live_stats(self) -> list[IOStats]:
        return [self.db.io_stats] if self.db is not None else []

    def create(self, nelem_hint: int = 1) -> None:
        self.db = Gdbm(self.path, "n", block_size=self.block_size)

    def put(self, key: bytes, value: bytes) -> None:
        self.db.store(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.db.fetch(key)

    def iter_keys(self) -> Iterator[bytes]:
        return self.db.keys()

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.db.items()

    def sync(self) -> None:
        self.db.sync()

    def close(self) -> None:
        if self.db is not None:
            self._absorb_live()
            self.db.close()
            self.db = None

    def reopen(self) -> None:
        self.close()
        self.db = Gdbm(self.path, "w", block_size=self.block_size)

    def destroy(self) -> None:
        self._rm("gdbm.db")


class HsearchAdapter(Adapter):
    """System V hsearch (memory only, fixed size)."""

    name = "hsearch"
    is_disk = False

    def __init__(self, workdir: str, *, variant: str = "default", **kwargs) -> None:
        super().__init__(workdir)
        self.variant = variant
        self.kwargs = kwargs
        self.table: Hsearch | None = None

    def create(self, nelem_hint: int = 1) -> None:
        # hsearch must be sized for the whole data set up front (its
        # historical shortcoming); give it the hint with slack so the
        # benchmark exercises lookup, not the table-full failure mode.
        self.table = Hsearch(
            max(nelem_hint + nelem_hint // 4, 64), variant=self.variant, **self.kwargs
        )

    def put(self, key: bytes, value: bytes) -> None:
        self.table.enter(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.table.find(key)

    def iter_keys(self) -> Iterator[bytes]:
        raise NotImplementedError("hsearch has no sequential interface")

    iter_items = iter_keys

    def sync(self) -> None:
        pass

    def close(self) -> None:
        if self.table is not None:
            self.table.hdestroy()
            self.table = None

    def reopen(self) -> None:
        raise NotImplementedError("hsearch tables cannot be stored on disk")


class DynahashAdapter(Adapter):
    """dynahash (memory only, grows past nelem)."""

    name = "dynahash"
    is_disk = False

    def __init__(self, workdir: str, *, ffactor: int = 5) -> None:
        super().__init__(workdir)
        self.ffactor = ffactor
        self.table: DynaHash | None = None

    def create(self, nelem_hint: int = 1) -> None:
        self.table = DynaHash(nelem_hint, ffactor=self.ffactor)

    def put(self, key: bytes, value: bytes) -> None:
        self.table.put(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.table.get(key)

    def iter_keys(self) -> Iterator[bytes]:
        return self.table.keys()

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.table.items()

    def sync(self) -> None:
        pass

    def close(self) -> None:
        self.table = None

    def reopen(self) -> None:
        raise NotImplementedError("dynahash tables cannot be stored on disk")
