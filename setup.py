from setuptools import setup

# Offline-friendly shim: enables `pip install -e . --no-use-pep517` on hosts
# without the `wheel` package (all metadata lives in pyproject.toml).
setup()
