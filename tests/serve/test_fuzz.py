"""Byte-level protocol fuzzing against a live server.

The contract under attack: malformed, truncated or oversized frames must
produce a **typed error response or a clean disconnect** -- never a
traceback in the server, never a hung connection, and never a poisoned
server (a fresh well-behaved client must still be served afterwards).

Deterministic: one seeded ``random.Random`` drives every trial, sockets
carry hard timeouts, and the post-fuzz liveness probe is a plain
request/response.
"""

from __future__ import annotations

import random
import socket

from repro.serve import protocol as proto
from repro.serve.client import Client
from repro.serve.server import ServerConfig

FUZZ_MAX_FRAME = 64 * 1024


def _fuzz_server(server_factory):
    return server_factory(
        config=ServerConfig(port=0, max_frame=FUZZ_MAX_FRAME, max_inflight=32)
    )


def _drain_until_closed(sock: socket.socket, limit: int = 1 << 20) -> bytes:
    """Read until the server closes (or the byte limit trips -- which
    would mean the server is streaming garbage and is its own failure)."""
    sock.settimeout(10.0)
    chunks = []
    total = 0
    while total < limit:
        data = sock.recv(65536)
        if not data:
            break
        chunks.append(data)
        total += len(data)
    return b"".join(chunks)


def _assert_alive(port: int) -> None:
    """The server must still serve a well-formed client."""
    with Client(port=port, timeout=10.0) as c:
        assert c.ping(b"liveness") == b"liveness"
        assert c.put(b"alive", b"yes") is True
        assert c.get(b"alive") == b"yes"


def _parse_error_frames(blob: bytes) -> list[tuple[int, int, bytes]]:
    """Whatever the server sent back must itself be well-framed."""
    if not blob:
        return []
    return proto.FrameDecoder(FUZZ_MAX_FRAME).feed(blob)


class TestFuzz:
    def test_random_garbage_streams(self, server_factory):
        st = _fuzz_server(server_factory)
        rnd = random.Random(0xC3DB)
        for trial in range(25):
            blob = rnd.randbytes(rnd.randint(1, 4096))
            with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as s:
                s.sendall(blob)
                s.shutdown(socket.SHUT_WR)
                frames = _parse_error_frames(_drain_until_closed(s))
                # any response the server chose to send is typed, framed
                for status, _rid, _payload in frames:
                    assert status in proto.ERROR_STATUSES | {proto.ST_OK, proto.ST_NOT_FOUND}
            _assert_alive(st.port)

    def test_oversized_declared_length(self, server_factory):
        st = _fuzz_server(server_factory)
        rnd = random.Random(7)
        for _ in range(5):
            rid = rnd.randint(1, 2**32 - 1)
            header = proto.HEADER.pack(
                proto.MAGIC, proto.VERSION, proto.OP_PUT, rid, FUZZ_MAX_FRAME + 1
            )
            with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as s:
                s.sendall(header + b"x" * 100)
                frames = _parse_error_frames(_drain_until_closed(s))
                assert len(frames) == 1
                status, got_rid, message = frames[0]
                assert status == proto.ST_TOO_BIG
                assert got_rid == rid  # typed error echoes the culprit's id
                assert b"frame limit" in message
        _assert_alive(st.port)

    def test_truncated_frames_disconnect_cleanly(self, server_factory):
        st = _fuzz_server(server_factory)
        rnd = random.Random(13)
        full = proto.encode_frame(
            proto.OP_PUT, 1, proto.encode_put(b"key", b"value" * 100)
        )
        for _ in range(20):
            cut = rnd.randint(1, len(full) - 1)
            with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as s:
                s.sendall(full[:cut])
                s.shutdown(socket.SHUT_WR)
                # half a frame is not an error -- the sender just went away;
                # the server must drop the connection without a response
                assert _drain_until_closed(s) == b""
        _assert_alive(st.port)
        # and the truncated put must never have landed
        with Client(port=st.port) as c:
            assert c.get(b"key") is None

    def test_bad_magic_answers_typed_then_disconnects(self, server_factory):
        st = _fuzz_server(server_factory)
        with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as s:
            s.sendall(b"GET / HTTP/1.1\r\n\r\n")  # a confused HTTP client
            frames = _parse_error_frames(_drain_until_closed(s))
            assert len(frames) == 1
            assert frames[0][0] == proto.ST_BAD_REQUEST
            assert b"magic" in frames[0][2]
        _assert_alive(st.port)

    def test_valid_frames_split_at_random_boundaries(self, server_factory):
        """Chunking must be invisible: the same pipelined requests, sliced
        randomly across sends, produce exactly the same responses."""
        st = _fuzz_server(server_factory)
        rnd = random.Random(29)
        stream = b"".join(
            proto.encode_frame(
                proto.OP_PUT, i + 1, proto.encode_put(f"s{i}".encode(), f"v{i}".encode())
            )
            for i in range(10)
        ) + b"".join(
            proto.encode_frame(proto.OP_GET, 100 + i, f"s{i}".encode()) for i in range(10)
        )
        for _trial in range(10):
            with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as s:
                off = 0
                while off < len(stream):
                    step = rnd.randint(1, 37)
                    s.sendall(stream[off : off + step])
                    off += step
                s.shutdown(socket.SHUT_WR)
                frames = _parse_error_frames(_drain_until_closed(s))
            assert len(frames) == 20
            by_rid = {rid: (status, payload) for status, rid, payload in frames}
            for i in range(10):
                assert by_rid[i + 1] == (proto.ST_OK, b"\x01")
                assert by_rid[100 + i] == (proto.ST_OK, f"v{i}".encode())

    def test_flip_every_header_byte(self, server_factory):
        """One bit story per byte: flip each header byte of a valid frame;
        the server answers typed or disconnects, and always survives."""
        st = _fuzz_server(server_factory)
        good = proto.encode_frame(proto.OP_GET, 5, b"somekey")
        for i in range(proto.HEADER_SIZE):
            mutated = bytearray(good)
            mutated[i] ^= 0xFF
            with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as s:
                s.sendall(bytes(mutated))
                s.shutdown(socket.SHUT_WR)
                frames = _parse_error_frames(_drain_until_closed(s))
                for status, _rid, _payload in frames:
                    assert status in proto.ERROR_STATUSES | {proto.ST_OK, proto.ST_NOT_FOUND}
        _assert_alive(st.port)
