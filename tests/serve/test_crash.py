"""SIGKILL crash tests: zero lost acknowledged writes under WAL.

The server's durability promise (``--durability wal``): by the time a
client holds an OK for a mutating request, the write is committed in the
write-ahead log.  SIGKILL -- no atexit, no drain, no checkpoint -- at
any moment afterwards must not lose it.

Mechanics: a real ``python -m repro.serve`` subprocess (readiness parsed
from its ``LISTENING port=...`` stdout line, no sleeps), a pipelining
client that records every acknowledged key, ``SIGKILL`` fired at varied
points (between batches, and mid-pipeline from the writer's own loop),
then an in-process reopen -- the WAL replays on open -- asserting every
acked key is present with its acked value.  Extends the in-process
fault sweep of ``tests/test_wal_recovery.py`` across the process
boundary.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.wal import wal_path_for
from repro.serve.client import Client

SRC = str(Path(__file__).resolve().parents[2] / "src")


class ServedProcess:
    """A real server subprocess; readiness comes from its stdout line."""

    def __init__(self, db_path, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "serve",
                str(db_path),
                "--port",
                "0",
                "--durability",
                "wal",
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        line = self.proc.stdout.readline()
        assert line.startswith("LISTENING "), f"bad readiness line: {line!r}"
        fields = dict(part.split("=", 1) for part in line.split()[1:])
        self.port = int(fields["port"])

    def sigkill(self):
        self.proc.kill()  # SIGKILL: no drain, no checkpoint, no close
        self.proc.wait(timeout=30)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
        self.proc.stdout.close()


@pytest.fixture
def served(tmp_path):
    procs = []

    def make(name="crash.db", *extra):
        sp = ServedProcess(tmp_path / name, *extra)
        procs.append(sp)
        return sp

    yield make
    for sp in procs:
        sp.cleanup()


def _value(i: int) -> bytes:
    return b"payload-%d-" % i + b"v" * 50


def _assert_acked_survive(db_path, acked: dict) -> None:
    """Reopen (WAL replays) and audit every acknowledged write."""
    with repro.open(str(db_path), "r") as db:
        lost = {k for k, v in acked.items() if db.get(k) != v}
        assert not lost, f"lost {len(lost)} acknowledged writes, e.g. {sorted(lost)[:5]}"


class TestSigkill:
    @pytest.mark.parametrize("kill_after", [1, 7, 25])
    def test_zero_lost_acks_between_batches(self, served, tmp_path, kill_after):
        """Write BATCH frames one at a time; SIGKILL right after the
        ``kill_after``-th ack.  Every acked batch must survive replay."""
        sp = served(f"between-{kill_after}.db")
        acked: dict[bytes, bytes] = {}
        with Client(port=sp.port) as c:
            for b in range(kill_after):
                ops = [("put", b"b%d-k%d" % (b, i), _value(i)) for i in range(20)]
                assert c.batch(ops) == [True] * 20
                acked.update((k, v) for _, k, v in ops)
        sp.sigkill()
        assert len(acked) == kill_after * 20
        _assert_acked_survive(tmp_path / f"between-{kill_after}.db", acked)

    def test_zero_lost_acks_mid_pipeline(self, served, tmp_path):
        """Keep a deep pipeline running and SIGKILL the server while
        requests are in flight.  Unacked writes may or may not have
        landed; every ACKED one must have."""
        sp = served("midpipe.db")
        acked: dict[bytes, bytes] = {}
        with Client(port=sp.port) as c:
            inflight: list[tuple[int, bytes, bytes]] = []
            killed = False
            try:
                for i in range(5000):
                    key, value = b"pipe-%d" % i, _value(i)
                    inflight.append((c.send("put", key, value), key, value))
                    # harvest acks a window behind the writes
                    if len(inflight) > 64:
                        rid, k, v = inflight.pop(0)
                        assert c.result(rid) is True
                        acked[k] = v
                    if i == 1500:
                        sp.sigkill()  # mid-flight, from the writer's loop
                        killed = True
                # if the OS buffered everything, drain what we can
                while inflight:
                    rid, k, v = inflight.pop(0)
                    if c.result(rid) is True:
                        acked[k] = v
            except (ConnectionError, OSError):
                assert killed, "connection died before the kill was sent"
        assert len(acked) >= 1000  # the kill landed mid-stream, acks exist
        _assert_acked_survive(tmp_path / "midpipe.db", acked)

    def test_acked_overwrites_and_deletes_survive(self, served, tmp_path):
        """Durability covers the op, not just first writes: acked
        overwrites must show the NEW value, acked deletes must stay
        deleted, after a SIGKILL with no checkpoint."""
        sp = served("ops.db")
        with Client(port=sp.port) as c:
            assert c.batch(
                [("put", b"k%d" % i, b"old-%d" % i) for i in range(30)]
            ) == [True] * 30
            assert c.batch(
                [("put", b"k%d" % i, b"new-%d" % i) for i in range(15)]
            ) == [True] * 15
            assert c.batch([("delete", b"k%d" % i) for i in range(25, 30)]) == [
                True
            ] * 5
        sp.sigkill()
        with repro.open(str(tmp_path / "ops.db"), "r") as db:
            for i in range(15):
                assert db[b"k%d" % i] == b"new-%d" % i
            for i in range(15, 25):
                assert db[b"k%d" % i] == b"old-%d" % i
            for i in range(25, 30):
                assert db.get(b"k%d" % i) is None
            assert len(db) == 25

    def test_wal_actually_carried_the_writes(self, served, tmp_path):
        """Sanity check on the mechanism: after SIGKILL (which skips the
        shutdown checkpoint) the WAL file still exists and is non-trivial
        -- the acked data really did come back from log replay."""
        sp = served("mech.db")
        with Client(port=sp.port) as c:
            assert c.batch(
                [("put", b"m%d" % i, _value(i)) for i in range(50)]
            ) == [True] * 50
        sp.sigkill()
        wal = Path(wal_path_for(str(tmp_path / "mech.db")))
        assert wal.exists() and wal.stat().st_size > 0
        _assert_acked_survive(
            tmp_path / "mech.db", {b"m%d" % i: _value(i) for i in range(50)}
        )
