"""Hypothesis property tests for the wire protocol and the live server.

Two layers:

* **codec round-trip** -- arbitrary keys/values/batches survive
  ``encode -> frame -> (chunked) FrameDecoder -> decode`` bit-for-bit,
  for every chunking Hypothesis cares to try;
* **loopback model test** -- a random op sequence applied both to a live
  server (through the real client/pipeline) and to a plain ``dict``
  agrees at every step.

The server is module-scoped (one table for the whole file) so Hypothesis'
function-scoped-fixture health check never fires; examples stay
independent by prefixing keys with a fresh namespace per example.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.access.db import db_open
from repro.serve import protocol as proto
from repro.serve.client import Client
from repro.serve.server import ServerConfig, ServerThread

KEYS = st.binary(min_size=1, max_size=64)
VALUES = st.binary(min_size=0, max_size=256)
RIDS = st.integers(min_value=0, max_value=2**32 - 1)

SUB_OPS = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES, st.booleans()),
    st.tuples(st.just("get"), KEYS),
    st.tuples(st.just("delete"), KEYS),
)


def _encode_sub(op):
    if op[0] == "put":
        return (proto.OP_PUT, proto.encode_put(op[1], op[2], op[3]))
    if op[0] == "get":
        return (proto.OP_GET, op[1])
    return (proto.OP_DELETE, op[1])


class TestCodecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(key=KEYS, value=VALUES, replace=st.booleans())
    def test_put_payload(self, key, value, replace):
        assert proto.decode_put(proto.encode_put(key, value, replace)) == (
            key,
            value,
            replace,
        )

    @settings(max_examples=100, deadline=None)
    @given(ops=st.lists(SUB_OPS, min_size=0, max_size=20))
    def test_batch_payload(self, ops):
        encoded = [_encode_sub(op) for op in ops]
        assert proto.decode_batch(proto.encode_batch(encoded)) == encoded

    @settings(max_examples=100, deadline=None)
    @given(
        frames=st.lists(st.tuples(RIDS, st.binary(max_size=512)), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_frames_survive_arbitrary_chunking(self, frames, data):
        stream = b"".join(
            proto.encode_frame(proto.OP_PING, rid, payload) for rid, payload in frames
        )
        dec = proto.FrameDecoder()
        got = []
        off = 0
        while off < len(stream):
            step = data.draw(
                st.integers(min_value=1, max_value=len(stream) - off), label="chunk"
            )
            got.extend(dec.feed(stream[off : off + step]))
            off += step
        assert got == [(proto.OP_PING, rid, payload) for rid, payload in frames]
        assert dec.pending == 0


@pytest.fixture(scope="module")
def module_server(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("prop") / "prop.db")
    db = db_open(path, "hash", "c", concurrent=True)
    st_ = ServerThread(db, ServerConfig(port=0), owns_db=True)
    st_.start()
    yield st_
    st_.stop()


_namespace = itertools.count()


class TestLoopbackModel:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=st.lists(SUB_OPS, min_size=1, max_size=30))
    def test_server_agrees_with_dict(self, module_server, ops):
        prefix = b"ns%d/" % next(_namespace)
        model: dict[bytes, bytes] = {}
        with Client(port=module_server.port) as c:
            for op in ops:
                key = prefix + op[1]
                if op[0] == "put":
                    _, _, value, replace = op
                    stored = c.put(key, value, replace=replace)
                    assert stored is (replace or key not in model)
                    if stored:
                        model[key] = value
                elif op[0] == "get":
                    assert c.get(key) == model.get(key)
                else:
                    assert c.delete(key) is (key in model)
                    model.pop(key, None)
            # final audit: every model key readable, in one pipelined sweep
            rids = [(k, c.send("get", k)) for k in model]
            for k, rid in rids:
                assert c.result(rid) == model[k]

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=st.lists(SUB_OPS, min_size=1, max_size=30))
    def test_batch_op_agrees_with_dict(self, module_server, ops):
        """The same sequence sent as ONE BATCH frame behaves like the
        sequential dict replay -- the server's sequential-semantics
        guarantee, under Hypothesis' choice of ops."""
        prefix = b"bt%d/" % next(_namespace)
        model: dict[bytes, bytes] = {}
        expected = []
        batch = []
        for op in ops:
            key = prefix + op[1]
            if op[0] == "put":
                _, _, value, replace = op
                batch.append(("put", key, value, replace))
                stored = replace or key not in model
                if stored:
                    model[key] = value
                expected.append(stored)
            elif op[0] == "get":
                batch.append(("get", key))
                expected.append(model.get(key))
            else:
                batch.append(("delete", key))
                expected.append(key in model)
                model.pop(key, None)
        with Client(port=module_server.port) as c:
            assert c.batch(batch) == expected
