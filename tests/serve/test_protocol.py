"""Wire-codec unit tests: framing, reassembly at every split boundary,
typed rejection of malformed frames."""

from __future__ import annotations

import pytest

from repro.serve import protocol as proto
from repro.serve.protocol import FrameDecoder, ProtocolError


def frame(opcode=proto.OP_GET, rid=1, payload=b"key"):
    return proto.encode_frame(opcode, rid, payload)


class TestFraming:
    def test_roundtrip_single_frame(self):
        wire = frame(proto.OP_PUT, 42, b"payload")
        assert FrameDecoder().feed(wire) == [(proto.OP_PUT, 42, b"payload")]

    def test_empty_payload(self):
        wire = frame(proto.OP_STAT, 7, b"")
        assert FrameDecoder().feed(wire) == [(proto.OP_STAT, 7, b"")]

    def test_multiple_frames_one_feed(self):
        wire = frame(rid=1, payload=b"a") + frame(rid=2, payload=b"bb") + frame(rid=3)
        got = FrameDecoder().feed(wire)
        assert [rid for _, rid, _ in got] == [1, 2, 3]
        assert [p for _, _, p in got] == [b"a", b"bb", b"key"]

    def test_split_at_every_byte_boundary(self):
        """Frames split anywhere -- inside the header, inside the payload --
        decode identically to the unsplit stream."""
        stream = (
            frame(proto.OP_PUT, 1, proto.encode_put(b"k", b"v"))
            + frame(proto.OP_GET, 2, b"k")
            + frame(proto.OP_PING, 3, b"")
        )
        expected = FrameDecoder().feed(stream)
        assert len(expected) == 3
        for cut in range(len(stream) + 1):
            dec = FrameDecoder()
            got = dec.feed(stream[:cut]) + dec.feed(stream[cut:])
            assert got == expected, f"differs when split at byte {cut}"

    def test_byte_at_a_time(self):
        stream = frame(rid=5, payload=b"abc") + frame(rid=6, payload=b"")
        dec = FrameDecoder()
        got = []
        for i in range(len(stream)):
            got.extend(dec.feed(stream[i : i + 1]))
        assert [rid for _, rid, _ in got] == [5, 6]
        assert dec.pending == 0

    def test_partial_frame_stays_pending(self):
        wire = frame(payload=b"0123456789")
        dec = FrameDecoder()
        assert dec.feed(wire[:-1]) == []
        assert dec.pending == len(wire) - 1
        assert dec.feed(wire[-1:]) == [(proto.OP_GET, 1, b"0123456789")]


class TestFramingErrors:
    def test_bad_magic_is_fatal(self):
        with pytest.raises(ProtocolError) as exc:
            FrameDecoder().feed(b"\x00\x00" + frame()[2:])
        assert exc.value.fatal
        assert exc.value.status == proto.ST_BAD_REQUEST

    def test_bad_version_is_fatal(self):
        wire = bytearray(frame(rid=9))
        wire[2] = 99
        with pytest.raises(ProtocolError) as exc:
            FrameDecoder().feed(bytes(wire))
        assert exc.value.fatal
        assert exc.value.request_id == 9

    def test_oversized_length_is_typed_and_fatal(self):
        dec = FrameDecoder(max_frame=64)
        header = proto.HEADER.pack(proto.MAGIC, proto.VERSION, proto.OP_PUT, 17, 65)
        with pytest.raises(ProtocolError) as exc:
            dec.feed(header)
        assert exc.value.status == proto.ST_TOO_BIG
        assert exc.value.request_id == 17
        # after a framing error the decoder refuses to resync
        with pytest.raises(ProtocolError):
            dec.feed(frame())

    def test_garbage_after_valid_frame(self):
        dec = FrameDecoder()
        wire = frame(rid=3) + b"\xde\xad\xbe\xef" * 4
        with pytest.raises(ProtocolError):
            dec.feed(wire)


class TestPayloadCodecs:
    @pytest.mark.parametrize("replace", [True, False])
    def test_put_roundtrip(self, replace):
        payload = proto.encode_put(b"key", b"value" * 10, replace)
        assert proto.decode_put(payload) == (b"key", b"value" * 10, replace)

    def test_put_empty_value(self):
        assert proto.decode_put(proto.encode_put(b"k", b"")) == (b"k", b"", True)

    def test_put_empty_key_rejected(self):
        with pytest.raises(ProtocolError):
            proto.encode_put(b"", b"v")
        payload = proto._PUT_HDR.pack(1, 0) + b"value"
        with pytest.raises(ProtocolError):
            proto.decode_put(payload)

    def test_put_truncated_payloads(self):
        with pytest.raises(ProtocolError):
            proto.decode_put(b"\x01")
        # klen overruns the payload
        with pytest.raises(ProtocolError):
            proto.decode_put(proto._PUT_HDR.pack(1, 100) + b"short")

    def test_batch_roundtrip(self):
        ops = [
            (proto.OP_PUT, proto.encode_put(b"a", b"1")),
            (proto.OP_GET, b"a"),
            (proto.OP_DELETE, b"a"),
        ]
        assert proto.decode_batch(proto.encode_batch(ops)) == ops

    def test_batch_results_roundtrip(self):
        results = [(proto.ST_OK, b"x"), (proto.ST_NOT_FOUND, b""), (proto.ST_OK, b"\x01")]
        wire = proto.encode_batch_results(results)
        assert proto.decode_batch_results(wire) == results

    def test_batch_rejects_nesting_and_control_ops(self):
        for opcode in (proto.OP_BATCH, proto.OP_STAT, proto.OP_PING, 0x7F):
            with pytest.raises(ProtocolError):
                proto.encode_batch([(opcode, b"")])
            wire = proto._U32.pack(1) + proto._SUBOP.pack(opcode, 0)
            with pytest.raises(ProtocolError):
                proto.decode_batch(wire)

    def test_batch_truncations(self):
        ops = [(proto.OP_GET, b"abcdef")]
        wire = proto.encode_batch(ops)
        with pytest.raises(ProtocolError):
            proto.decode_batch(wire[:-1])  # sub-frame overrun
        with pytest.raises(ProtocolError):
            proto.decode_batch(wire + b"x")  # trailing bytes
        with pytest.raises(ProtocolError):
            proto.decode_batch(b"\x00")  # missing count
        # count says 2, only 1 present
        wire2 = proto._U32.pack(2) + wire[4:]
        with pytest.raises(ProtocolError):
            proto.decode_batch(wire2)
