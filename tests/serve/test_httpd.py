"""HTTP facade hardening: concurrent scrapes under write load, method
and path rejection, the /debug endpoints, and a lint-clean /metrics."""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.promlint import lint
from repro.serve.client import Client
from repro.serve.server import ServerConfig


def _get(st, path: str, timeout: float = 10.0):
    url = f"http://127.0.0.1:{st.http_port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as r:
        return r.status, r.read()


def _status_of(st, path: str, method: str = "GET") -> int:
    conn = http.client.HTTPConnection("127.0.0.1", st.http_port, timeout=10)
    try:
        conn.request(method, path)
        return conn.getresponse().status
    finally:
        conn.close()


class TestConcurrentScrapes:
    def test_metrics_and_stat_during_write_load(self, server_factory):
        """/metrics and /stat keep answering -- and parsing -- while the
        binary port takes a write-heavy workload."""
        st = server_factory(http=True)
        stop = threading.Event()
        errors: list = []

        def writer(seed: int):
            try:
                with Client(port=st.port) as c:
                    i = 0
                    while not stop.is_set():
                        c.batch(
                            [
                                ("put", b"w%d-%d" % (seed, i + j), b"v" * 64)
                                for j in range(16)
                            ]
                        )
                        i += 16
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(15):
                status, body = _get(st, "/metrics")
                assert status == 200
                assert lint(body.decode()) == []
                status, body = _get(st, "/stat")
                assert status == 200
                stat = json.loads(body)
                assert "server" in stat and "db" in stat
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors

    def test_scrape_sees_live_pressure_gauges(self, server_factory):
        st = server_factory(http=True)
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
            _, body = _get(st, "/metrics")
        text = body.decode()
        for gauge in (
            "repro_server_inflight",
            "repro_server_batch_queue_depth",
            "repro_server_connections_active",
        ):
            assert gauge in text, f"{gauge} missing from /metrics"
        # the scrape itself holds no connection on the KV port
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_server_connections_active ")
        )
        assert float(line.split()[1]) >= 1  # our Client is connected


class TestRejections:
    def test_unknown_path_404(self, server_factory):
        st = server_factory(http=True)
        assert _status_of(st, "/nope") == 404
        assert _status_of(st, "/kv") == 404  # no trailing key segment
        assert _status_of(st, "/metricsx") == 404

    def test_wrong_methods_405(self, server_factory):
        st = server_factory(http=True)
        for path in ("/metrics", "/stat", "/healthz", "/debug/slow",
                     "/debug/timeseries", "/trace"):
            assert _status_of(st, path, "POST") == 405, path
        assert _status_of(st, "/kv/some-key", "PATCH") == 405

    def test_empty_kv_key_400(self, server_factory):
        st = server_factory(http=True)
        assert _status_of(st, "/kv/") == 400

    def test_garbage_request_line_400(self, server_factory):
        st = server_factory(http=True)
        with socket.create_connection(("127.0.0.1", st.http_port), timeout=10) as s:
            s.sendall(b"NOT-HTTP\r\n\r\n")
            reply = s.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_oversized_body_413(self, server_factory):
        st = server_factory(http=True)
        limit = st.server.config.max_frame
        conn = http.client.HTTPConnection("127.0.0.1", st.http_port, timeout=10)
        try:
            conn.request(
                "PUT", "/kv/big", body=b"", headers={"Content-Length": str(limit + 1)}
            )
            assert conn.getresponse().status == 413
        finally:
            conn.close()


class TestDebugEndpoints:
    def test_slow_404_when_disabled(self, server_factory):
        st = server_factory(http=True)
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(st, "/debug/slow")
        assert exc.value.code == 404
        assert b"--slow-ms" in exc.value.read()

    def test_slow_serves_captures(self, server_factory):
        st = server_factory(
            http=True,
            config=ServerConfig(port=0, http_port=0, slow_ms=0.0),
        )
        st.server.db.enable_tracing()
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
            assert c.get(b"k") == b"v"
        # the capture lands when the request task finishes observing;
        # poll rather than racing it
        for _ in range(100):
            _, body = _get(st, "/debug/slow")
            doc = json.loads(body)
            if doc["captured"] >= 2:
                break
        assert doc["threshold_ms"] == 0.0
        ops = {e["op"] for e in doc["entries"]}
        assert {"serve.put", "serve.get"} <= ops
        traced = [e for e in doc["entries"] if "spans" in e]
        assert traced and all(e["spans"] for e in traced)

    def test_timeseries_404_when_disabled(self, server_factory):
        st = server_factory(
            http=True,
            config=ServerConfig(port=0, http_port=0, timeseries_interval=0),
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(st, "/debug/timeseries")
        assert exc.value.code == 404

    def test_timeseries_serves_deltas(self, server_factory):
        st = server_factory(
            http=True,
            config=ServerConfig(port=0, http_port=0, timeseries_interval=0.05),
        )
        with Client(port=st.port) as c:
            for i in range(50):
                c.put(b"t%d" % i, b"v")
            doc = None
            for _ in range(200):
                _, body = _get(st, "/debug/timeseries")
                doc = json.loads(body)
                if doc["samples"]:
                    break
            assert doc["samples"], "sampler task never recorded an entry"
        assert doc["interval"] == 0.05
        deltas: dict = {}
        for s in doc["samples"]:
            for path, d in s["deltas"].items():
                deltas[path] = deltas.get(path, 0.0) + d
        assert deltas.get("server.ops.put") == pytest.approx(50.0)

    def test_timeseries_off_without_http_facade(self, server_factory):
        st = server_factory()  # no HTTP port: nothing to serve it on
        assert st.server.timeseries is None
