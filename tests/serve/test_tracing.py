"""End-to-end request tracing: wire context, causal span trees across
client -> connection -> coalescer -> engine batch -> WAL fsync, slow-op
capture, and the merged Chrome trace."""

from __future__ import annotations

import pytest

from repro.obs.export import merge_chrome_traces
from repro.obs.trace import FlightRecorder, Tracer
from repro.serve import protocol as proto
from repro.serve.client import Client
from repro.serve.protocol import FrameDecoder, ProtocolError
from repro.serve.server import ServerConfig


# -- wire-level trace context --------------------------------------------------


class TestWireContext:
    def test_untraced_frames_are_byte_identical_v1(self):
        wire = proto.encode_frame(proto.OP_GET, 7, b"key")
        assert wire[2] == proto.VERSION
        (frame,) = FrameDecoder().feed(wire)
        assert frame == (proto.OP_GET, 7, b"key")
        assert frame.trace is None

    def test_v2_roundtrip(self):
        ctx = (0xDEADBEEF12345678, 0x42)
        wire = proto.encode_frame(proto.OP_PUT, 9, b"payload", ctx)
        assert wire[2] == proto.VERSION_TRACED
        (frame,) = FrameDecoder().feed(wire)
        assert frame == (proto.OP_PUT, 9, b"payload")  # tuple shape unchanged
        assert frame.trace == ctx

    def test_v2_empty_payload(self):
        wire = proto.encode_frame(proto.OP_STAT, 1, b"", (5, 6))
        (frame,) = FrameDecoder().feed(wire)
        assert frame == (proto.OP_STAT, 1, b"")
        assert frame.trace == (5, 6)

    def test_trace_ids_masked_to_64_bits(self):
        wire = proto.encode_frame(proto.OP_PING, 1, b"", (1 << 70 | 3, -1))
        (frame,) = FrameDecoder().feed(wire)
        assert frame.trace == (3, (1 << 64) - 1)

    def test_mixed_versions_one_stream(self):
        stream = proto.encode_frame(proto.OP_GET, 1, b"a") + proto.encode_frame(
            proto.OP_GET, 2, b"b", (9, 9)
        )
        frames = FrameDecoder().feed(stream)
        assert [f.trace for f in frames] == [None, (9, 9)]

    def test_v2_shorter_than_context_is_fatal(self):
        header = proto.HEADER.pack(
            proto.MAGIC, proto.VERSION_TRACED, proto.OP_GET, 1, 8
        )
        dec = FrameDecoder()
        with pytest.raises(ProtocolError):
            dec.feed(header + b"\x00" * 8)

    def test_unknown_version_still_fatal(self):
        header = proto.HEADER.pack(proto.MAGIC, 3, proto.OP_GET, 1, 0)
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(header)

    def test_traced_client_against_untraced_server(self, server):
        """A v2-stamping client works against a server that never
        enabled tracing: context is carried, adopted into nothing."""
        with Client(port=server.port) as c:
            c.enable_tracing()
            assert c.put(b"k", b"v") is True
            assert c.get(b"k") == b"v"
            spans = c.tracer.recorder.events()
        assert {s["name"] for s in spans} == {"client.put", "client.get"}
        assert all("status" in s["attrs"] for s in spans)


# -- detached spans (the tracer primitives the serve layer runs on) ------------


class TestDetachedSpans:
    def test_open_close_does_not_touch_thread_stack(self):
        tracer = Tracer(enabled=True, recorder=FlightRecorder())
        detached = tracer.open_span("request", "serve")
        with tracer.span("engine_op"):
            pass
        tracer.close_span(detached)
        by_name = {r["name"]: r for r in tracer.recorder.events()}
        # the engine op did NOT become a child of the detached span
        assert by_name["engine_op"]["parent"] is None
        assert by_name["request"]["parent"] is None

    def test_attach_lends_span_to_worker(self):
        tracer = Tracer(enabled=True, recorder=FlightRecorder())
        lent = tracer.open_span("batch", "serve")
        with tracer.attach(lent):
            with tracer.span("put_many"):
                pass
        with tracer.span("outside"):
            pass
        tracer.close_span(lent)
        by_name = {r["name"]: r for r in tracer.recorder.events()}
        assert by_name["put_many"]["parent"] == lent.id
        assert by_name["outside"]["parent"] is None

    def test_links_survive_to_record_and_chrome_args(self):
        from repro.obs.export import to_chrome_trace

        tracer = Tracer(enabled=True, recorder=FlightRecorder())
        sid = tracer.complete("exec", 0.0, 0.001, "serve", links=[11, 22])
        (rec,) = tracer.recorder.events()
        assert rec["id"] == sid
        assert rec["links"] == [11, 22]
        (ev,) = to_chrome_trace([rec])
        assert ev["args"]["links"] == [11, 22]

    def test_unlinked_records_omit_links_key(self):
        tracer = Tracer(enabled=True, recorder=FlightRecorder())
        tracer.complete("plain", 0.0, 0.001)
        (rec,) = tracer.recorder.events()
        assert "links" not in rec


# -- the full causal tree ------------------------------------------------------


def _traced_roundtrip(st, work):
    """Enable tracing on both ends, run ``work(client)``, return
    (client_records, client_epoch, server_records, server_epoch).

    The server is drained (stopped) before its recorder is read: the
    root serve span is recorded in the request task's ``finally``, which
    the event loop may still be running when the client has its
    response."""
    tracer = st.server.db.enable_tracing(ring_capacity=None)
    with Client(port=st.port) as c:
        ctracer = c.enable_tracing()
        work(c)
        client_recs, client_epoch = ctracer.recorder.events(), ctracer.epoch
    st.stop()  # graceful drain; idempotent with the fixture teardown
    return (
        client_recs,
        client_epoch,
        st.server.db.flight_recorder.events(),
        tracer.epoch,
    )


class TestCausalTree:
    def test_single_trace_spans_client_to_wal_fsync(self, server_factory):
        st = server_factory(durability="wal+fsync")

        def work(c):
            rids = [c.send("put", b"k%d" % i, b"v%d" % i) for i in range(16)]
            assert all(c.result(r) for r in rids)

        client_recs, _, server_recs, _ = _traced_roundtrip(st, work)

        by_id = {r["id"]: r for r in server_recs if r.get("id") is not None}
        roots = [r for r in server_recs if r["name"] == "serve.put"]
        assert len(roots) == 16
        client_span_ids = {
            r["id"] for r in client_recs if r["name"] == "client.put"
        }
        for root in roots:
            # wire adoption: the root names the client trace and span
            assert len(root["attrs"]["trace_id"]) == 16
            assert root["attrs"]["remote_span"] in client_span_ids

        # every request got queue_wait + batch_exec children
        for child_name in ("queue_wait", "batch_exec"):
            children = [r for r in server_recs if r["name"] == child_name]
            assert {c["parent"] for c in children} == {r["id"] for r in roots}

        # coalesce.exec spans link back to member requests, and the
        # engine batch + WAL spans nest under them
        execs = [r for r in server_recs if r["name"] == "coalesce.exec"]
        assert execs
        linked = set()
        for ex in execs:
            assert ex["links"]
            linked.update(ex["links"])
        assert linked == {r["id"] for r in roots}

        exec_ids = {e["id"] for e in execs}
        put_many = [r for r in server_recs if r["name"] == "put_many"]
        assert put_many and all(r["parent"] in exec_ids for r in put_many)
        fsyncs = [
            r for r in server_recs
            if r["name"] == "wal_fsync" and r["type"] == "span"
        ]
        waits = [
            r for r in server_recs
            if r["name"] == "wal_commit_wait" and r["type"] == "span"
        ]
        assert fsyncs and waits
        for rec in fsyncs + waits:
            assert rec["parent"] in exec_ids
            assert "lsn" in rec["attrs"]
        assert any(r["attrs"].get("leader") for r in fsyncs)

    def test_group_commit_one_fsync_many_committers(self, server_factory):
        """Pipelined writers share fsyncs: fewer fsync spans than
        commit_wait spans, and every committer's wait is attributed."""
        st = server_factory(durability="wal+fsync")

        def work(c):
            rids = [c.send("put", b"gc%d" % i, b"v") for i in range(64)]
            assert all(c.result(r) for r in rids)

        _, _, server_recs, _ = _traced_roundtrip(st, work)
        fsyncs = [
            r for r in server_recs
            if r["name"] == "wal_fsync" and r["type"] == "span"
        ]
        waits = [
            r for r in server_recs
            if r["name"] == "wal_commit_wait" and r["type"] == "span"
        ]
        assert len(waits) >= len(fsyncs)
        # a leader fsync covers everything up to target_lsn
        assert all("target_lsn" in r["attrs"] for r in fsyncs)

    def test_batch_frame_one_context_per_run_spans(self, server_factory):
        st = server_factory()

        def work(c):
            res = c.batch(
                [("put", b"b1", b"v"), ("put", b"b2", b"v"),
                 ("get", b"b1"), ("delete", b"b2")]
            )
            assert res == [True, True, b"v", True]

        client_recs, _, server_recs, _ = _traced_roundtrip(st, work)
        # ONE client span, ONE wire context for the whole frame
        assert sum(1 for r in client_recs if r["name"] == "client.batch") == 1
        roots = [r for r in server_recs if r["name"] == "serve.batch"]
        assert len(roots) == 1
        root = roots[0]
        # per-run child spans under the frame's root: put x2 / get / delete
        runs = [r for r in server_recs if r["name"].startswith("batch.run.")]
        assert [r["name"] for r in runs] == [
            "batch.run.put", "batch.run.get", "batch.run.delete"
        ] or {r["name"] for r in runs} == {
            "batch.run.put", "batch.run.get", "batch.run.delete"
        }
        assert all(r["parent"] == root["id"] for r in runs)
        assert next(
            r for r in runs if r["name"] == "batch.run.put"
        )["attrs"]["ops"] == 2
        # the runs' queue_wait/batch_exec hang off the run spans
        run_ids = {r["id"] for r in runs}
        waits = [r for r in server_recs if r["name"] == "queue_wait"]
        assert waits and all(r["parent"] in run_ids for r in waits)

    def test_merged_chrome_trace_has_flow_arrows(self, server_factory):
        st = server_factory()

        def work(c):
            rids = [c.send("put", b"m%d" % i, b"v") for i in range(8)]
            assert all(c.result(r) for r in rids)
            assert c.get(b"m0") == b"v"

        client_recs, c_epoch, server_recs, s_epoch = _traced_roundtrip(st, work)
        merged = merge_chrome_traces(
            [
                {"records": client_recs, "epoch": c_epoch, "label": "client"},
                {"records": server_recs, "epoch": s_epoch, "label": "server"},
            ]
        )
        names = {
            e["args"]["name"] for e in merged if e["ph"] == "M"
        }
        assert names == {"client", "server"}
        starts = {e["id"] for e in merged if e.get("ph") == "s"}
        finishes = {e["id"] for e in merged if e.get("ph") == "f"}
        assert len(starts) == 9  # one flow per request
        # every server-side adoption pairs with a client-side start
        assert finishes and finishes <= starts
        # distinct pids keep the processes on separate tracks
        assert {e["pid"] for e in merged} == {0, 1}

    def test_tracing_only_client_side_produces_no_flow_finish(self, server):
        with Client(port=server.port) as c:
            ctracer = c.enable_tracing()
            c.put(b"k", b"v")
            recs, epoch = ctracer.recorder.events(), ctracer.epoch
        merged = merge_chrome_traces(
            [{"records": recs, "epoch": epoch, "label": "client"}]
        )
        assert any(e.get("ph") == "s" for e in merged)
        assert not any(e.get("ph") == "f" for e in merged)


# -- slow-op capture -----------------------------------------------------------


class TestSlowCapture:
    def test_slow_get_is_captured_with_tree(self, server_factory):
        st = server_factory(
            config=ServerConfig(port=0, slow_ms=0.0)  # everything breaches
        )
        st.server.db.enable_tracing()
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
            assert c.get(b"k") == b"v"
        st.stop()  # drain so every request's observe has run
        slow = st.server.slowlog.as_dict()
        assert slow["captured"] >= 2
        ops = [e["op"] for e in slow["entries"]]
        assert "serve.get" in ops and "serve.put" in ops
        entry = next(e for e in slow["entries"] if e["op"] == "serve.get")
        names = {s["name"] for s in entry["spans"]}
        assert {"serve.get", "queue_wait", "coalesce.exec", "batch_exec"} <= names

    def test_fast_ops_not_captured(self, server_factory):
        st = server_factory(
            config=ServerConfig(port=0, slow_ms=60_000.0)
        )
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
        assert st.server.slowlog.as_dict()["captured"] == 0

    def test_untraced_slow_entry_degrades_gracefully(self, server_factory):
        st = server_factory(config=ServerConfig(port=0, slow_ms=0.0))
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
        st.stop()
        entry = st.server.slowlog.entries()[0]
        assert "spans" not in entry
        assert entry["dur_ms"] >= 0

    def test_disabled_by_default(self, server):
        assert server.server.slowlog is None
