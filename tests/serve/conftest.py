"""Shared serving-layer fixtures: the in-process loopback server.

``server_factory`` builds a ``concurrent=True`` table, wraps it in a
:class:`~repro.serve.server.ServerThread` (the library's reusable
in-process fixture) on an ephemeral port, and guarantees graceful
shutdown at teardown -- tests never pick ports or leak threads.
"""

from __future__ import annotations

import pytest

from repro.access.db import db_open
from repro.serve.server import ServerConfig, ServerThread


@pytest.fixture
def server_factory(tmp_path):
    """``make(path=None, http=False, config=None, **open_params) ->
    ServerThread``; every server started is stopped at teardown."""
    started: list[ServerThread] = []
    counter = [0]

    def make(path="auto", *, http=False, config=None, **open_params):
        if path == "auto":
            counter[0] += 1
            path = str(tmp_path / f"served-{counter[0]}.db")
        open_params.setdefault("concurrent", True)
        db = db_open(path, "hash", "c", **open_params)
        cfg = config or ServerConfig(port=0, http_port=0 if http else None)
        st = ServerThread(db, cfg, owns_db=True)
        started.append(st)
        return st.start()

    yield make
    for st in reversed(started):
        st.stop()


@pytest.fixture
def server(server_factory):
    """One plain served hash table (no HTTP facade, no WAL)."""
    return server_factory()
