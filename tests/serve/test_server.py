"""Server behavior over the loopback: ops, pipelining, backpressure,
the HTTP facade, graceful shutdown, and serve spans in ``tools top``."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

import repro
from repro.serve import protocol as proto
from repro.serve.client import Client, ServerError
from repro.serve.server import ServerConfig
from repro.tools.trace import render_top


class TestBasicOps:
    def test_roundtrip(self, server):
        with Client(port=server.port) as c:
            assert c.ping(b"x") == b"x"
            assert c.put(b"k", b"v") is True
            assert c.get(b"k") == b"v"
            assert c.get(b"absent") is None
            assert c.delete(b"k") is True
            assert c.delete(b"k") is False

    def test_replace_false(self, server):
        with Client(port=server.port) as c:
            assert c.put(b"k", b"first", replace=False) is True
            assert c.put(b"k", b"second", replace=False) is False
            assert c.get(b"k") == b"first"

    def test_large_values(self, server):
        value = bytes(range(256)) * 512  # 128 KiB, spans many big-pair pages
        with Client(port=server.port) as c:
            assert c.put(b"big", value) is True
            assert c.get(b"big") == value

    def test_binary_keys(self, server):
        key = bytes(range(1, 256))
        with Client(port=server.port) as c:
            c.put(key, b"\x00binary\xff")
            assert c.get(key) == b"\x00binary\xff"

    def test_stat(self, server):
        with Client(port=server.port) as c:
            c.put(b"k", b"v")
            stat = c.stat()
        assert stat["db"]["type"] == "hash"
        assert stat["server"]["ops"]["put"] == 1
        assert stat["server"]["connections_total"] >= 1
        assert stat["server"]["latency"]["put"]["count"] == 1
        assert stat["server"]["latency"]["put"]["unit"] == "ms"

    def test_batch_sequential_semantics(self, server):
        with Client(port=server.port) as c:
            res = c.batch(
                [
                    ("put", b"k", b"v1"),
                    ("get", b"k"),
                    ("put", b"k", b"v2"),
                    ("get", b"k"),
                    ("delete", b"k"),
                    ("get", b"k"),
                    ("delete", b"k"),
                ]
            )
        assert res == [True, b"v1", True, b"v2", True, None, False]

    def test_batch_coalesces_across_ops(self, server):
        with Client(port=server.port) as c:
            n0 = c.stat()["server"]["batch"]["batches"]
            c.batch([("put", f"k{i}".encode(), b"v") for i in range(100)])
            n1 = c.stat()["server"]["batch"]["batches"]
        # 100 puts became a handful of engine batches, not 100
        assert n1 - n0 < 10


class TestPipelining:
    def test_out_of_order_result_claims(self, server):
        with Client(port=server.port) as c:
            for i in range(20):
                c.put(f"k{i}".encode(), f"v{i}".encode())
            rids = [c.send("get", f"k{i}".encode()) for i in range(20)]
            values = {rid: c.result(rid) for rid in reversed(rids)}
        assert [values[r] for r in rids] == [f"v{i}".encode() for i in range(20)]

    def test_deep_pipeline_under_small_window(self, server_factory):
        st = server_factory(config=ServerConfig(port=0, max_inflight=4))
        with Client(port=st.port) as c:
            rids = [c.send("put", f"k{i}".encode(), b"v" * 100) for i in range(200)]
            assert all(c.result(r) is True for r in rids)
            rids = [c.send("get", f"k{i}".encode()) for i in range(200)]
            assert all(c.result(r) == b"v" * 100 for r in rids)

    def test_mixed_op_pipeline_is_ordered(self, server):
        """put/get/delete interleaved on one key through the coalescer
        keep arrival order (cut batches, never reordered)."""
        with Client(port=server.port) as c:
            rids = []
            for i in range(30):
                rids.append(("put", c.send("put", b"key", str(i).encode())))
                rids.append(("get", c.send("get", b"key")))
            results = {rid: c.result(rid) for _, rid in rids}
        for i in range(30):
            get_rid = rids[2 * i + 1][1]
            assert results[get_rid] == str(i).encode()


class TestTypedErrors:
    def test_unknown_opcode_keeps_connection(self, server):
        with Client(port=server.port) as c:
            c._next_id += 1
            rid = c._next_id
            c.sock.sendall(proto.encode_frame(0x7F, rid, b""))
            c._sent[rid] = ("ping",)
            with pytest.raises(ServerError) as exc:
                c.result(rid)
            assert exc.value.status == proto.ST_BAD_REQUEST
            # framing intact: the connection still serves
            assert c.ping(b"still-alive") == b"still-alive"

    def test_malformed_put_payload_keeps_connection(self, server):
        with Client(port=server.port) as c:
            c._next_id += 1
            rid = c._next_id
            c.sock.sendall(proto.encode_frame(proto.OP_PUT, rid, b"\x01"))
            c._sent[rid] = ("ping",)
            with pytest.raises(ServerError) as exc:
                c.result(rid)
            assert exc.value.status == proto.ST_BAD_REQUEST
            assert c.put(b"k", b"v") is True

    def test_oversized_frame_disconnects(self, server_factory):
        st = server_factory(config=ServerConfig(port=0, max_frame=4096))
        with Client(port=st.port, max_frame=1 << 20) as c:
            rid = c.send("put", b"k", b"v" * 8192)
            with pytest.raises((ServerError, ConnectionError)) as exc:
                c.result(rid)
            if isinstance(exc.value, ServerError):
                assert exc.value.status == proto.ST_TOO_BIG
        # the server survives and accepts a fresh connection
        with Client(port=st.port) as c2:
            assert c2.put(b"k", b"small") is True


class TestHttpFacade:
    def _url(self, st, path):
        return f"http://127.0.0.1:{st.http_port}{path}"

    def test_endpoints(self, server_factory):
        st = server_factory(http=True)
        with Client(port=st.port) as c:
            c.put(b"hello", b"world")
        with urllib.request.urlopen(self._url(st, "/healthz")) as r:
            assert r.read() == b"ok\n"
        with urllib.request.urlopen(self._url(st, "/kv/hello")) as r:
            assert r.read() == b"world"
        with urllib.request.urlopen(self._url(st, "/stat")) as r:
            stat = json.loads(r.read())
        assert stat["server"]["ops"]["put"] == 1
        with urllib.request.urlopen(self._url(st, "/metrics")) as r:
            text = r.read().decode()
        assert "# TYPE repro_server_latency_put_seconds summary" in text
        assert "repro_server_ops_put 1" in text
        assert "repro_db_type" not in text  # string leaves fold into info

    def test_kv_put_delete(self, server_factory):
        st = server_factory(http=True)
        req = urllib.request.Request(
            self._url(st, "/kv/a%2Fb"), data=b"value-bytes", method="PUT"
        )
        with urllib.request.urlopen(req) as r:
            assert r.status == 204
        with Client(port=st.port) as c:
            assert c.get(b"a/b") == b"value-bytes"
        req = urllib.request.Request(self._url(st, "/kv/a%2Fb"), method="DELETE")
        with urllib.request.urlopen(req) as r:
            assert r.status == 204
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(self._url(st, "/kv/a%2Fb"))
        assert exc.value.code == 404

    def test_unknown_route_404(self, server_factory):
        st = server_factory(http=True)
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(self._url(st, "/nope"))
        assert exc.value.code == 404


class TestServeSpans:
    def test_spans_carry_time_ms_and_rank_in_top(self, server_factory, tmp_path):
        st = server_factory()
        st.server.db.enable_tracing(ring_capacity=None)
        with Client(port=st.port) as c:
            for i in range(10):
                c.put(f"k{i}".encode(), b"v")
            for i in range(10):
                c.get(f"k{i}".encode())
        events = st.server.db.flight_recorder.events()
        serve_spans = [e for e in events if e["name"].startswith("serve.")]
        assert {e["name"] for e in serve_spans} >= {"serve.put", "serve.get"}
        for span in serve_spans:
            assert span["type"] == "span"
            assert span["attrs"]["time_ms"] == pytest.approx(span["dur"] * 1e3, rel=0.01)
        # engine spans from the batch executor share the same recorder
        engine = {e["name"] for e in events if e.get("cat") == "op"}
        assert "put_many" in engine or "put" in engine
        # and tools top ranks both side by side
        table = render_top(events)
        assert "serve.get" in table and "serve.put" in table

    def test_http_trace_endpoint(self, server_factory):
        st = server_factory(http=True)
        url = f"http://127.0.0.1:{st.http_port}/trace"
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(url)
        assert exc.value.code == 404  # tracing off
        st.server.db.enable_tracing()
        with Client(port=st.port) as c:
            c.put(b"k", b"v")
        with urllib.request.urlopen(url) as r:
            lines = [json.loads(line) for line in r.read().splitlines() if line]
        assert any(rec["name"] == "serve.put" for rec in lines)


class TestGracefulShutdown:
    def test_drain_sync_close(self, server_factory, tmp_path):
        path = str(tmp_path / "grace.db")
        st = server_factory(path)
        with Client(port=st.port) as c:
            for i in range(50):
                c.put(f"k{i}".encode(), f"v{i}".encode())
        st.stop()  # drain, sync, close (idempotent with fixture teardown)
        with repro.open(path, "r") as db:
            assert db[b"k49"] == b"v49"
            assert len(db) == 50

    def test_wal_checkpoint_on_stop(self, server_factory, tmp_path):
        path = str(tmp_path / "gracewal.db")
        st = server_factory(path, durability="wal")
        with Client(port=st.port) as c:
            c.batch([("put", f"k{i}".encode(), b"v" * 50) for i in range(40)])
        st.stop()
        with repro.open(path) as db:
            assert len(db) == 40
            assert db[b"k0"] == b"v" * 50

    def test_submit_after_stop_is_refused(self, server_factory):
        st = server_factory()
        port = st.port
        st.stop()
        with pytest.raises(OSError):
            Client(port=port, timeout=2.0)
