"""Multi-client linearizability under the request coalescer.

The server folds every connection's ops into shared engine batches, so
these tests aim concurrent clients at the spots where naive coalescing
would break ordering guarantees:

* ``replace=False`` races: the engine's insert-if-absent is the atomic
  claim primitive -- exactly one winner per key, and the stored value is
  the winner's, even when all contenders ride the same engine batch;
* per-key program order: one client's writes to a key are never
  reordered, so the final value is that client's last write;
* blind shared-key writes: the final value must be SOME client's last
  write (coalescing may pick the order, but can't invent values or
  resurrect overwritten ones).

No sleeps anywhere: threads synchronize on a barrier to maximize
contention, then join; assertions run after all acks are in.
"""

from __future__ import annotations

import threading

from repro.serve.client import Client

THREADS = 8
KEYS_PER_RACE = 25
WRITES_PER_KEY = 20


def _run_threads(n, fn):
    barrier = threading.Barrier(n)
    errors = []

    def wrap(tid):
        try:
            barrier.wait()
            fn(tid)
        except Exception as exc:  # surfaced after join
            errors.append((tid, exc))

    threads = [threading.Thread(target=wrap, args=(tid,)) for tid in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"worker failures: {errors!r}"


def test_replace_false_has_exactly_one_winner(server):
    """THREADS clients race to claim the same keys with insert-if-absent:
    exactly one winner per key, and the stored value names that winner."""
    wins: dict[int, list[tuple[bytes, bool]]] = {}

    def worker(tid):
        tag = b"claimant-%d" % tid
        with Client(port=server.port) as c:
            rids = [
                (b"race%d" % k, c.send("put", b"race%d" % k, tag, replace=False))
                for k in range(KEYS_PER_RACE)
            ]
            wins[tid] = [(key, c.result(rid)) for key, rid in rids]

    _run_threads(THREADS, worker)

    winners: dict[bytes, list[int]] = {}
    for tid, claims in wins.items():
        for key, won in claims:
            if won:
                winners.setdefault(key, []).append(tid)
    with Client(port=server.port) as c:
        for k in range(KEYS_PER_RACE):
            key = b"race%d" % k
            assert len(winners.get(key, [])) == 1, (
                f"{key!r}: winners {winners.get(key)}"
            )
            assert c.get(key) == b"claimant-%d" % winners[key][0]


def test_per_key_program_order_wins(server):
    """Each client hammers its OWN keys; the coalescer may merge clients'
    ops into shared batches but must keep each connection's per-key
    order, so every key ends at that client's last write."""

    def worker(tid):
        with Client(port=server.port) as c:
            rids = []
            for k in range(10):
                key = b"own-%d-%d" % (tid, k)
                for seq in range(WRITES_PER_KEY):
                    rids.append(c.send("put", key, b"seq-%d" % seq))
            assert all(c.result(r) is True for r in rids)

    _run_threads(THREADS, worker)
    with Client(port=server.port) as c:
        final = b"seq-%d" % (WRITES_PER_KEY - 1)
        for tid in range(THREADS):
            for k in range(10):
                assert c.get(b"own-%d-%d" % (tid, k)) == final


def test_shared_key_final_value_is_someones_last_write(server):
    """All clients blind-write the same keys.  Any interleaving is legal,
    but the final value must be some client's LAST write to that key --
    never an earlier (overwritten) write, never a phantom."""
    shared = [b"shared-%d" % i for i in range(5)]

    def worker(tid):
        with Client(port=server.port) as c:
            rids = []
            for seq in range(WRITES_PER_KEY):
                for key in shared:
                    rids.append(c.send("put", key, b"t%d-seq%d" % (tid, seq)))
            assert all(c.result(r) is True for r in rids)

    _run_threads(THREADS, worker)
    legal = {b"t%d-seq%d" % (tid, WRITES_PER_KEY - 1) for tid in range(THREADS)}
    with Client(port=server.port) as c:
        for key in shared:
            assert c.get(key) in legal


def test_concurrent_put_delete_race_is_consistent(server):
    """Half the clients put, half delete, one contested key.  Whatever
    interleaving the coalescer produces, the final state must be either
    absent or a value some putter actually wrote -- never garbage."""
    key = b"contested"

    def worker(tid):
        with Client(port=server.port) as c:
            if tid % 2 == 0:
                rids = [
                    c.send("put", key, b"p%d-%d" % (tid, seq))
                    for seq in range(WRITES_PER_KEY)
                ]
            else:
                rids = [c.send("delete", key) for _ in range(WRITES_PER_KEY)]
            for rid in rids:
                c.result(rid)  # deletes may be True or False; puts True

    _run_threads(THREADS, worker)
    legal = {None} | {
        b"p%d-%d" % (tid, seq)
        for tid in range(0, THREADS, 2)
        for seq in range(WRITES_PER_KEY)
    }
    with Client(port=server.port) as c:
        assert c.get(key) in legal


def test_batch_frames_are_atomic_blocks_per_connection(server):
    """Each client sends its writes as BATCH frames.  Sub-ops of one
    batch run in order against the engine, so a get appended to the same
    batch must observe the batch's own last put."""

    def worker(tid):
        key = b"batch-own-%d" % tid
        with Client(port=server.port) as c:
            for round_ in range(10):
                ops = [
                    ("put", key, b"r%d-w%d" % (round_, w)) for w in range(5)
                ] + [("get", key)]
                res = c.batch(ops)
                assert res[:5] == [True] * 5
                assert res[5] == b"r%d-w4" % round_

    _run_threads(THREADS, worker)
