"""Batch operations under the deterministic race harness.

The batched paths release and reacquire the table rwlock between bucket
groups, so an interleaving can cut a batch mid-way -- exactly the window
these schedules exercise.  Acceptance: recorded interleavings replay
byte-identically and every post-condition a batch guarantees per group
holds under any schedule.
"""

from __future__ import annotations

import pytest

from repro.access.db import db_open
from tests.concurrency.harness import RaceHarness

SEEDS = (3, 11, 23)


def _db(tmp_path, run: str):
    return db_open(
        tmp_path / f"batch-{run}.db", "hash", "n",
        concurrent=True, bsize=512, cachesize=2048,
    )


def _scripts():
    k = lambda i: f"key-{i:04d}".encode()  # noqa: E731
    return {
        "wbatch": [
            ("put_many", [(k(i), b"A" * 40) for i in range(30)]),
            ("put_many", [(k(i), b"B" * 40) for i in range(15, 45)]),
        ],
        "rbatch": [
            ("get_many", [k(i) for i in range(45)]),
            ("get_many", [k(i) for i in range(0, 45, 2)]),
        ],
        "dbatch": [("delete_many", [k(i) for i in range(0, 30, 3)])],
        "w1": [("put", k(i + 100), b"C" * 40) for i in range(10)],
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_interleavings_replay_identically(tmp_path, seed):
    db = _db(tmp_path, f"rec{seed}")
    try:
        out = RaceHarness(db, _scripts()).record(seed)
        assert not out.errors, out.errors
        schedule, digest = out.schedule, out.digest()
    finally:
        db.close()
    db = _db(tmp_path, f"rep{seed}")
    try:
        replayed = RaceHarness(db, _scripts()).replay(schedule)
        assert replayed.digest() == digest
    finally:
        db.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_postconditions_hold_under_any_schedule(tmp_path, seed):
    """Whatever the interleaving, the final table is consistent and every
    surviving key holds a value some complete batch wrote."""
    db = _db(tmp_path, f"post{seed}")
    try:
        out = RaceHarness(db, _scripts()).record(seed)
        assert not out.errors, out.errors
        db.table.check_invariants()
        valid = {b"A" * 40, b"B" * 40, b"C" * 40}
        for key, data in db.items():
            assert data in valid, (key, data)
    finally:
        db.close()


def test_batch_get_sees_atomic_groups(tmp_path):
    """A get_many group holds the read lock for the whole group: within
    one bucket, a concurrent writer's batch is either before or after."""
    db = _db(tmp_path, "atomic")
    try:
        keys = [f"k{i}".encode() for i in range(20)]
        db.put_many([(k, b"old") for k in keys])
        scripts = {
            "w": [("put_many", [(k, b"new") for k in keys])],
            "r": [("get_many", keys)],
        }
        out = RaceHarness(db, scripts).record(5)
        assert not out.errors, out.errors
        (_op, (status, values)), = out.logs["r"]
        assert status == "ok"
        assert set(values) <= {b"old", b"new"}
    finally:
        db.close()
