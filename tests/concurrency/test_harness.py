"""Replay determinism of the race harness.

Acceptance criterion of the concurrency PR: for each access method, at
least three distinct recorded interleavings replay byte-identically
(same :meth:`Outcome.digest`) across five runs, including interleavings
that cut inside composite operations at page-I/O yield points.
"""

from __future__ import annotations

import struct

import pytest

from repro.access.db import db_open
from repro.baselines.dbm.dbmfile import DbmFile
from tests.concurrency.harness import HarnessDeadlock, Outcome, RaceHarness

SEEDS = (1, 7, 42)
REPLAYS = 5


def _key(method: str, i: int) -> bytes:
    if method == "recno":
        return struct.pack(">Q", i + 1)  # record numbers are 1-based
    return f"key-{i:04d}".encode()


def _fresh(tmp_path, method: str, run: str):
    """A fresh concurrent handle plus the standard 4-worker script set.

    The tiny cache (four buffers) forces page faults and evictions in
    the middle of splits, so the interleavings cut inside composite
    operations, not just between them.
    """
    db = db_open(
        tmp_path / f"{method}-{run}.db", method, "n",
        concurrent=True, bsize=512, cachesize=2048,
    )
    k = lambda i: _key(method, i)  # noqa: E731
    scripts = {
        "w0": [("put", k(i), b"A" * 60) for i in range(40)],
        "w1": [("put", k(i), b"B" * 60) for i in range(20, 60)],
        "r0": [("get", k(i)) for i in range(40)] + [("scan",)],
        "d0": [("delete", k(i)) for i in range(0, 40, 3)],
    }
    return db, scripts


@pytest.mark.parametrize("method", ("hash", "btree", "recno"))
def test_three_interleavings_replay_byte_identical(tmp_path, method):
    schedules = []
    digests = []
    for seed in SEEDS:
        db, scripts = _fresh(tmp_path, method, f"rec{seed}")
        try:
            out = RaceHarness(db, scripts).record(seed)
            assert not out.errors, out.errors
        finally:
            db.close()
        schedules.append(out.schedule)
        digests.append(out.digest())
    # the three recorded interleavings are genuinely distinct
    assert len({tuple(s) for s in schedules}) == len(SEEDS)
    for seed, schedule, digest in zip(SEEDS, schedules, digests):
        for rep in range(REPLAYS):
            db, scripts = _fresh(tmp_path, method, f"s{seed}r{rep}")
            try:
                out = RaceHarness(db, scripts).replay(schedule)
            finally:
                db.close()
            assert out.digest() == digest, (
                f"{method} seed {seed} replay {rep} diverged"
            )


@pytest.mark.parametrize("method", ("hash", "btree", "recno"))
def test_interleavings_cut_inside_operations(tmp_path, method):
    """More grants than op boundaries == page-I/O yield points fired, so
    the schedule interleaves threads *inside* composite operations."""
    db, scripts = _fresh(tmp_path, method, "cuts")
    try:
        out = RaceHarness(db, scripts).record(3)
    finally:
        db.close()
    op_grants = sum(len(ops) + 1 for ops in scripts.values())
    assert len(out.schedule) > op_grants


def test_no_torn_values_and_complete_logs(tmp_path):
    """Every op completes exactly once with a logged outcome, and every
    surviving value is bytes some writer actually wrote -- a racing
    interleaving must never manufacture or tear a value."""
    db, scripts = _fresh(tmp_path, "hash", "model")
    try:
        out = RaceHarness(db, scripts).record(9)
        assert not out.errors, out.errors
    finally:
        db.close()
    for name, log in out.logs.items():
        assert len(log) == len(scripts[name])
    for _k, v in out.items:
        assert v in (b"A" * 60, b"B" * 60)
    # reads observed only written bytes or absence, never torn values
    for op, outcome in out.logs["r0"]:
        if op[0] == "get" and outcome[0] == "ok":
            assert outcome[1] in (None, b"A" * 60, b"B" * 60)


def test_harness_requires_concurrent_handle(tmp_path):
    db = db_open(tmp_path / "plain.db", "hash", "n")
    try:
        with pytest.raises(ValueError, match="concurrent"):
            RaceHarness(db, {"w": []})
    finally:
        db.close()


def test_baseline_record_replay(tmp_path):
    """The dbm baseline's exclusive guard is observable by the harness
    too: record/replay digests match on a fresh file."""
    def fresh(run):
        db = DbmFile(tmp_path / f"b{run}", "n", block_size=512, concurrent=True)
        scripts = {
            "w0": [("put", f"k{i}".encode(), b"x" * 40) for i in range(30)],
            "w1": [("delete", f"k{i}".encode()) for i in range(0, 30, 2)],
            "r0": [("get", f"k{i}".encode()) for i in range(30)],
        }
        return db, scripts

    db, scripts = fresh("rec")
    try:
        out = RaceHarness(db, scripts, apply=RaceHarness.apply_baseline).record(5)
        assert not out.errors, out.errors
    finally:
        db.close()
    for rep in range(2):
        db2, s2 = fresh(f"r{rep}")
        try:
            out2 = RaceHarness(db2, s2, apply=RaceHarness.apply_baseline).replay(
                out.schedule
            )
        finally:
            db2.close()
        assert out2.digest() == out.digest()


def test_outcome_digest_is_order_sensitive():
    a = Outcome(["x", "y"], {"x": []}, [], {})
    b = Outcome(["y", "x"], {"x": []}, [], {})
    assert a.digest() != b.digest()


def test_deadlock_reports_states():
    exc = HarnessDeadlock("harness stuck (all blocked); worker states: {}")
    assert "worker states" in str(exc)
