"""Unit tests for the locking hierarchy: RWLock, PageLatch, OwnedMutex."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.buffer import OwnedMutex
from repro.core.locking import NULL_GUARD, PageLatch, RWLock


def _in_thread(fn, *args):
    out = {}

    def body():
        try:
            out["result"] = fn(*args)
        except Exception as exc:  # surfaced by the caller
            out["error"] = exc

    t = threading.Thread(target=body, daemon=True)
    t.start()
    t.join(timeout=10)
    assert not t.is_alive(), "helper thread wedged"
    if "error" in out:
        raise out["error"]
    return out.get("result")


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Event()
        release = threading.Event()

        def reader():
            with lock.reader:
                inside.set()
                release.wait(timeout=10)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        assert inside.wait(timeout=10)
        # A second reader gets in while the first still holds.
        got_in = []
        with lock.reader:
            got_in.append(True)
        assert got_in
        release.set()
        t.join(timeout=10)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        order = []
        holding = threading.Event()
        release = threading.Event()

        def writer():
            with lock.writer:
                holding.set()
                release.wait(timeout=10)
                order.append("w1-out")

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert holding.wait(timeout=10)

        def contender(mode, tag):
            guard = lock.reader if mode == "r" else lock.writer
            with guard:
                order.append(tag)

        c1 = threading.Thread(target=contender, args=("r", "r"), daemon=True)
        c2 = threading.Thread(target=contender, args=("w", "w2"), daemon=True)
        c1.start()
        c2.start()
        time.sleep(0.05)
        assert order == []  # both stuck behind the writer
        release.set()
        t.join(timeout=10)
        c1.join(timeout=10)
        c2.join(timeout=10)
        assert order[0] == "w1-out"
        assert sorted(order[1:]) == ["r", "w2"]

    def test_fifo_writer_order(self):
        lock = RWLock()
        order = []
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with lock.writer:
                holding.set()
                release.wait(timeout=10)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        assert holding.wait(timeout=10)
        threads = []
        for i in range(4):
            def queued(tag=i):
                with lock.writer:
                    order.append(tag)
            q = threading.Thread(target=queued, daemon=True)
            q.start()
            # Let each contender enqueue before the next (arrival order is
            # what the FIFO guarantee is relative to).
            for _ in range(100):
                if len(lock._write_queue) > i:
                    break
                time.sleep(0.005)
            threads.append(q)
        release.set()
        t.join(timeout=10)
        for q in threads:
            q.join(timeout=10)
        assert order == [0, 1, 2, 3]

    def test_queued_writer_blocks_new_readers(self):
        lock = RWLock()
        reader_in = threading.Event()
        reader_release = threading.Event()

        def first_reader():
            with lock.reader:
                reader_in.set()
                reader_release.wait(timeout=10)

        r1 = threading.Thread(target=first_reader, daemon=True)
        r1.start()
        assert reader_in.wait(timeout=10)

        order = []

        def writer():
            with lock.writer:
                order.append("w")

        w = threading.Thread(target=writer, daemon=True)
        w.start()
        for _ in range(100):
            if lock._write_queue:
                break
            time.sleep(0.005)

        def late_reader():
            with lock.reader:
                order.append("r")

        r2 = threading.Thread(target=late_reader, daemon=True)
        r2.start()
        time.sleep(0.05)
        assert order == []  # r2 must not overtake the queued writer
        reader_release.set()
        for t in (r1, w, r2):
            t.join(timeout=10)
        assert order[0] == "w"

    def test_reentrant_read_write_and_read_in_write(self):
        lock = RWLock()
        with lock.writer:
            with lock.writer:
                assert lock.held_write()
            with lock.reader:  # read inside own write
                assert lock.held_read()
            assert lock.held_write()
        with lock.reader:
            with lock.reader:
                assert lock.held_read()
        assert not lock.held_read() and not lock.held_write()

    def test_upgrade_raises(self):
        lock = RWLock()
        with lock.reader:
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_observer_sees_block_and_acquire(self):
        lock = RWLock()
        events = []

        class Obs:
            def on_block(self, ident):
                events.append(("block", ident))

            def on_unblock(self, ident):
                events.append(("unblock", ident))

            def on_acquired(self, ident):
                events.append(("acquired", ident))

        lock.observer = Obs()
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with lock.writer:
                holding.set()
                release.wait(timeout=10)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        assert holding.wait(timeout=10)

        ident_box = {}

        def contender():
            ident_box["id"] = threading.get_ident()
            with lock.writer:
                pass

        c = threading.Thread(target=contender, daemon=True)
        c.start()
        for _ in range(100):
            if events:
                break
            time.sleep(0.005)
        release.set()
        t.join(timeout=10)
        c.join(timeout=10)
        ident = ident_box["id"]
        assert ("block", ident) in events
        assert ("unblock", ident) in events
        assert events[-1] == ("acquired", ident)
        # uncontended acquisition is silent
        events.clear()
        with lock.writer:
            pass
        assert events == []


class TestPageLatch:
    def test_reentrant_and_nonblocking(self):
        latch = PageLatch()
        with latch:
            with latch:  # a split mutates the page it just faulted
                pass
            # another thread cannot take it
            assert _in_thread(latch.acquire, False) is False
        assert _in_thread(latch.acquire, False) is True


class TestOwnedMutex:
    def test_ownership_and_reentrancy(self):
        m = OwnedMutex()
        assert not m.held_by_me()
        with m:
            assert m.held_by_me()
            with m:
                assert m.held_by_me()
            assert m.held_by_me()
            assert _in_thread(m.held_by_me) is False
        assert not m.held_by_me()

    def test_release_by_non_owner_raises(self):
        m = OwnedMutex()
        m.acquire()
        with pytest.raises(RuntimeError):
            _in_thread(m.release)
        m.release()


def test_null_guard_is_reusable():
    with NULL_GUARD:
        with NULL_GUARD:
            pass
