"""Free-running multi-thread stress: zero corruption under real races.

Unlike the harness tests, these let the OS scheduler interleave freely:
four threads hammer one concurrent handle with mixed operations, then
the format's own consistency checker must come back clean and every
surviving key must map to bytes some thread actually wrote.
"""

from __future__ import annotations

import struct
import threading

import pytest

from repro.access.db import db_open
from repro.baselines.dbm.dbmfile import DbmFile
from repro.baselines.gdbm.gdbm import Gdbm
from repro.baselines.sdbm.sdbm import Sdbm
from repro.core.errors import ConcurrentModificationError
from repro.core.table import HashTable
from repro.obs.registry import Counter, Histogram
from repro.storage.iostats import IOStats
from tests.concurrency.harness import engine_of

NTHREADS = 4
OPS_PER_THREAD = 300


def _run_threads(worker, n=NTHREADS):
    errors = []

    def guarded(t):
        try:
            worker(t)
        except Exception as exc:  # surfaced below with the thread id
            errors.append((t, exc))

    threads = [
        threading.Thread(target=guarded, args=(t,), daemon=True) for t in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "stress worker wedged"
    assert not errors, errors


def _value(t: int, i: int) -> bytes:
    return f"value-{t}-{i:04d}-".encode() + b"x" * (i % 53)


class TestAccessMethods:
    @pytest.mark.parametrize("method", ("hash", "btree", "recno"))
    def test_mixed_workload_zero_corruption(self, tmp_path, method):
        db = db_open(
            tmp_path / "t.db", method, "n",
            concurrent=True, bsize=512, cachesize=4096,
        )

        def key(t, i):
            # overlapping keyspace: threads race on the same keys
            n = (t * OPS_PER_THREAD + i) % 200
            if method == "recno":
                return struct.pack(">Q", n + 1)
            return f"key-{n:04d}".encode()

        legal = {
            key(t, i): {_value(tt, ii)
                        for tt in range(NTHREADS)
                        for ii in range(OPS_PER_THREAD)}
            for t in range(NTHREADS) for i in range(OPS_PER_THREAD)
        }

        def worker(t):
            for i in range(OPS_PER_THREAD):
                k = key(t, i)
                r = (t * 31 + i * 7) % 10
                if r < 5:
                    db.put(k, _value(t, i))
                elif r < 7:
                    db.delete(k)
                else:
                    got = db.get(k)
                    assert got is None or got in legal[k] or got == b"", got

        _run_threads(worker)
        # recno's renumbering moves values between keys (and writing past
        # the end materializes empty records), so only the value set is
        # checked; hash and btree keep key->value pairing.
        for k, v in db.items():
            assert v == b"" or any(v in s for s in legal.values()), (k, v)
        engine_of(db).check_invariants()
        db.close()

    def test_readers_race_writer_with_scans(self, tmp_path):
        db = db_open(
            tmp_path / "scan.db", "hash", "n",
            concurrent=True, bsize=512, cachesize=4096,
        )
        stop = threading.Event()
        cme_count = [0]

        def writer(_t):
            for i in range(600):
                db.put(f"k{i % 300}".encode(), _value(0, i))
            stop.set()

        def scanner(_t):
            while not stop.is_set():
                c = db.cursor()
                try:
                    pair = c.first()
                    while pair is not None:
                        pair = c.next()
                except ConcurrentModificationError:
                    cme_count[0] += 1  # legal: restart the scan

        errors = []

        def guarded(fn, t):
            try:
                fn(t)
            except Exception as exc:
                errors.append(exc)
                stop.set()

        threads = [threading.Thread(target=guarded, args=(writer, 0), daemon=True)]
        threads += [
            threading.Thread(target=guarded, args=(scanner, t), daemon=True)
            for t in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert not errors, errors
        db.table.check_invariants()
        db.close()

    def test_cursor_fails_fast_on_structure_change(self):
        """A hash cursor positioned before a split raises a typed
        ConcurrentModificationError instead of returning garbage."""
        t = HashTable.create(None, in_memory=True, concurrent=True,
                             bsize=128, ffactor=4)
        try:
            for i in range(20):
                t.put(f"k{i}".encode(), b"v")
            c = t.cursor()
            assert c.first() is not None
            splits_before = t.stats.splits
            i = 20
            while t.stats.splits == splits_before:
                t.put(f"k{i}".encode(), b"v")
                i += 1
            with pytest.raises(ConcurrentModificationError):
                while c.next() is not None:
                    pass
        finally:
            t.close()

    def test_single_threaded_cursor_never_raises_cme(self):
        """concurrent=False keeps the historical tolerant scan."""
        t = HashTable.create(None, in_memory=True, bsize=128, ffactor=4)
        try:
            for i in range(20):
                t.put(f"k{i}".encode(), b"v")
            c = t.cursor()
            c.first()
            for i in range(20, 200):
                t.put(f"k{i}".encode(), b"v")
            while c.next() is not None:
                pass  # may miss/duplicate keys, but never raises
        finally:
            t.close()


class TestBaselines:
    @pytest.mark.parametrize("maker", (
        lambda p: DbmFile(p / "d", "n", block_size=1024, concurrent=True),
        lambda p: Sdbm(p / "s", "n", block_size=1024, concurrent=True),
        lambda p: Gdbm(p / "g.db", "n", block_size=512, concurrent=True),
    ), ids=("dbm", "sdbm", "gdbm"))
    def test_mixed_workload_zero_corruption(self, tmp_path, maker):
        db = maker(tmp_path)

        def worker(t):
            for i in range(OPS_PER_THREAD):
                k = f"key-{(t * OPS_PER_THREAD + i) % 200:04d}".encode()
                r = (t * 31 + i * 7) % 10
                if r < 5:
                    db.store(k, _value(t, i))
                elif r < 7:
                    db.delete(k)
                else:
                    got = db.fetch(k)
                    assert got is None or got.startswith(b"value-"), got

        _run_threads(worker)
        assert db.check() == []
        for k, v in db.items():
            assert v.startswith(b"value-"), (k, v)
        db.close()


class TestThreadSafeCounters:
    def test_counter_exact_under_contention(self):
        c = Counter("n")
        c.make_threadsafe()

        def worker(_t):
            for _ in range(5000):
                c.inc()

        _run_threads(worker, n=8)
        assert c.value == 8 * 5000

    def test_histogram_exact_under_contention(self):
        h = Histogram("lat")
        h.make_threadsafe()

        def worker(t):
            for i in range(2000):
                h.observe(i % 7)

        _run_threads(worker, n=4)
        assert h.count == 4 * 2000
        assert h.total == 4 * sum(i % 7 for i in range(2000))

    def test_iostats_exact_under_contention(self):
        s = IOStats().make_threadsafe()

        def worker(_t):
            for _ in range(3000):
                s.record_read(512)
                s.record_write(512)

        _run_threads(worker, n=4)
        assert s.page_reads == 4 * 3000
        assert s.page_writes == 4 * 3000
        assert s.bytes_read == 4 * 3000 * 512

    def test_table_stats_counters_exact(self):
        t = HashTable.create(None, in_memory=True, concurrent=True)
        t.put(b"k", b"v")

        def worker(_t):
            for _ in range(2000):
                assert t.get(b"k") == b"v"

        _run_threads(worker, n=4)
        assert t.stats.gets == 4 * 2000
        t.close()
