"""Deterministic concurrency tests: the race harness and its suites."""
