"""Deterministic schedule-driven race harness.

Real threads, deterministic interleavings: N worker threads each run a
script of database operations, but only one worker executes at a time.
Workers hand control back to a central scheduler at *yield points*:

- every operation boundary (before each scripted op);
- every page I/O, via the engine's ``on_page_io`` trace hook -- so the
  interleaving cuts *inside* composite operations such as a bucket
  split, not just between them;
- every lock transition, via :class:`repro.core.locking.LockObserver` --
  a worker that blocks on the table RWLock is marked BLOCKED (the
  scheduler stops granting it), and parks again the moment the lock is
  granted back (``on_acquired``), so lock hand-offs are scheduling
  decisions too.

In **record** mode the scheduler draws the next runnable worker from a
seeded RNG and returns the grant sequence (the *schedule*).  In
**replay** mode it follows a recorded schedule; because the RWLock's
FIFO grant order is a pure function of arrival order, replaying the same
grants reproduces the identical execution -- same per-op results, same
trace, same final database bytes.  :meth:`Outcome.digest` condenses all
of that into one sha256 for byte-identical comparison across runs.

The harness never parks a worker that holds the buffer-pool mutex
(``pool.mutex.held_by_me()``): page I/O issued from inside the pool's
critical section (eviction write-back, flush) must complete without a
scheduling decision, or every other worker needing the pool would wedge
on a mutex the scheduler knows nothing about.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time

from repro.core.errors import ConcurrentModificationError

__all__ = ["RaceHarness", "Outcome", "HarnessDeadlock", "engine_of"]

#: worker states
STARTING = "starting"  # thread launched, not yet parked at its gate
WAITING = "waiting"  # parked at a yield point; runnable
RUNNING = "running"  # holds the (single) execution grant
BLOCKED = "blocked"  # waiting inside an RWLock; not runnable
WAKING = "waking"  # lock granted back; in flight to its on_acquired park
DONE = "done"

#: how many pairs a "scan" op reads before stopping
SCAN_LIMIT = 64


class HarnessDeadlock(AssertionError):
    """No worker became runnable before the deadline."""


def engine_of(db):
    """The object carrying ``_lock``/``pool``/``hooks`` for a handle.

    Accepts a raw engine (HashTable, BTree, a baseline) or a db(3)
    veneer (HashAccess wraps ``.table``, Recno wraps ``._tree``).
    """
    for attr in ("table", "_tree"):
        inner = getattr(db, attr, None)
        if inner is not None and hasattr(inner, "_lock"):
            return inner
    return db


class _Worker:
    __slots__ = ("name", "ops", "gate", "state", "thread", "log")

    def __init__(self, name: str, ops: list) -> None:
        self.name = name
        self.ops = ops
        self.gate = threading.Event()
        self.state = STARTING
        self.thread: threading.Thread | None = None
        #: [(op, outcome)] where outcome is ("ok", value) or
        #: ("raise", exception type name)
        self.log: list = []


class _ObserverAdapter:
    """LockObserver wired to the scheduler.

    ``on_block``/``on_unblock`` run with the RWLock's internal mutex
    held, so they only flip worker state and notify.  ``on_acquired``
    runs outside it and parks the worker for its next grant.
    """

    __slots__ = ("_h",)

    def __init__(self, harness: "RaceHarness") -> None:
        self._h = harness

    def on_block(self, ident: int) -> None:
        h = self._h
        w = h._by_ident.get(ident)
        if w is None:
            return
        with h._cv:
            w.state = BLOCKED
            h._cv.notify_all()

    def on_unblock(self, ident: int) -> None:
        # The lock is being handed to this thread.  Mark it in flight so
        # the scheduler's quiescence wait covers the window between the
        # wake-up and its on_acquired park -- otherwise whether the park
        # lands before or after the next decision would be an OS race.
        h = self._h
        w = h._by_ident.get(ident)
        if w is None:
            return
        with h._cv:
            if w.state == BLOCKED:
                w.state = WAKING
            h._cv.notify_all()

    def on_acquired(self, ident: int) -> None:
        h = self._h
        w = h._by_ident.get(ident)
        if w is not None:
            h._park(w)


class Outcome:
    """Everything observable about one harness run."""

    def __init__(self, schedule, logs, items, errors) -> None:
        #: the grant sequence: worker names in scheduling order
        self.schedule: list[str] = schedule
        #: worker name -> [(op, outcome)]
        self.logs: dict[str, list] = logs
        #: sorted final (key, value) pairs
        self.items: list[tuple[bytes, bytes]] = items
        #: worker name -> traceback string, for crashes outside ops
        self.errors: dict[str, str] = errors

    def digest(self) -> str:
        """sha256 over the canonical form of the whole outcome; two runs
        are byte-identical iff their digests match."""
        blob = repr((self.schedule, sorted(self.logs.items()), self.items))
        return hashlib.sha256(blob.encode()).hexdigest()


class RaceHarness:
    """Drive scripted workers over one concurrent handle.

    ``scripts`` maps worker name -> list of ops; an op is a tuple:

    - ``("put", key, value)`` / ``("get", key)`` / ``("delete", key)``
    - ``("scan",)`` -- cursor walk of up to :data:`SCAN_LIMIT` pairs
      (a ``ConcurrentModificationError`` is a legal, logged outcome)
    - ``("sync",)``

    ``apply`` overrides op dispatch (e.g. for the dbm-family baselines,
    use :meth:`apply_baseline`).
    """

    def __init__(self, db, scripts: dict[str, list], *, apply=None,
                 timeout: float = 30.0) -> None:
        self.db = db
        self.engine = engine_of(db)
        if getattr(self.engine, "_lock", None) is None:
            raise ValueError("RaceHarness needs a concurrent=True handle")
        self._apply = apply or self.apply_db
        self.timeout = timeout
        self._workers = [_Worker(name, ops) for name, ops in sorted(scripts.items())]
        self._by_ident: dict[int, _Worker] = {}
        self._cv = threading.Condition()
        self._pool_mutex = getattr(getattr(self.engine, "pool", None), "mutex", None)

    # -- op dispatch ---------------------------------------------------------

    def apply_db(self, db, op):
        """Dispatch one op through the uniform db(3) interface."""
        kind = op[0]
        if kind == "put":
            return db.put(op[1], op[2])
        if kind == "get":
            return db.get(op[1])
        if kind == "delete":
            return db.delete(op[1])
        if kind == "sync":
            return db.sync()
        if kind == "put_many":
            return db.put_many(op[1])
        if kind == "get_many":
            return db.get_many(op[1])
        if kind == "delete_many":
            return db.delete_many(op[1])
        if kind == "scan":
            out = []
            c = db.cursor()
            pair = c.first()
            while pair is not None and len(out) < SCAN_LIMIT:
                out.append(pair[0])
                pair = c.next()
            return out
        raise ValueError(f"unknown op {op!r}")

    @staticmethod
    def apply_baseline(db, op):
        """Dispatch one op through the dbm-family interface."""
        kind = op[0]
        if kind == "put":
            return db.store(op[1], op[2])
        if kind == "get":
            return db.fetch(op[1])
        if kind == "delete":
            return db.delete(op[1])
        if kind == "sync":
            return db.sync()
        if kind == "scan":
            return [k for k, _v in db.items()][:SCAN_LIMIT]
        raise ValueError(f"unknown op {op!r}")

    # -- yield points --------------------------------------------------------

    def _park(self, w: _Worker) -> None:
        """Hand the grant back and wait for the next one."""
        with self._cv:
            w.state = WAITING
            self._cv.notify_all()
        w.gate.wait()
        w.gate.clear()

    def _on_page_io(self, _payload) -> None:
        w = self._by_ident.get(threading.get_ident())
        if w is None:
            return
        # Never park inside the buffer pool's critical section: other
        # workers would wedge on its mutex outside scheduler control.
        if self._pool_mutex is not None and self._pool_mutex.held_by_me():
            return
        self._park(w)

    # -- worker body ---------------------------------------------------------

    def _worker_body(self, w: _Worker) -> None:
        self._by_ident[threading.get_ident()] = w
        self._park(w)  # wait for the first grant
        for op in w.ops:
            try:
                result = self._apply(self.db, op)
                w.log.append((op, ("ok", result)))
            except ConcurrentModificationError:
                w.log.append((op, ("raise", "ConcurrentModificationError")))
            except Exception as exc:  # logged, deterministic outcome
                w.log.append((op, ("raise", type(exc).__name__)))
            self._park(w)
        with self._cv:
            w.state = DONE
            self._cv.notify_all()

    # -- the scheduler -------------------------------------------------------

    def _quiesced(self) -> bool:
        """True when no worker is mid-flight (STARTING, RUNNING or
        WAKING) -- the runnable set is stable, so a decision made now is
        reproducible."""
        return all(w.state in (WAITING, BLOCKED, DONE) for w in self._workers)

    def _drive(self, pick) -> list[str]:
        """Grant loop: wait for quiescence, pick a WAITING worker, grant.

        ``pick(runnable) -> worker`` with ``runnable`` sorted by name.
        """
        deadline = time.monotonic() + self.timeout
        schedule: list[str] = []
        while True:
            with self._cv:
                while not self._quiesced():
                    if not self._cv.wait(timeout=0.5) and time.monotonic() > deadline:
                        self._abort("quiescence")
                runnable = [w for w in self._workers if w.state == WAITING]
                if not runnable:
                    if all(w.state == DONE for w in self._workers):
                        return schedule
                    # Workers BLOCKED with nobody to unblock them.
                    self._abort("all blocked")
                chosen = pick(runnable)
                chosen.state = RUNNING
                schedule.append(chosen.name)
            chosen.gate.set()
            if time.monotonic() > deadline:
                self._abort("deadline")

    def _abort(self, why: str) -> None:
        states = {w.name: w.state for w in self._workers}
        raise HarnessDeadlock(f"harness stuck ({why}); worker states: {states}")

    # -- record / replay -----------------------------------------------------

    def record(self, seed: int) -> Outcome:
        """Run under a seeded random scheduler; the outcome's
        ``schedule`` replays it exactly."""
        rng = random.Random(seed)
        return self._run(lambda runnable: rng.choice(runnable))

    def replay(self, schedule: list[str]) -> Outcome:
        """Re-run a recorded grant sequence.

        Entries whose worker is not currently runnable are skipped (the
        deterministic skip rule); an exhausted schedule falls back to
        first-runnable, so replay always terminates.
        """
        remaining = list(schedule)

        def pick(runnable):
            names = {w.name: w for w in runnable}
            while remaining:
                name = remaining.pop(0)
                if name in names:
                    return names[name]
            return runnable[0]

        return self._run(pick)

    def _run(self, pick) -> Outcome:
        hooks = getattr(self.engine, "hooks", None)
        lock = self.engine._lock
        observer = _ObserverAdapter(self)
        lock.observer = observer
        if hooks is not None:
            hooks.subscribe("on_page_io", self._on_page_io)
        errors: dict[str, str] = {}
        try:
            for w in self._workers:
                w.thread = threading.Thread(
                    target=self._guarded_body, args=(w, errors),
                    name=f"race-{w.name}", daemon=True,
                )
                w.thread.start()
            schedule = self._drive(pick)
            for w in self._workers:
                w.thread.join(timeout=5)
        finally:
            lock.observer = None
            if hooks is not None:
                hooks.unsubscribe("on_page_io", self._on_page_io)
            self._by_ident.clear()
        try:
            items = sorted(self._final_items())
        except Exception as exc:
            # A fault-injected handle may be unreadable after the run
            # (e.g. FaultyPager post-crash).  The failure is itself part
            # of the outcome -- deterministic given the schedule.
            items = []
            errors["__items__"] = type(exc).__name__
        return Outcome(schedule, {w.name: w.log for w in self._workers},
                       items, errors)

    def _guarded_body(self, w: _Worker, errors: dict) -> None:
        try:
            self._worker_body(w)
        except BaseException as exc:  # noqa: BLE001 - surfaced in Outcome
            errors[w.name] = f"{type(exc).__name__}: {exc}"
            with self._cv:
                w.state = DONE
                self._cv.notify_all()

    def _final_items(self):
        if hasattr(self.db, "items"):
            return [(bytes(k), bytes(v)) for k, v in self.db.items()]
        out = []
        c = self.db.cursor()
        pair = c.first()
        while pair is not None:
            out.append((bytes(pair[0]), bytes(pair[1])))
            pair = c.next()
        return out
