"""Tests for the trace/metric exporters: Chrome trace-event JSON,
Prometheus text exposition, and NDJSON."""

from __future__ import annotations

import json

from repro.obs.export import to_chrome_trace, to_ndjson, to_prometheus

SPAN = {
    "type": "span", "id": 2, "parent": 1, "tid": 0, "name": "get",
    "cat": "op", "ts": 0.001, "dur": 0.0005, "attrs": {"error": "KeyError"},
}
EVENT = {
    "type": "event", "id": 3, "parent": 2, "tid": 1, "name": "buffer_hit",
    "cat": "buffer", "ts": 0.0012, "attrs": {"pageno": 7, "key": b"\xffk"},
}


class TestChromeTrace:
    def test_span_becomes_complete_event(self):
        (ev,) = to_chrome_trace([SPAN])
        assert ev["ph"] == "X"
        assert ev["ts"] == 1000.0  # seconds -> microseconds
        assert ev["dur"] == 500.0
        assert ev["pid"] == 0 and ev["tid"] == 0
        assert ev["args"]["parent_span"] == 1
        assert ev["args"]["span_id"] == 2
        assert ev["args"]["error"] == "KeyError"

    def test_instant_event_is_thread_scoped(self):
        (ev,) = to_chrome_trace([EVENT])
        assert ev["ph"] == "i" and ev["s"] == "t"
        assert "dur" not in ev

    def test_output_is_json_serializable(self):
        # bytes payloads (keys) must not leak into the JSON
        out = to_chrome_trace([SPAN, EVENT])
        text = json.dumps(out)
        parsed = json.loads(text)
        assert len(parsed) == 2
        for ev in parsed:
            assert {"ph", "ts", "pid", "tid", "name", "cat", "args"} <= ev.keys()

    def test_root_record_has_no_parent_arg(self):
        root = dict(SPAN, parent=None)
        (ev,) = to_chrome_trace([root])
        assert "parent_span" not in ev["args"]


class TestPrometheus:
    STAT = {
        "type": "hash",
        "nkeys": 42,
        "buffer": {"hits": 10, "misses": 3, "hit_rate": 0.769},
        "ops": {
            "latency": {
                "get": {
                    "count": 4, "total": 0.01, "mean": 0.0025,
                    "min": 0.001, "max": 0.004,
                    "p50": 0.002, "p95": 0.0039, "p99": 0.004,
                }
            }
        },
    }

    def test_gauges_and_nesting(self):
        text = to_prometheus(self.STAT)
        assert "repro_nkeys 42\n" in text
        assert "repro_buffer_hits 10" in text
        assert "repro_buffer_hit_rate 0.769" in text
        assert "# TYPE repro_nkeys gauge" in text

    def test_histogram_becomes_summary(self):
        text = to_prometheus(self.STAT)
        assert "# TYPE repro_ops_latency_get_seconds summary" in text
        assert 'repro_ops_latency_get_seconds{quantile="0.5"} 0.002' in text
        assert 'repro_ops_latency_get_seconds{quantile="0.99"} 0.004' in text
        assert "repro_ops_latency_get_seconds_sum 0.01" in text
        assert "repro_ops_latency_get_seconds_count 4" in text
        # the histogram's own keys must not also appear as gauges
        assert "repro_ops_latency_get_p50" not in text

    def test_string_leaves_become_info_labels(self):
        text = to_prometheus(self.STAT)
        first_sample = [
            ln for ln in text.splitlines() if ln and not ln.startswith("#")
        ][0]
        assert first_sample == 'repro_info{type="hash"} 1'

    def test_name_sanitization(self):
        text = to_prometheus({"odd key-1": {"9lives": 2}})
        assert "repro_odd_key_1_9lives 2" in text

    def test_ms_histogram_scales_to_seconds(self):
        """Server-side latency histograms carry ``unit: "ms"``; the
        exporter must convert to base seconds (Prometheus convention)
        rather than exporting millisecond numbers under ``_seconds``."""
        stat = {
            "latency": {
                "put": {
                    "count": 2, "total": 3.0, "mean": 1.5,
                    "min": 1.0, "max": 2.0,
                    "p50": 1.5, "p95": 2.0, "p99": 2.0,
                    "unit": "ms",
                }
            }
        }
        text = to_prometheus(stat)
        assert "# TYPE repro_latency_put_seconds summary" in text
        assert 'repro_latency_put_seconds{quantile="0.5"} 0.0015' in text
        assert "repro_latency_put_seconds_sum 0.003" in text
        assert "repro_latency_put_seconds_count 2" in text
        # the unit marker itself must not leak out as a gauge
        assert "repro_latency_put_unit" not in text

    def test_unknown_unit_suffixes_name_unscaled(self):
        stat = {
            "sizes": {
                "count": 1, "total": 10, "mean": 10.0, "min": 10, "max": 10,
                "p50": 10, "p95": 10, "p99": 10, "unit": "bytes",
            }
        }
        text = to_prometheus(stat)
        assert "# TYPE repro_sizes_bytes summary" in text
        assert 'repro_sizes_bytes{quantile="0.5"} 10' in text


class TestNdjson:
    def test_one_record_per_line(self):
        text = to_ndjson([SPAN, EVENT])
        lines = text.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "get"
        assert json.loads(lines[1])["attrs"]["pageno"] == 7
        assert text.endswith("\n")

    def test_empty_input(self):
        assert to_ndjson([]) == ""
