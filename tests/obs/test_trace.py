"""Tests for causal span tracing: Tracer/Span/FlightRecorder mechanics,
the engine integration (root op spans with hook events as children), and
the crash flight dump."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.table import HashTable
from repro.obs.export import to_chrome_trace
from repro.obs.trace import FlightRecorder, Tracer
from repro.storage.faulty import CrashPoint, FaultyPager


class TestTracer:
    def test_nesting_and_parent_ids(self):
        tr = Tracer()
        outer = tr.start("outer")
        inner = tr.start("inner")
        assert inner.parent_id == outer.id
        tr.end(inner)
        tr.end(outer)
        recs = tr.recorder.events()
        assert [r["name"] for r in recs] == ["inner", "outer"]  # close order
        by_name = {r["name"]: r for r in recs}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["dur"] >= by_name["inner"]["dur"] >= 0.0

    def test_instant_attaches_to_current_span(self):
        tr = Tracer()
        with tr.span("op") as span:
            tr.instant("hit", "buffer", {"pageno": 3})
        recs = tr.recorder.events()
        event = next(r for r in recs if r["type"] == "event")
        assert event["parent"] == span.id
        assert event["attrs"] == {"pageno": 3}
        # with no span open, events are roots, not errors
        tr.instant("stray")
        assert tr.recorder.events()[-1]["parent"] is None

    def test_out_of_order_close_pops_through(self):
        tr = Tracer()
        outer = tr.start("outer")
        tr.start("leaked")  # never explicitly ended
        tr.end(outer)
        assert tr.current_span() is None
        child = tr.start("next")
        assert child.parent_id is None
        tr.end(child)

    def test_span_context_records_error_attr(self):
        tr = Tracer()
        with pytest.raises(KeyError):
            with tr.span("op"):
                raise KeyError("boom")
        rec = tr.recorder.events()[-1]
        assert rec["attrs"]["error"] == "KeyError"

    def test_complete_is_epoch_relative(self):
        tr = Tracer()
        t0 = tr.epoch + 0.5
        tr.complete("lock_wait", t0, 0.25, "lock", {"mode": "read"})
        rec = tr.recorder.events()[-1]
        assert rec["ts"] == pytest.approx(0.5)
        assert rec["dur"] == pytest.approx(0.25)

    def test_ids_are_unique_across_threads(self):
        tr = Tracer()
        ids = []
        barrier = threading.Barrier(4)  # overlap, so idents aren't reused

        def worker():
            barrier.wait()
            for _ in range(200):
                s = tr.start("op")
                tr.end(s)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        ids = [r["id"] for r in tr.recorder.events()]
        assert len(ids) == len(set(ids)) == 800
        tids = {r["tid"] for r in tr.recorder.events()}
        assert len(tids) == 4


class TestFlightRecorder:
    def test_ring_bounds_and_dropped(self):
        rec = FlightRecorder(capacity=10)
        for i in range(25):
            rec.record({"i": i})
        assert len(rec) == 10
        assert rec.recorded == 25
        assert rec.dropped == 15
        assert [r["i"] for r in rec.events()] == list(range(15, 25))

    def test_unbounded_keeps_everything(self):
        rec = FlightRecorder(capacity=None)
        for i in range(5000):
            rec.record({"i": i})
        assert len(rec) == 5000 and rec.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_and_clear(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.record({"i": i, "blob": b"\xff\x00"})
        path = rec.dump(tmp_path / "d.json", reason="test")
        payload = json.loads(open(path).read())
        assert payload["reason"] == "test"
        assert payload["recorded"] == 6 and payload["dropped"] == 2
        assert len(payload["events"]) == 4
        rec.clear()
        assert len(rec) == 0 and rec.recorded == 0

    def test_dump_without_path_raises(self):
        with pytest.raises(ValueError):
            FlightRecorder().dump()

    def test_auto_dump_fires_once(self, tmp_path):
        rec = FlightRecorder()
        rec.record({"i": 1})
        assert rec.auto_dump("crash") is None  # no path configured: no-op
        rec.dump_path = str(tmp_path / "auto.json")
        first = rec.auto_dump("crash")
        assert first is not None
        rec.record({"i": 2})
        assert rec.auto_dump("later") is None  # second call is a no-op
        payload = json.loads(open(first).read())
        assert payload["reason"] == "crash"
        assert len(payload["events"]) == 1


class TestEngineTracing:
    def _chained_table(self):
        # A constant hash puts every key in bucket 0: the bucket grows an
        # overflow chain, so a get of the last key walks every hop.
        t = HashTable.create(
            None, in_memory=True, bsize=64, ffactor=100, hashfn=lambda k: 0
        )
        for i in range(12):
            t.put(f"k{i}".encode(), b"v" * 8)
        return t

    def test_get_span_with_buffer_and_hop_children(self):
        t = self._chained_table()
        try:
            t.enable_tracing()
            assert t.get(b"k11") == b"v" * 8
            recs = t.flight_recorder.events()
            roots = [r for r in recs if r["type"] == "span" and r["parent"] is None]
            assert [r["name"] for r in roots] == ["get"]
            root_id = roots[0]["id"]
            children = [r for r in recs if r["parent"] == root_id]
            assert any(r["name"].startswith("buffer_") for r in children)
            hops = [r for r in children if r["name"] == "overflow_hop"]
            assert hops, "a chained get must record its overflow hops"
            assert [h["attrs"]["depth"] for h in hops] == list(
                range(1, len(hops) + 1)
            )
            # the Chrome rendering of the same records is structurally valid
            chrome = to_chrome_trace(recs)
            json.dumps(chrome)  # round-trippable
            for ev in chrome:
                assert {"ph", "ts", "pid", "tid", "name", "args"} <= ev.keys()
                assert ev["ph"] in ("X", "i")
                if ev["ph"] == "X":
                    assert ev["dur"] >= 0.0
        finally:
            t.close()

    def test_every_public_op_opens_a_root_span(self):
        t = HashTable.create(None, in_memory=True)
        try:
            t.put(b"a", b"1")
            t.enable_tracing()
            t.put(b"b", b"2")
            t.get(b"a")
            t.delete(b"b")
            c = t.cursor()
            c.first()
            c.next()
            t.sync()
            roots = [
                r["name"]
                for r in t.flight_recorder.events()
                if r["type"] == "span" and r["parent"] is None
            ]
            assert roots == [
                "put", "get", "delete", "cursor_first", "cursor_next", "sync"
            ]
        finally:
            t.close()

    def test_tracing_at_open_records_open_span(self, tmp_path):
        t = HashTable.create(tmp_path / "t.db", tracing=True)
        try:
            t.put(b"a", b"1")
            recs = t.flight_recorder.events()
            assert recs[0]["name"] == "open"
            assert recs[0]["ts"] == 0.0
            assert recs[0]["attrs"]["how"] == "create"
        finally:
            t.close()

    def test_disable_tracing_unsubscribes(self):
        t = HashTable.create(None, in_memory=True)
        try:
            t.enable_tracing()
            assert any(getattr(t.hooks, e) for e in t.hooks.EVENTS)
            old = t.flight_recorder
            t.put(b"a", b"1")
            assert len(old) > 0
            t.disable_tracing()
            assert not any(getattr(t.hooks, e) for e in t.hooks.EVENTS)
            before = len(old)
            t.put(b"b", b"2")
            assert len(old) == before  # old recorder no longer fed
            assert not t.tracer.enabled
        finally:
            t.close()

    def test_enable_tracing_is_idempotent(self):
        t = HashTable.create(None, in_memory=True)
        try:
            tr = t.enable_tracing()
            assert t.enable_tracing() is tr
            n_subs = sum(len(getattr(t.hooks, e)) for e in t.hooks.EVENTS)
            t.enable_tracing()
            assert sum(len(getattr(t.hooks, e)) for e in t.hooks.EVENTS) == n_subs
        finally:
            t.close()

    def test_lock_wait_child_under_contention(self):
        t = HashTable.create(None, in_memory=True, concurrent=True)
        try:
            t.enable_tracing()
            done = threading.Event()

            def reader():
                t.get(b"x")
                done.set()

            with t._wr:
                th = threading.Thread(target=reader)
                th.start()
                # let the reader reach the blocked acquire
                import time

                time.sleep(0.08)
            th.join()
            assert done.is_set()
            recs = t.flight_recorder.events()
            waits = [r for r in recs if r["name"] == "lock_wait"]
            assert waits, "a blocked reader must record a lock_wait span"
            wait = waits[-1]
            assert wait["attrs"]["mode"] == "read"
            get_span = next(r for r in recs if r["name"] == "get")
            assert wait["parent"] == get_span["id"]
            assert wait["dur"] > 0.0
        finally:
            t.close()


class TestCrashFlightDump:
    def test_crash_during_write_sweep_leaves_dump(self, tmp_path):
        path = tmp_path / "crash.db"
        t = HashTable.create(
            path,
            cachesize=0,
            tracing=True,
            file_wrapper=lambda inner: FaultyPager(inner, fail_after=40, mode="crash"),
        )
        issued = []
        with pytest.raises(CrashPoint):
            for i in range(10_000):
                issued.append(f"k{i}".encode())
                t.put(issued[-1], b"v" * 64)
        dump_file = str(path) + ".flight.json"
        payload = json.loads(open(dump_file).read())
        assert payload["reason"] == "exception:CrashPoint"
        events = payload["events"]
        # the tail of the dump matches the ops actually issued: every root
        # span is one of our puts (plus the open backfill), in issue order
        put_spans = [
            e for e in events
            if e["type"] == "span" and e["parent"] is None and e["name"] == "put"
        ]
        assert put_spans, "the dump must contain the failing sweep"
        assert put_spans == sorted(put_spans, key=lambda e: e["ts"])
        assert len(put_spans) <= len(issued)
        # the last span is the put the fault killed, marked and preceded by
        # the injection event
        last = put_spans[-1]
        assert last["attrs"]["error"] == "CrashPoint"
        names = [e["name"] for e in events]
        assert "fault_injected" in names
        assert names.index("fault_injected") < len(names) - 1

    def test_check_failure_auto_dumps(self, tmp_path):
        import struct

        from repro.core.check import verify_table

        path = tmp_path / "c.db"
        t = HashTable.create(path)
        t.put(b"a", b"1")
        t.close()
        # lie about nkeys in the header (offset 44, same as the verifier's
        # own corruption tests), then check under tracing
        with open(path, "r+b") as fh:
            fh.seek(44)
            fh.write(struct.pack(">Q", 9999))
        t = HashTable.open_file(path, tracing=True)
        try:
            report = verify_table(t)
            assert not report.ok
            assert t.flight_recorder.auto_dumped == "check_failure"
            assert (tmp_path / "c.db.flight.json").exists()
        finally:
            t.close()
