"""The strict exposition linter, and that our own exporter passes it."""

from __future__ import annotations

from repro.obs.export import to_prometheus
from repro.obs.promlint import lint


def assert_clean(text: str) -> None:
    assert lint(text) == []


class TestCleanExpositions:
    def test_minimal(self):
        assert_clean("# TYPE x gauge\nx 1\n")

    def test_labels(self):
        assert_clean('# TYPE x counter\nx{a="1",b="two"} 3\n')

    def test_summary_family_suffixes(self):
        assert_clean(
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 0.01\n'
            'lat{quantile="0.99"} 0.5\n'
            "lat_sum 12.5\n"
            "lat_count 100\n"
        )

    def test_escapes_and_special_values(self):
        assert_clean(
            "# TYPE x gauge\n"
            'x{msg="a\\"b\\\\c\\nd"} +Inf\n'
            'x{msg="other"} NaN\n'
        )

    def test_timestamps_comments_blank_lines(self):
        assert_clean(
            "# just a comment\n\n# TYPE x gauge\n# HELP x helpful\nx 1 1700000000000\n"
        )

    def test_empty(self):
        assert_clean("")


class TestViolations:
    def violations(self, text):
        return lint(text)

    def test_missing_trailing_newline(self):
        assert any("newline" in e for e in self.violations("# TYPE x gauge\nx 1"))

    def test_bad_metric_name(self):
        assert self.violations("0bad 1\n")

    def test_bad_label_name(self):
        assert self.violations('x{0bad="v"} 1\n')

    def test_unquoted_label_value(self):
        assert self.violations("x{a=1} 1\n")

    def test_unterminated_label_value(self):
        assert any(
            "unterminated" in e for e in self.violations('x{a="v} 1\n')
        )

    def test_bad_escape(self):
        assert any("escape" in e for e in self.violations('x{a="\\x"} 1\n'))

    def test_duplicate_label_name(self):
        assert any(
            "duplicate label" in e
            for e in self.violations('x{a="1",a="2"} 1\n')
        )

    def test_bad_value(self):
        assert any("value" in e for e in self.violations("x one\n"))

    def test_missing_value(self):
        assert self.violations("x\n")

    def test_extra_tokens(self):
        assert self.violations("x 1 2 3\n")

    def test_bad_timestamp(self):
        assert any("timestamp" in e for e in self.violations("x 1 12.5\n"))

    def test_duplicate_sample(self):
        text = "# TYPE x gauge\nx 1\nx 2\n"
        assert any("duplicate sample" in e for e in self.violations(text))

    def test_duplicate_sample_reordered_labels(self):
        text = 'x{a="1",b="2"} 1\nx{b="2",a="1"} 2\n'
        assert any("duplicate sample" in e for e in self.violations(text))

    def test_distinct_labels_not_duplicates(self):
        assert_clean('x{a="1"} 1\nx{a="2"} 2\n')

    def test_duplicate_type(self):
        text = "# TYPE x gauge\n# TYPE x counter\nx 1\n"
        assert any("duplicate TYPE" in e for e in self.violations(text))

    def test_type_after_samples(self):
        text = "x 1\n# TYPE x gauge\n"
        assert any("after its samples" in e for e in self.violations(text))

    def test_invalid_type(self):
        assert any(
            "bad TYPE" in e
            for e in self.violations("# TYPE x flotilla\nx 1\n")
        )

    def test_errors_carry_line_numbers(self):
        errs = self.violations("# TYPE x gauge\nx 1\nx 2\n")
        assert errs and errs[0].startswith("line 3:")


class TestOwnExporter:
    def test_stat_tree_exposition_is_clean(self):
        stat = {
            "type": "hash",
            "nkeys": 42,
            "ops": {"counts": {"gets": 10, "puts": 5}},
            "latency": {
                "get": {
                    "count": 10, "total": 1.5, "mean": 0.15,
                    "min": 0.01, "max": 0.9, "p50": 0.1, "p95": 0.4,
                    "p99": 0.8, "unit": "ms",
                }
            },
            "buffer": {"hit_rate": 0.93, "resident": 12},
        }
        assert_clean(to_prometheus(stat))

    def test_live_table_exposition_is_clean(self):
        from repro.access.db import db_open

        db = db_open(None, "hash", "c")
        try:
            for i in range(50):
                db.put(b"k%d" % i, b"v")
            for i in range(50):
                db.get(b"k%d" % i)
            assert_clean(to_prometheus(db.stat()))
        finally:
            db.close()
