"""TimeSeries: delta classification, ring retention, and the renderer."""

from __future__ import annotations

import threading

import pytest

from repro.obs.timeseries import GAUGE_LEAF_NAMES, TimeSeries, flatten_stat
from repro.tools.serve_tools import render_watch


class TestFlattenStat:
    def test_dotted_paths(self):
        flat = flatten_stat({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_skips_non_numeric_leaves(self):
        flat = flatten_stat(
            {"type": "hash", "flag": True, "list": [1, 2], "n": 7}
        )
        assert flat == {"n": 7.0}

    def test_empty(self):
        assert flatten_stat({}) == {}


class TestTimeSeries:
    def test_baseline_primes_without_recording(self):
        ts = TimeSeries(lambda: {"ops": 0})
        assert ts.sample() is None
        assert ts.samples() == []
        assert ts.taken == 0

    def test_counter_deltas(self):
        vals = iter([{"ops": 0}, {"ops": 10}, {"ops": 25}])
        ts = TimeSeries(lambda: next(vals))
        ts.sample()
        assert ts.sample()["deltas"] == {"ops": 10.0}
        assert ts.sample()["deltas"] == {"ops": 15.0}
        assert ts.taken == 2

    def test_zero_delta_omitted(self):
        vals = iter([{"ops": 5}, {"ops": 5}])
        ts = TimeSeries(lambda: next(vals))
        ts.sample()
        entry = ts.sample()
        assert entry["deltas"] == {}

    def test_negative_delta_reclassifies_permanently(self):
        vals = iter([{"depth": 3}, {"depth": 1}, {"depth": 9}, {"depth": 9}])
        ts = TimeSeries(lambda: next(vals))
        ts.sample()
        first = ts.sample()  # shrank: becomes a gauge now and forever
        assert first["deltas"] == {}
        assert first["gauges"] == {"depth": 1.0}
        second = ts.sample()  # grew again, but stays a gauge
        assert second["deltas"] == {}
        assert second["gauges"] == {"depth": 9.0}
        assert ts.sample()["gauges"] == {"depth": 9.0}

    def test_histogram_leaves_seed_as_gauges(self):
        vals = iter(
            [
                {"lat": {"mean": 0.5, "count": 10}},
                {"lat": {"mean": 0.2, "count": 30}},
            ]
        )
        ts = TimeSeries(lambda: next(vals))
        ts.sample()
        entry = ts.sample()
        # mean reports by level even though it only ever moved downward
        # once; count stays a counter
        assert entry["gauges"] == {"lat.mean": 0.2}
        assert entry["deltas"] == {"lat.count": 20.0}

    def test_gauge_leaf_names_cover_histogram_snapshot(self):
        for name in ("mean", "min", "max", "p50", "p95", "p99"):
            assert name in GAUGE_LEAF_NAMES

    def test_retention_bounds_ring(self):
        counter = [0]

        def snap():
            counter[0] += 10
            return {"ops": counter[0]}

        ts = TimeSeries(snap, retention=3)
        for _ in range(6):
            ts.sample()
        assert len(ts.samples()) == 3
        assert ts.taken == 5  # baseline not counted

    def test_explicit_stat_bypasses_snapshot(self):
        ts = TimeSeries(lambda: pytest.fail("snapshot must not be called"))
        ts.sample({"x": 1})
        assert ts.sample({"x": 4})["deltas"] == {"x": 3.0}

    def test_new_leaf_appears_mid_stream(self):
        vals = iter([{"a": 1}, {"a": 2, "b": 5}])
        ts = TimeSeries(lambda: next(vals))
        ts.sample()
        entry = ts.sample()
        assert entry["deltas"] == {"a": 1.0, "b": 5.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(dict, retention=0)
        with pytest.raises(ValueError):
            TimeSeries(dict, interval=0)

    def test_concurrent_sample_and_read(self):
        counter = [0]
        lock = threading.Lock()

        def snap():
            with lock:
                counter[0] += 1
                return {"ops": counter[0]}

        ts = TimeSeries(snap, retention=8)
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    for entry in ts.samples():
                        assert entry["deltas"].get("ops", 1.0) == 1.0
                    ts.as_dict()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        t = threading.Thread(target=reader)
        t.start()
        for _ in range(500):
            ts.sample()
        stop.set()
        t.join()
        assert not errors


class TestRenderWatch:
    def test_renders_rates_and_levels(self):
        doc = {
            "taken": 2,
            "interval": 1.0,
            "samples": [
                {"t": 1.0, "dt": 1.0, "deltas": {"ops.gets": 10.0},
                 "gauges": {"depth": 3.0}},
                {"t": 2.0, "dt": 1.0, "deltas": {"ops.gets": 30.0},
                 "gauges": {"depth": 5.0}},
            ],
        }
        out = render_watch(doc, window=10)
        assert "ops.gets" in out
        assert "40" in out  # summed delta
        assert "20.0" in out  # per-sec over 2s
        assert "depth" in out and "5.000" in out  # latest level wins

    def test_empty(self):
        out = render_watch({"taken": 0, "samples": []}, window=5)
        assert "no samples" in out
