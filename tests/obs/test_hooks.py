"""Tests for trace hooks: the subscriber mechanics and the payload
contracts the engine emits on splits, evictions, page I/O and overflow
linking."""

from __future__ import annotations

import pytest

from repro.core.table import HashTable
from repro.obs.hooks import TraceHooks


class TestMechanics:
    def test_subscribe_emit_order(self):
        hooks = TraceHooks()
        calls = []
        hooks.subscribe("on_split", lambda p: calls.append(("a", p)))
        hooks.subscribe("on_split", lambda p: calls.append(("b", p)))
        hooks.emit("on_split", {"x": 1})
        assert [tag for tag, _ in calls] == ["a", "b"]
        assert calls[0][1] == {"x": 1}

    def test_unsubscribe(self):
        hooks = TraceHooks()
        calls = []
        fn = hooks.subscribe("on_evict", calls.append)
        hooks.unsubscribe("on_evict", fn)
        hooks.emit("on_evict", {})
        assert calls == []

    def test_unknown_event_raises(self):
        hooks = TraceHooks()
        with pytest.raises(ValueError):
            hooks.subscribe("on_frobnicate", lambda p: None)
        with pytest.raises(ValueError):
            hooks.emit("on_frobnicate", {})

    def test_clear(self):
        hooks = TraceHooks()
        hooks.subscribe("on_page_io", lambda p: None)
        hooks.clear()
        assert hooks.on_page_io == []

    def test_unsubscribed_event_is_empty_list(self):
        # emit sites guard on this: `if hooks.on_split:` must be False
        hooks = TraceHooks()
        for event in TraceHooks.EVENTS:
            assert getattr(hooks, event) == []


class TestSubscriberIsolation:
    def test_raising_subscriber_does_not_abort_emit(self):
        hooks = TraceHooks()
        calls = []

        def bad(payload):
            raise RuntimeError("subscriber bug")

        hooks.subscribe("on_split", bad)
        hooks.subscribe("on_split", calls.append)
        with pytest.warns(RuntimeWarning, match="subscriber bug"):
            hooks.emit("on_split", {"x": 1})
        # the raise was swallowed, later subscribers still ran
        assert calls == [{"x": 1}]
        assert len(hooks.errors) == 1
        event, exc = hooks.errors[0]
        assert event == "on_split" and isinstance(exc, RuntimeError)

    def test_warns_once_per_subscriber(self):
        hooks = TraceHooks()
        hooks.subscribe("on_evict", lambda p: 1 / 0)
        with pytest.warns(RuntimeWarning):
            hooks.emit("on_evict", {})
        with warnings_none():
            hooks.emit("on_evict", {})
        assert len(hooks.errors) == 2  # still collected, just not re-warned

    def test_errors_list_is_bounded(self):
        hooks = TraceHooks()
        hooks.subscribe("on_page_io", lambda p: 1 / 0)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(TraceHooks.MAX_ERRORS + 50):
                hooks.emit("on_page_io", {})
        assert len(hooks.errors) == TraceHooks.MAX_ERRORS

    def test_clear_resets_errors_and_warnings(self):
        hooks = TraceHooks()
        hooks.subscribe("on_fault", lambda p: 1 / 0)
        with pytest.warns(RuntimeWarning):
            hooks.emit("on_fault", {})
        hooks.clear()
        assert hooks.errors == []
        hooks.subscribe("on_fault", lambda p: 1 / 0)
        with pytest.warns(RuntimeWarning):  # warns again after clear
            hooks.emit("on_fault", {})


def warnings_none():
    """Context manager asserting no warnings are raised inside."""
    import contextlib
    import warnings

    @contextlib.contextmanager
    def cm():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            yield
        assert caught == [], [str(w.message) for w in caught]

    return cm()


class TestEngineEmission:
    def test_split_events_on_forced_growth(self, small_dict_pairs):
        t = HashTable.create(None, in_memory=True, bsize=256, ffactor=8)
        splits = []
        t.hooks.subscribe("on_split", splits.append)
        try:
            for k, v in small_dict_pairs:
                t.put(k, v)
            assert splits, "500 keys at ffactor=8 must split"
            for p in splits:
                assert set(p) == {"old_bucket", "new_bucket", "reason", "nkeys"}
                assert p["reason"] in ("controlled", "uncontrolled", "structural")
                assert p["new_bucket"] > p["old_bucket"]
            st = t.stat()
            assert len(splits) == st["ops"]["counts"]["splits"]
            assert len(splits) == st["ops"]["latency"]["split"]["count"]
        finally:
            t.close()

    def test_overflow_link_before_relieving_split(self, small_dict_pairs):
        # a tiny page fills before the fill factor forces a split, so the
        # trace must interleave overflow links with the splits that later
        # drain them -- and the very first structural event is a link
        t = HashTable.create(None, in_memory=True, bsize=64, ffactor=16)
        events = []
        t.hooks.subscribe("on_split", lambda p: events.append(("split", p)))
        t.hooks.subscribe("on_overflow_link", lambda p: events.append(("link", p)))
        try:
            for k, v in small_dict_pairs:
                t.put(k, v)
            kinds = [kind for kind, _ in events]
            assert "link" in kinds and "split" in kinds
            assert kinds.index("link") < kinds.index("split")
            for kind, p in events:
                if kind == "link":
                    assert set(p) == {"bucket", "oaddr"}
                    assert p["oaddr"] != 0
        finally:
            t.close()

    def test_evict_events_with_tiny_cache(self, tiny_cache_table, small_dict_pairs):
        t = tiny_cache_table
        evicts = []
        t.hooks.subscribe("on_evict", evicts.append)
        for k, v in small_dict_pairs:
            t.put(k, v)
        assert evicts, "a 4-buffer pool over 500 keys must evict"
        for p in evicts:
            assert set(p) == {"key", "pageno", "dirty", "chained"}
            assert isinstance(p["dirty"], bool)
            assert isinstance(p["chained"], bool)
        assert len(evicts) == t.stat()["buffer"]["evictions"]

    def test_page_io_events(self, tmp_path, small_dict_pairs):
        t = HashTable.create(tmp_path / "t.db", cachesize=0)
        ios = []
        t.hooks.subscribe("on_page_io", ios.append)
        try:
            for k, v in small_dict_pairs:
                t.put(k, v)
            t.sync()
            kinds = {p["kind"] for p in ios}
            assert "write" in kinds
            for p in ios:
                assert set(p) == {"kind", "pageno", "nbytes"}
                assert p["kind"] in ("read", "write")
                assert p["nbytes"] > 0
        finally:
            t.close()
