"""Tests for the metrics registry: instruments, quantile math, tree shape,
and the disabled (null-object) mode."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SCOPE,
    Counter,
    Gauge,
    Histogram,
    Registry,
)


class TestCounter:
    def test_inc_and_reset(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.as_value() == 5
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set(self):
        g = Gauge("resident")
        g.set(17)
        assert g.value == 17
        assert g.as_value() == 17

    def test_set_function_reads_live(self):
        backing = {"n": 0}
        g = Gauge("resident")
        g.set_function(lambda: backing["n"])
        backing["n"] = 9
        assert g.value == 9
        backing["n"] = 12
        assert g.as_value() == 12


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0
        assert h.max == 4.0

    def test_constant_stream_reports_exact_value(self):
        # clamping to [min, max] makes a constant stream exact
        h = Histogram("lat")
        for _ in range(100):
            h.observe(0.0042)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0042)

    def test_quantiles_within_bucket_error(self):
        # uniform 1..1000: buckets are <=12.5% wide, so the p50 estimate
        # must land within ~15% of the true median
        h = Histogram("lat")
        for i in range(1, 1001):
            h.observe(float(i))
        assert h.quantile(0.5) == pytest.approx(500.0, rel=0.15)
        assert h.quantile(0.99) == pytest.approx(990.0, rel=0.15)
        # extremes clamp to the observed range (midpoint interpolation may
        # sit up to one bucket width inside it)
        assert 1.0 <= h.quantile(0.0) <= 1.15
        assert 870.0 <= h.quantile(1.0) <= 1000.0

    def test_quantiles_monotonic(self):
        h = Histogram("lat")
        for i in range(1, 201):
            h.observe(float(i) / 7.0)
        qs = [h.quantile(q / 20.0) for q in range(21)]
        assert qs == sorted(qs)

    def test_bounded_memory(self):
        h = Histogram("lat")
        for i in range(10_000):
            h.observe(1e-9 * (1.0001**i))
        assert len(h._buckets) <= 256

    def test_empty_and_bad_quantile(self):
        h = Histogram("lat")
        assert h.quantile(0.5) == 0.0
        assert h.as_value() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_as_value_keys(self):
        h = Histogram("lat")
        h.observe(0.25)
        v = h.as_value()
        assert set(v) == {"count", "total", "mean", "min", "max", "p50", "p95", "p99"}
        assert v["count"] == 1
        assert v["p50"] == pytest.approx(0.25)

    def test_non_default_unit_is_exposed(self):
        """Snapshots advertise non-second units (the serve layer records
        latency in ms) so exporters can scale; the default stays silent
        to keep existing snapshots byte-identical."""
        h = Histogram("lat", unit="ms")
        h.observe(1.5)
        v = h.as_value()
        assert v["unit"] == "ms"
        assert set(v) == {
            "count", "total", "mean", "min", "max", "p50", "p95", "p99", "unit",
        }
        assert "unit" not in Histogram("lat").as_value()

    def test_reset(self):
        h = Histogram("lat")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.quantile(0.5) == 0.0

    def test_single_observation_is_exact_at_every_quantile(self):
        # regression: one sample used to report bucket-midpoint estimates
        h = Histogram("lat")
        h.observe(0.037)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 0.037

    def test_extreme_quantiles_are_exact_bounds(self):
        # regression: q=0 / q=1 used to interpolate inside the edge buckets
        h = Histogram("lat")
        for v in (3.0, 8.0, 21.0, 500.0):
            h.observe(v)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 500.0

    def test_negative_observations_keep_exact_bounds(self):
        h = Histogram("drift")
        for v in (-5.0, -1.0, 2.0):
            h.observe(v)
        assert h.quantile(0.0) == -5.0
        assert h.quantile(1.0) == 2.0
        assert h.min == -5.0 and h.max == 2.0


class TestRegistry:
    def test_instruments_cached_by_name(self):
        r = Registry("root")
        assert r.counter("c") is r.counter("c")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert r.child("sub") is r.child("sub")

    def test_as_dict_nests_children(self):
        r = Registry("root")
        r.counter("hits").inc(3)
        r.child("ops").histogram("get").observe(0.5)
        d = r.as_dict()
        assert d["hits"] == 3
        assert d["ops"]["get"]["count"] == 1

    def test_timer_observes(self):
        r = Registry("root")
        with r.timer("op"):
            pass
        assert r.histogram("op").count == 1
        assert r.histogram("op").min >= 0.0

    def test_attach_adopts_external_instrument(self):
        r = Registry("root")
        c = Counter("external")
        assert r.attach(c) is c
        c.inc(2)
        assert r.as_dict()["external"] == 2

    def test_reset_recurses(self):
        r = Registry("root")
        r.counter("c").inc()
        r.child("sub").counter("c2").inc()
        r.reset()
        assert r.as_dict() == {"c": 0, "sub": {"c2": 0}}


class TestDisabledRegistry:
    def test_hands_out_null_singletons(self):
        r = Registry("root", enabled=False)
        assert r.counter("c") is NULL_COUNTER
        assert r.gauge("g") is NULL_GAUGE
        assert r.histogram("h") is NULL_HISTOGRAM
        assert r.timer("t") is NULL_SCOPE

    def test_children_inherit_disabled(self):
        r = Registry("root", enabled=False)
        assert r.child("sub").counter("c") is NULL_COUNTER

    def test_null_ops_are_noops_with_stable_shape(self):
        NULL_COUNTER.inc(5)
        assert NULL_COUNTER.as_value() == 0
        NULL_HISTOGRAM.observe(1.0)
        v = NULL_HISTOGRAM.as_value()
        assert v["count"] == 0
        assert set(v) == {"count", "total", "mean", "min", "max", "p50", "p95", "p99"}
        with NULL_SCOPE:
            pass

    def test_as_dict_empty_and_attach_refused(self):
        r = Registry("root", enabled=False)
        r.counter("c")
        c = Counter("real")
        r.attach(c)
        c.inc()
        assert r.as_dict() == {}
