"""SlowLog capture semantics and the span-tree closure it embeds."""

from __future__ import annotations

import pytest

from repro.obs.slowlog import SlowLog, span_tree
from repro.obs.trace import FlightRecorder, Tracer


def _span(id, name, parent=None, links=None, ts=0.0):
    rec = {"type": "span", "id": id, "name": name, "parent": parent, "ts": ts}
    if links:
        rec["links"] = links
    return rec


class TestSpanTree:
    def test_parent_chain(self):
        records = [
            _span(1, "root", ts=0.0),
            _span(2, "child", parent=1, ts=1.0),
            _span(3, "grandchild", parent=2, ts=2.0),
            _span(9, "stranger", ts=0.5),
        ]
        tree = span_tree(records, 1)
        assert [r["name"] for r in tree] == ["root", "child", "grandchild"]

    def test_link_edges_pull_in_shared_spans(self):
        # the coalescer shape: the shared exec span has no parent but
        # LINKS to its member requests; engine spans hang off the exec
        records = [
            _span(1, "request", ts=0.0),
            _span(5, "coalesce.exec", links=[1, 77], ts=1.0),
            _span(6, "put_many", parent=5, ts=2.0),
            _span(7, "wal_fsync", parent=5, ts=3.0),
            _span(8, "other_request_child", parent=77, ts=1.5),
        ]
        tree = span_tree(records, 1)
        names = [r["name"] for r in tree]
        assert names == ["request", "coalesce.exec", "put_many", "wal_fsync"]

    def test_fixed_point_over_ordering(self):
        # descendants listed BEFORE the link that admits their ancestor
        # still join on a later pass
        records = [
            _span(6, "deep", parent=5, ts=2.0),
            _span(5, "exec", links=[1], ts=1.0),
            _span(1, "root", ts=0.0),
        ]
        tree = span_tree(records, 1)
        assert {r["name"] for r in tree} == {"deep", "exec", "root"}

    def test_events_without_ids_are_skipped(self):
        records = [_span(1, "root"), {"type": "event", "name": "hit"}]
        assert [r["name"] for r in span_tree(records, 1)] == ["root"]


class TestSlowLog:
    def test_threshold(self):
        log = SlowLog(threshold_ms=5.0)
        assert log.observe("serve.get", 4.9) is False
        assert log.observe("serve.get", 5.0) is True
        assert len(log.entries()) == 1

    def test_entry_shape(self):
        log = SlowLog(threshold_ms=0.0)
        log.observe("serve.put", 12.3456, status=0x80, attrs={"rid": 7})
        (entry,) = log.entries()
        assert entry["op"] == "serve.put"
        assert entry["dur_ms"] == 12.346
        assert entry["status"] == 0x80
        assert entry["attrs"] == {"rid": 7}
        assert "spans" not in entry  # untraced: no tree

    def test_traced_entry_embeds_tree(self):
        tracer = Tracer(enabled=True, recorder=FlightRecorder())
        root = tracer.open_span("serve.put", "serve")
        child = tracer.open_span("queue_wait", "serve", parent_id=root.id)
        tracer.close_span(child)
        tracer.close_span(root)
        log = SlowLog(threshold_ms=0.0)
        log.observe(
            "serve.put", 9.0, root_span_id=root.id, recorder=tracer.recorder
        )
        (entry,) = log.entries()
        assert entry["root_span"] == root.id
        assert {s["name"] for s in entry["spans"]} == {"serve.put", "queue_wait"}

    def test_ring_bounds_and_accounting(self):
        log = SlowLog(threshold_ms=0.0, capacity=2)
        for i in range(5):
            log.observe(f"op{i}", 1.0)
        doc = log.as_dict()
        assert [e["op"] for e in doc["entries"]] == ["op3", "op4"]
        assert doc["captured"] == 5
        assert doc["dropped"] == 3
        assert doc["capacity"] == 2
        assert doc["threshold_ms"] == 0.0

    def test_seq_survives_eviction(self):
        log = SlowLog(threshold_ms=0.0, capacity=1)
        log.observe("a", 1.0)
        log.observe("b", 1.0)
        assert log.entries()[0]["seq"] == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowLog(threshold_ms=-1.0)

    def test_make_threadsafe_chains(self):
        log = SlowLog(threshold_ms=0.0)
        assert log.make_threadsafe() is log
