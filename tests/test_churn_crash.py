"""Crash/reopen sweep over the space-reclamation paths.

`test_wal_recovery.py` sweeps the classic put/commit workload; this file
sweeps the machinery this churn leans on -- freelist persistence,
linear-hash contraction (``min_fill``), and mid-``compact()`` swaps --
with a crash injected at every I/O operation across both the table file
and its WAL.  The contract is unchanged and sharp:

- committed transactions whose ``commit()`` returned are fully visible;
- aborted / in-flight work is invisible (or lands atomically);
- the reopened file passes full structural verification, including the
  freelist cross-checks (no free page is live, no chain corruption).
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.check import verify_table
from repro.core.errors import HashError
from repro.core.table import HashTable
from repro.core.wal import wal_path_for
from repro.storage.faulty import FaultClock, FaultyPager

CLEAN_ERRORS = (HashError, OSError, EOFError, ValueError, struct.error)

PAIRS = [(f"ch-{i:03d}".encode(), f"val-{i:03d}-".encode() + b"x" * 24) for i in range(64)]
SURVIVOR_SET = PAIRS[48:]
LATE = [(f"late-{i}".encode(), b"after-compact" * 2) for i in range(8)]


def _force_close(t) -> None:
    try:
        t.close()
    except Exception:
        for obj in (getattr(t, "_file", None), getattr(t, "_wal", None)):
            try:
                if obj is not None:
                    obj.close()
            except Exception:
                pass


def run_churn_workload(path, fail_after=None, mode="crash", progress=None):
    """Grow -> contract -> compact -> grow again, each stage an explicit
    transaction (except compact, which is its own checkpointed unit)."""
    if progress is None:
        progress = []
    clock = FaultClock()

    def wrap(f, _c=clock):
        return FaultyPager(f, fail_after=fail_after, mode=mode, clock=_c)

    t = HashTable.create(
        path, bsize=512, ffactor=8, min_fill=0.5, durability="wal",
        file_wrapper=wrap, wal_wrapper=wrap,
    )
    try:
        t.begin()
        for k, v in PAIRS:
            t.put(k, v)
        t.commit()
        progress.append("grown")
        t.begin()
        for k, _ in PAIRS[:48]:
            t.delete(k)
        t.commit()
        assert t.stats.merges > 0, "workload must exercise contraction"
        progress.append("contracted")
        t.compact()
        progress.append("compacted")
        t.begin()
        for k, v in LATE:
            t.put(k, v)
        t.commit()
        progress.append("late")
    finally:
        _force_close(t)
    progress.append("closed")
    return clock.ops


def check_contract(path, progress):
    try:
        t = HashTable.open_file(path, durability="wal")
    except CLEAN_ERRORS:
        assert "grown" not in progress, (
            f"refused to open after acknowledged commits {progress}"
        )
        return
    try:
        if "contracted" in progress:
            # committed deletes visible, survivors intact
            for k, _ in PAIRS[:48]:
                assert t.get(k) is None, f"committed delete of {k!r} lost"
            for k, v in SURVIVOR_SET:
                assert t.get(k) == v, f"lost committed write {k!r}"
        elif "grown" in progress:
            for k, v in PAIRS:
                got = t.get(k)
                if got != v:
                    # the delete txn may have landed -- but only whole
                    deleted = [x for x, _ in PAIRS[:48] if t.get(x) is None]
                    assert len(deleted) == 48, (
                        f"torn delete transaction: {len(deleted)} of 48"
                    )
                    break
        if "late" in progress:
            for k, v in LATE:
                assert t.get(k) == v, f"lost committed write {k!r}"
        else:
            present = [k for k, _ in LATE if t.get(k) is not None]
            assert len(present) in (0, len(LATE)), (
                f"torn late transaction: only {present}"
            )
        # compact is invisible to readers: either image serves the same
        # data, and the file must verify clean either way
        t.check_invariants()
        report = verify_table(t)
        assert report.ok, report.render()
    finally:
        t.close()


def test_calibration_completes(tmp_path):
    progress: list[str] = []
    ops = run_churn_workload(tmp_path / "t.db", progress=progress)
    assert progress[-1] == "closed"
    assert "compacted" in progress
    assert ops > 40
    check_contract(tmp_path / "t.db", progress)


@pytest.mark.parametrize("mode", ["crash", "torn"])
def test_churn_crash_sweep(tmp_path, mode):
    total_ops = run_churn_workload(tmp_path / "calib.db")
    swept = 0
    for n in range(total_ops):
        path = tmp_path / f"s{n}.db"
        progress: list[str] = []
        try:
            run_churn_workload(path, fail_after=n, mode=mode, progress=progress)
        except CLEAN_ERRORS:
            pass
        check_contract(path, progress)
        os.unlink(path)
        wal = wal_path_for(path)
        if os.path.exists(wal):
            os.unlink(wal)
        swept += 1
    assert swept == total_ops
