"""Shared fixtures and collection options for the test suite."""

from __future__ import annotations

import pytest

from repro.core.table import HashTable
from repro.workloads import dictionary_pairs, passwd_pairs


def pytest_addoption(parser):
    parser.addoption(
        "--run-soak",
        action="store_true",
        default=False,
        help="run @pytest.mark.soak tests (long multi-threaded workloads)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-soak"):
        return
    skip = pytest.mark.skip(reason="soak test: pass --run-soak to run")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def small_dict_pairs():
    """500 dictionary pairs (fast unit-test workload)."""
    return list(dictionary_pairs(500))


@pytest.fixture
def passwd_workload():
    """The paper's password dataset (~600 records)."""
    return list(passwd_pairs())


@pytest.fixture
def mem_table():
    """A default in-memory table, closed after the test."""
    t = HashTable.create(None, in_memory=True)
    yield t
    if not t.closed:
        t.close()


@pytest.fixture
def disk_table(tmp_path):
    """A default disk table in a temp dir, closed after the test."""
    t = HashTable.create(tmp_path / "t.db")
    yield t
    if not t.closed:
        t.close()


@pytest.fixture
def tiny_cache_table(tmp_path):
    """A disk table with a minimal buffer pool (forces constant eviction)."""
    t = HashTable.create(tmp_path / "tiny.db", bsize=64, cachesize=0)
    yield t
    if not t.closed:
        t.close()
