"""Tests for the CLI utilities (dump/load/stat/check)."""

import io

import pytest

from repro.core.table import HashTable
from repro.tools.dump import dump_table, load_table
from repro.tools.stat import collect_stats, format_stats
from repro.tools.__main__ import main as tools_main


@pytest.fixture
def table_path(tmp_path):
    p = tmp_path / "t.db"
    t = HashTable.create(p, bsize=256, ffactor=8)
    for i in range(300):
        t.put(f"key-{i}".encode(), f"value-{i}".encode())
    t.put(b"binary\x00key", bytes(range(256)))
    t.close()
    return p


class TestDumpLoad:
    def test_roundtrip(self, table_path, tmp_path):
        t = HashTable.open_file(table_path, readonly=True)
        buf = io.StringIO()
        count = dump_table(t, buf)
        original = dict(t.items())
        t.close()
        assert count == 301

        buf.seek(0)
        out = tmp_path / "loaded.db"
        loaded_count = load_table(out, buf)
        assert loaded_count == 301
        t2 = HashTable.open_file(out, readonly=True)
        assert dict(t2.items()) == original
        # geometry carried through the dump header
        assert t2.header.bsize == 256
        assert t2.header.ffactor == 8
        t2.close()

    def test_binary_safety(self, tmp_path):
        p = tmp_path / "bin.db"
        t = HashTable.create(p)
        t.put(b"\x00\xff\n ", b"\r\n\x00")
        buf = io.StringIO()
        dump_table(t, buf)
        t.close()
        buf.seek(0)
        load_table(tmp_path / "bin2.db", buf)
        t2 = HashTable.open_file(tmp_path / "bin2.db")
        assert t2.get(b"\x00\xff\n ") == b"\r\n\x00"
        t2.close()

    def test_load_overrides_geometry(self, table_path, tmp_path):
        t = HashTable.open_file(table_path, readonly=True)
        buf = io.StringIO()
        dump_table(t, buf)
        t.close()
        buf.seek(0)
        load_table(tmp_path / "o.db", buf, bsize=1024)
        t2 = HashTable.open_file(tmp_path / "o.db")
        assert t2.header.bsize == 1024
        t2.close()

    def test_malformed_dumps_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="HEADER"):
            load_table(tmp_path / "x.db", io.StringIO("no header here\n"))
        bad = "VERSION=1\ntype=btree\nHEADER=END\nDATA=END\n"
        with pytest.raises(ValueError, match="type"):
            load_table(tmp_path / "y.db", io.StringIO(bad))
        truncated = "VERSION=1\ntype=hash\nHEADER=END\n aa\n"
        with pytest.raises(ValueError, match="DATA=END"):
            load_table(tmp_path / "z.db", io.StringIO(truncated))


class TestStat:
    def test_collect(self, table_path):
        t = HashTable.open_file(table_path, readonly=True)
        stats = collect_stats(t)
        t.close()
        assert stats["nkeys"] == 301
        assert stats["bsize"] == 256
        assert stats["buckets"] >= 1
        assert 0 < stats["page_utilization"] <= 1
        assert sum(stats["chain_histogram"].values()) == stats["buckets"]

    def test_format(self, table_path):
        t = HashTable.open_file(table_path, readonly=True)
        text = format_stats(t)
        t.close()
        assert "nkeys" in text
        assert "chain length histogram" in text


class TestCLI:
    def test_stat_command(self, table_path, capsys):
        assert tools_main(["stat", str(table_path)]) == 0
        assert "nkeys" in capsys.readouterr().out

    def test_check_command_clean(self, table_path, capsys):
        assert tools_main(["check", str(table_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_command_corrupt(self, table_path, capsys):
        import struct

        with open(table_path, "r+b") as fh:
            fh.seek(44)  # nkeys
            fh.write(struct.pack(">Q", 424242))
        assert tools_main(["check", str(table_path)]) == 1

    def test_check_command_btree(self, tmp_path, capsys):
        from repro.access.btree import BTree

        p = tmp_path / "t.bt"
        t = BTree.create(p)
        t.put(b"k", b"v")
        t.close()
        assert tools_main(["check", str(p)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dump_load_commands(self, table_path, tmp_path, capsys):
        dump_file = tmp_path / "d.txt"
        assert tools_main(["dump", str(table_path), "-o", str(dump_file)]) == 0
        out = tmp_path / "reloaded.db"
        assert tools_main(["load", str(out), "-i", str(dump_file)]) == 0
        a = HashTable.open_file(table_path, readonly=True)
        b = HashTable.open_file(out, readonly=True)
        assert dict(a.items()) == dict(b.items())
        a.close()
        b.close()


class TestProfCommand:
    def test_synthetic_tree_output(self, capsys):
        assert tools_main(["prof", "-n", "200"]) == 0
        out = capsys.readouterr().out
        assert "ops:" in out
        assert "latency:" in out
        assert "buffer:" in out

    def test_synthetic_json_output(self, capsys):
        import json

        for type_ in ("hash", "btree", "recno"):
            assert tools_main(["prof", "--type", type_, "-n", "100", "--json"]) == 0
            stat = json.loads(capsys.readouterr().out)
            assert stat["type"] == type_
            assert stat["ops"]["counts"]["puts"] >= 100
            assert stat["ops"]["latency"]["get"]["count"] >= 100

    def test_replay_existing_file(self, table_path, capsys):
        assert tools_main(["prof", "--file", str(table_path), "--json"]) == 0
        import json

        stat = json.loads(capsys.readouterr().out)
        assert stat["type"] == "hash"
        assert stat["ops"]["counts"]["gets"] == stat["nkeys"]
