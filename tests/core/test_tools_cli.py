"""End-to-end tests for the ``python -m repro.tools`` CLI: prof, stat,
trace and top run as real subprocesses, the way CI and users invoke
them."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.table import HashTable

SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_tools(*argv: str, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro.tools", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


@pytest.fixture
def table_path(tmp_path):
    p = tmp_path / "t.db"
    t = HashTable.create(p, bsize=256, ffactor=8)
    for i in range(200):
        t.put(f"key-{i}".encode(), f"value-{i}".encode())
    t.close()
    return p


class TestProfCli:
    def test_synthetic_json(self):
        proc = run_tools("prof", "-n", "200", "--json")
        assert proc.returncode == 0, proc.stderr
        stat = json.loads(proc.stdout)
        assert stat["type"] == "hash"
        assert stat["ops"]["counts"]["puts"] == 200

    def test_synthetic_tree(self):
        proc = run_tools("prof", "-n", "50", "--type", "btree")
        assert proc.returncode == 0, proc.stderr
        assert "counts:" in proc.stdout and "btree" in proc.stdout

    def test_replay_missing_file(self):
        proc = run_tools("prof", "--file", "/nonexistent/x.db")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr


class TestStatCli:
    def test_stat_on_hash_file(self, table_path):
        proc = run_tools("stat", str(table_path))
        assert proc.returncode == 0, proc.stderr
        assert "nkeys" in proc.stdout


class TestTraceCli:
    def test_synthetic_exports_all_three_formats(self, tmp_path):
        out = tmp_path / "chrome.json"
        prom = tmp_path / "m.prom"
        nd = tmp_path / "t.ndjson"
        proc = run_tools(
            "trace", "-n", "100", "--workload", "dictionary",
            "-o", str(out), "--prom-out", str(prom), "--ndjson-out", str(nd),
        )
        assert proc.returncode == 0, proc.stderr
        assert "traced" in proc.stderr and "spans" in proc.stderr

        events = json.loads(out.read_text())
        assert isinstance(events, list) and events
        for ev in events:
            assert {"ph", "ts", "pid", "tid", "name"} <= ev.keys()
        names = {ev["name"] for ev in events}
        assert {"open", "put", "get", "sync"} <= names

        text = prom.read_text()
        assert "# TYPE" in text and "repro_" in text

        lines = nd.read_text().splitlines()
        assert len(lines) == len(events)
        assert all(json.loads(ln) for ln in lines)

    def test_replay_traces_existing_file(self, table_path, tmp_path):
        out = tmp_path / "replay.json"
        proc = run_tools("trace", "--file", str(table_path), "-o", str(out))
        assert proc.returncode == 0, proc.stderr
        names = {ev["name"] for ev in json.loads(out.read_text())}
        assert "get" in names and "cursor_next" in names

    def test_missing_file(self):
        proc = run_tools("trace", "--file", "/nonexistent/x.db")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr


class TestTopCli:
    def test_renders_flight_dump(self, tmp_path):
        nd = tmp_path / "t.ndjson"
        proc = run_tools("trace", "-n", "50", "--ndjson-out", str(nd))
        assert proc.returncode == 0, proc.stderr
        proc = run_tools("top", str(nd))
        assert proc.returncode == 0, proc.stderr
        assert "span" in proc.stdout and "put" in proc.stdout
        assert "records" in proc.stdout

    def test_renders_crash_dump_payload(self, tmp_path):
        dump = tmp_path / "x.flight.json"
        dump.write_text(json.dumps({
            "reason": "exception:CrashPoint",
            "events": [
                {"type": "span", "name": "put", "dur": 0.001,
                 "attrs": {"error": "CrashPoint"}},
                {"type": "event", "name": "fault_injected", "attrs": {}},
            ],
        }))
        proc = run_tools("top", str(dump))
        assert proc.returncode == 0, proc.stderr
        assert "fault_injected" in proc.stdout
        # the errored span is counted in the errors column
        row = next(ln for ln in proc.stdout.splitlines() if ln.startswith("put"))
        assert row.split()[-1] == "1"

    def test_missing_file(self):
        proc = run_tools("top", "/nonexistent/x.json")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr

    def test_span_without_dur_falls_back_to_time_ms(self, tmp_path):
        """Serve-layer spans may carry only a pre-measured ``time_ms``
        payload; top must rank them alongside dur-bearing engine spans."""
        dump = tmp_path / "mix.flight.json"
        dump.write_text(json.dumps({
            "events": [
                {"type": "span", "name": "serve.put",
                 "attrs": {"time_ms": 2.0, "status": 128}},
                {"type": "span", "name": "put", "dur": 0.001, "attrs": {}},
            ],
        }))
        proc = run_tools("top", str(dump))
        assert proc.returncode == 0, proc.stderr
        rows = [ln.split() for ln in proc.stdout.splitlines() if ln]
        serve_row = next(r for r in rows if r[0] == "serve.put")
        engine_row = next(r for r in rows if r[0] == "put")
        assert float(serve_row[2]) == pytest.approx(2.0)  # total_ms
        assert float(engine_row[2]) == pytest.approx(1.0)
        # heavier serve span sorts first
        assert proc.stdout.index("serve.put") < proc.stdout.index("put")


class TestSlowCli:
    def _doc(self):
        return {
            "threshold_ms": 5.0, "capacity": 64, "captured": 2, "dropped": 0,
            "entries": [
                {"type": "slow", "op": "serve.put", "dur_ms": 12.5, "seq": 0,
                 "status": 128, "root_span": 1,
                 "spans": [
                     {"type": "span", "id": 1, "name": "serve.put", "ts": 0.0,
                      "parent": None, "attrs": {"time_ms": 12.5, "rid": 7}},
                     {"type": "span", "id": 2, "name": "queue_wait",
                      "parent": 1, "ts": 0.001, "dur": 0.002, "attrs": {}},
                     {"type": "span", "id": 3, "name": "coalesce.exec",
                      "parent": None, "links": [1], "ts": 0.003, "dur": 0.008,
                      "attrs": {"kind": "put", "ops": 1}},
                     {"type": "span", "id": 4, "name": "wal_fsync",
                      "parent": 3, "ts": 0.004, "dur": 0.005,
                      "attrs": {"lsn": 9}},
                 ]},
                {"type": "slow", "op": "serve.get", "dur_ms": 6.0, "seq": 1},
            ],
        }

    def test_renders_span_trees(self, tmp_path):
        f = tmp_path / "slow.json"
        f.write_text(json.dumps(self._doc()))
        proc = run_tools("slow", str(f))
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "threshold 5.0 ms" in out and "2 captured" in out
        # linked-but-unparented exec span nests under the request span
        lines = out.splitlines()
        exec_line = next(l for l in lines if "coalesce.exec" in l)
        fsync_line = next(l for l in lines if "wal_fsync" in l)
        assert "links=1" in exec_line
        assert len(fsync_line) - len(fsync_line.lstrip()) > 0
        assert "lsn=9" in fsync_line
        # the untraced entry degrades with a note
        assert "tracing was off" in out

    def test_json_passthrough(self, tmp_path):
        f = tmp_path / "slow.json"
        f.write_text(json.dumps(self._doc()))
        proc = run_tools("slow", str(f), "--json")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["captured"] == 2

    def test_missing_file(self):
        proc = run_tools("slow", "/nonexistent/slow.json")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr


class TestWatchCli:
    def test_renders_rates(self, tmp_path):
        f = tmp_path / "ts.json"
        f.write_text(json.dumps({
            "taken": 2, "interval": 1.0, "retention": 120,
            "samples": [
                {"t": 1.0, "dt": 1.0, "deltas": {"server.ops.put": 100.0},
                 "gauges": {"server.inflight": 2.0}},
                {"t": 2.0, "dt": 1.0, "deltas": {"server.ops.put": 300.0},
                 "gauges": {"server.inflight": 4.0}},
            ],
        }))
        proc = run_tools("watch", str(f), "--no-clear")
        assert proc.returncode == 0, proc.stderr
        assert "server.ops.put" in proc.stdout
        assert "400" in proc.stdout  # summed delta over the window
        assert "server.inflight" in proc.stdout and "4.000" in proc.stdout

    def test_iterations_rerender(self, tmp_path):
        f = tmp_path / "ts.json"
        f.write_text(json.dumps({"taken": 0, "samples": []}))
        proc = run_tools(
            "watch", str(f), "--iterations", "2", "--interval", "0.01",
            "--no-clear",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("no samples yet") == 2

    def test_missing_file(self):
        proc = run_tools("watch", "/nonexistent/ts.json")
        assert proc.returncode == 1


class TestPromlintCli:
    def test_clean_file(self, tmp_path):
        f = tmp_path / "metrics.prom"
        f.write_text("# TYPE repro_ok gauge\nrepro_ok 1\n")
        proc = run_tools("promlint", str(f))
        assert proc.returncode == 0, proc.stderr
        assert "clean (1 samples)" in proc.stderr

    def test_violations_fail(self, tmp_path):
        f = tmp_path / "bad.prom"
        f.write_text('x{a="1} 1\nx 2\nx 2\n')
        proc = run_tools("promlint", str(f))
        assert proc.returncode == 1
        assert "unterminated" in proc.stdout
        assert "duplicate sample" in proc.stdout
        assert "violation" in proc.stderr

    def test_stdin(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools", "promlint", "-"],
            input="# TYPE x gauge\nx 1\n",
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr

    def test_missing_file(self):
        proc = run_tools("promlint", "/nonexistent/m.prom")
        assert proc.returncode == 1
