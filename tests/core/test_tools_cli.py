"""End-to-end tests for the ``python -m repro.tools`` CLI: prof, stat,
trace and top run as real subprocesses, the way CI and users invoke
them."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.table import HashTable

SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_tools(*argv: str, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro.tools", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


@pytest.fixture
def table_path(tmp_path):
    p = tmp_path / "t.db"
    t = HashTable.create(p, bsize=256, ffactor=8)
    for i in range(200):
        t.put(f"key-{i}".encode(), f"value-{i}".encode())
    t.close()
    return p


class TestProfCli:
    def test_synthetic_json(self):
        proc = run_tools("prof", "-n", "200", "--json")
        assert proc.returncode == 0, proc.stderr
        stat = json.loads(proc.stdout)
        assert stat["type"] == "hash"
        assert stat["ops"]["counts"]["puts"] == 200

    def test_synthetic_tree(self):
        proc = run_tools("prof", "-n", "50", "--type", "btree")
        assert proc.returncode == 0, proc.stderr
        assert "counts:" in proc.stdout and "btree" in proc.stdout

    def test_replay_missing_file(self):
        proc = run_tools("prof", "--file", "/nonexistent/x.db")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr


class TestStatCli:
    def test_stat_on_hash_file(self, table_path):
        proc = run_tools("stat", str(table_path))
        assert proc.returncode == 0, proc.stderr
        assert "nkeys" in proc.stdout


class TestTraceCli:
    def test_synthetic_exports_all_three_formats(self, tmp_path):
        out = tmp_path / "chrome.json"
        prom = tmp_path / "m.prom"
        nd = tmp_path / "t.ndjson"
        proc = run_tools(
            "trace", "-n", "100", "--workload", "dictionary",
            "-o", str(out), "--prom-out", str(prom), "--ndjson-out", str(nd),
        )
        assert proc.returncode == 0, proc.stderr
        assert "traced" in proc.stderr and "spans" in proc.stderr

        events = json.loads(out.read_text())
        assert isinstance(events, list) and events
        for ev in events:
            assert {"ph", "ts", "pid", "tid", "name"} <= ev.keys()
        names = {ev["name"] for ev in events}
        assert {"open", "put", "get", "sync"} <= names

        text = prom.read_text()
        assert "# TYPE" in text and "repro_" in text

        lines = nd.read_text().splitlines()
        assert len(lines) == len(events)
        assert all(json.loads(ln) for ln in lines)

    def test_replay_traces_existing_file(self, table_path, tmp_path):
        out = tmp_path / "replay.json"
        proc = run_tools("trace", "--file", str(table_path), "-o", str(out))
        assert proc.returncode == 0, proc.stderr
        names = {ev["name"] for ev in json.loads(out.read_text())}
        assert "get" in names and "cursor_next" in names

    def test_missing_file(self):
        proc = run_tools("trace", "--file", "/nonexistent/x.db")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr


class TestTopCli:
    def test_renders_flight_dump(self, tmp_path):
        nd = tmp_path / "t.ndjson"
        proc = run_tools("trace", "-n", "50", "--ndjson-out", str(nd))
        assert proc.returncode == 0, proc.stderr
        proc = run_tools("top", str(nd))
        assert proc.returncode == 0, proc.stderr
        assert "span" in proc.stdout and "put" in proc.stdout
        assert "records" in proc.stdout

    def test_renders_crash_dump_payload(self, tmp_path):
        dump = tmp_path / "x.flight.json"
        dump.write_text(json.dumps({
            "reason": "exception:CrashPoint",
            "events": [
                {"type": "span", "name": "put", "dur": 0.001,
                 "attrs": {"error": "CrashPoint"}},
                {"type": "event", "name": "fault_injected", "attrs": {}},
            ],
        }))
        proc = run_tools("top", str(dump))
        assert proc.returncode == 0, proc.stderr
        assert "fault_injected" in proc.stdout
        # the errored span is counted in the errors column
        row = next(ln for ln in proc.stdout.splitlines() if ln.startswith("put"))
        assert row.split()[-1] == "1"

    def test_missing_file(self):
        proc = run_tools("top", "/nonexistent/x.json")
        assert proc.returncode == 1
        assert "no such file" in proc.stderr

    def test_span_without_dur_falls_back_to_time_ms(self, tmp_path):
        """Serve-layer spans may carry only a pre-measured ``time_ms``
        payload; top must rank them alongside dur-bearing engine spans."""
        dump = tmp_path / "mix.flight.json"
        dump.write_text(json.dumps({
            "events": [
                {"type": "span", "name": "serve.put",
                 "attrs": {"time_ms": 2.0, "status": 128}},
                {"type": "span", "name": "put", "dur": 0.001, "attrs": {}},
            ],
        }))
        proc = run_tools("top", str(dump))
        assert proc.returncode == 0, proc.stderr
        rows = [ln.split() for ln in proc.stdout.splitlines() if ln]
        serve_row = next(r for r in rows if r[0] == "serve.put")
        engine_row = next(r for r in rows if r[0] == "put")
        assert float(serve_row[2]) == pytest.approx(2.0)  # total_ms
        assert float(engine_row[2]) == pytest.approx(1.0)
        # heavier serve span sorts first
        assert proc.stdout.index("serve.put") < proc.stdout.index("put")
