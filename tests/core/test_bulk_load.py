"""The presized bulk loader: zero splits, paper-equivalent contents.

Acceptance criterion of the hot-path PR: ``bulk_load`` of the dictionary
workload performs **zero** bucket splits, asserted via the ``on_split``
hook (Figure 6's "number of entries known in advance" case).
"""

import pytest

from repro.core.errors import InvalidParameterError, ReadOnlyError
from repro.core.table import HashTable
from repro.workloads.dictionary import dictionary_words


def make_items(n):
    return [(w, w[::-1]) for w in dictionary_words(n)]


class TestZeroSplits:
    def test_dictionary_load_never_splits(self):
        items = make_items(4000)
        t = HashTable.create(None)
        splits = []
        t.hooks.subscribe("on_split", splits.append)
        try:
            assert t.bulk_load(items) == 4000
            assert splits == []
            assert t.stats.splits == 0
            assert len(t) == 4000
            t.check_invariants()
        finally:
            t.close()

    def test_presize_matches_create_nelem(self):
        items = make_items(2000)
        loaded = HashTable.create(None)
        presized = HashTable.create(None, nelem=2000)
        try:
            loaded.bulk_load(items)
            assert loaded.nbuckets == presized.nbuckets
            assert loaded.header.high_mask == presized.header.high_mask
            assert loaded.header.low_mask == presized.header.low_mask
            assert loaded.header.ovfl_point == presized.header.ovfl_point
        finally:
            loaded.close()
            presized.close()

    def test_contents_equal_put_path(self):
        items = make_items(1000)
        bulk = HashTable.create(None)
        grown = HashTable.create(None)
        try:
            bulk.bulk_load(items)
            for k, d in items:
                grown.put(k, d)
            assert sorted(bulk.items()) == sorted(grown.items())
        finally:
            bulk.close()
            grown.close()


class TestSemantics:
    def test_duplicate_keys_last_wins(self):
        with HashTable.create(None) as t:
            assert t.bulk_load([(b"k", b"a"), (b"j", b"x"), (b"k", b"b")]) == 2
            assert t.get(b"k") == b"b"
            assert len(t) == 2

    def test_nelem_overrides_presize(self):
        with HashTable.create(None) as t:
            t.bulk_load(make_items(10), nelem=5000)
            assert t.nbuckets * t.header.ffactor >= 5000
            assert len(t) == 10
            t.check_invariants()

    def test_empty_load(self):
        with HashTable.create(None) as t:
            assert t.bulk_load([]) == 0
            assert len(t) == 0

    def test_populated_table_rejected(self):
        with HashTable.create(None) as t:
            t.put(b"a", b"1")
            with pytest.raises(InvalidParameterError):
                t.bulk_load(make_items(10))

    def test_split_table_rejected(self):
        with HashTable.create(None) as t:
            for k, d in make_items(200):
                t.put(k, d)
            for k, _ in make_items(200):
                t.delete(k)
            assert len(t) == 0
            # nkeys is zero but the table has split: still not pristine.
            with pytest.raises(InvalidParameterError):
                t.bulk_load(make_items(10))

    def test_readonly_rejected(self, tmp_path):
        p = tmp_path / "ro.db"
        HashTable.create(p).close()
        t = HashTable.open_file(p, readonly=True)
        try:
            with pytest.raises(ReadOnlyError):
                t.bulk_load(make_items(10))
        finally:
            t.close()

    def test_reopen_after_bulk_load(self, tmp_path):
        p = tmp_path / "bulk.db"
        items = make_items(1500)
        with HashTable.create(p) as t:
            t.bulk_load(items)
        t = HashTable.open_file(p)
        try:
            assert len(t) == 1500
            for k, d in items[::97]:
                assert t.get(k) == d
            t.check_invariants()
        finally:
            t.close()

    def test_puts_after_bulk_load_keep_working(self):
        with HashTable.create(None) as t:
            t.bulk_load(make_items(500))
            t.put(b"new-key", b"new-val")
            assert t.get(b"new-key") == b"new-val"
            assert t.delete(b"new-key")
            t.check_invariants()
