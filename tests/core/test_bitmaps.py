"""Unit tests for overflow-page allocation bitmaps."""

import pytest

from repro.core.addressing import make_oaddr, oaddr_to_slot, split_oaddr
from repro.core.bitmaps import OvflAllocator
from repro.core.buffer import BufferPool
from repro.core.constants import PAGE_F_BITMAP
from repro.core.errors import HashFullError
from repro.core.header import NO_LAST_FREED, Header
from repro.core import addressing
from repro.storage.memfile import MemPagedFile


def make_allocator(bsize=64, ovfl_point=0, cachesize=1 << 16):
    header = Header(bsize=bsize, bshift=bsize.bit_length() - 1, ffactor=8)
    header.ovfl_point = ovfl_point
    f = MemPagedFile(bsize)

    def addr(key):
        kind, n = key
        if kind == "B":
            return addressing.bucket_to_page(n, header.hdr_pages, header.spares)
        return addressing.oaddr_to_page(n, header.hdr_pages, header.spares)

    pool = BufferPool(f, bsize, cachesize, addr)
    return header, pool, OvflAllocator(header, pool)


class TestAlloc:
    def test_first_alloc_creates_bitmap_page(self):
        header, pool, alloc = make_allocator()
        oaddr = alloc.alloc()
        # slot 0 went to the bitmap page itself... or the data page; either
        # way two slots exist: one bitmap, one data.
        assert header.bitmaps[0] != 0
        assert header.spares[header.ovfl_point] == 2
        assert oaddr != header.bitmaps[0]
        assert alloc.is_set(oaddr_to_slot(oaddr, header.spares))

    def test_bitmap_page_flagged(self):
        header, pool, alloc = make_allocator()
        alloc.alloc()
        hdr = pool.get(("O", header.bitmaps[0]))
        from repro.core.pages import PageView

        assert PageView(hdr.page).flags & PAGE_F_BITMAP

    def test_sequential_allocs_are_distinct(self):
        header, pool, alloc = make_allocator()
        addrs = [alloc.alloc() for _ in range(20)]
        assert len(set(addrs)) == 20
        for a in addrs:
            s, p = split_oaddr(a)
            assert s == header.ovfl_point

    def test_allocs_at_higher_split_point(self):
        header, pool, alloc = make_allocator(ovfl_point=3)
        a = alloc.alloc()
        s, _p = split_oaddr(a)
        assert s == 3
        # spares entries at and above the split point move together
        assert header.spares[3] == header.spares[31]
        assert header.spares[2] == 0

    def test_split_point_exhaustion(self):
        header, pool, alloc = make_allocator()
        # fake a full split point
        for i in range(32):
            header.spares[i] = 2047
        with pytest.raises(HashFullError):
            alloc.alloc()


class TestFree:
    def test_free_then_realloc_reuses(self):
        header, pool, alloc = make_allocator()
        a1 = alloc.alloc()
        a2 = alloc.alloc()
        alloc.free(a1)
        assert header.last_freed != NO_LAST_FREED
        a3 = alloc.alloc()
        assert a3 == a1  # reused, file did not grow
        assert a2 != a3

    def test_double_free_asserts(self):
        header, pool, alloc = make_allocator()
        a = alloc.alloc()
        alloc.free(a)
        with pytest.raises(AssertionError):
            alloc.free(a)

    def test_free_invalidates_pool_buffer(self):
        header, pool, alloc = make_allocator()
        a = alloc.alloc()
        pool.get(("O", a), create=True)
        alloc.free(a)
        assert ("O", a) not in pool

    def test_freed_slot_cleared_in_bitmap(self):
        header, pool, alloc = make_allocator()
        a = alloc.alloc()
        slot = oaddr_to_slot(a, header.spares)
        assert alloc.is_set(slot)
        alloc.free(a)
        assert not alloc.is_set(slot)

    def test_reuse_across_split_points(self):
        """A page freed at an old split point is reused before extending."""
        header, pool, alloc = make_allocator(ovfl_point=0)
        a_old = alloc.alloc()
        # advance the table a generation
        header.ovfl_point = 1
        alloc.free(a_old)
        a_new = alloc.alloc()
        assert a_new == a_old

    def test_in_use_count(self):
        header, pool, alloc = make_allocator()
        addrs = [alloc.alloc() for _ in range(5)]
        # 5 data pages + 1 bitmap page
        assert alloc.in_use_count() == 6
        alloc.free(addrs[2])
        assert alloc.in_use_count() == 5


class TestBitmapGrowth:
    def test_capacity_extends_with_second_bitmap_page(self):
        # tiny pages: (64-8)*8 = 448 bits per bitmap page
        header, pool, alloc = make_allocator(bsize=64)
        for _ in range(500):  # > 448 slots
            alloc.alloc()
        assert header.bitmaps[0] != 0
        assert header.bitmaps[1] != 0
        assert alloc.in_use_count() == 502  # 500 data + 2 bitmap pages

    def test_bitmap_pages_never_reused(self):
        header, pool, alloc = make_allocator()
        alloc.alloc()
        bitmap_slot = oaddr_to_slot(header.bitmaps[0], header.spares)
        assert alloc.is_set(bitmap_slot)


class TestPersistenceThroughPool:
    def test_bitmap_survives_eviction(self):
        """Bitmap pages live in the LRU pool like everything else; state
        must survive being evicted and re-read."""
        header, pool, alloc = make_allocator(cachesize=0)
        addrs = [alloc.alloc() for _ in range(30)]
        # churn the pool with unrelated bucket pages
        for i in range(40):
            pool.get(("B", 0), create=True)
            pool.invalidate(("B", 0))
        for a in addrs:
            assert alloc.is_set(oaddr_to_slot(a, header.spares))
