"""Tests for the dict-like HashDB wrapper and module-level open()."""

import pytest

import repro
from repro.core.dbmap import HashDB, open as hash_open


class TestHashDB:
    def test_mapping_protocol(self, mem_table):
        db = HashDB(mem_table)
        db[b"k"] = b"v"
        assert db[b"k"] == b"v"
        assert b"k" in db
        assert len(db) == 1
        del db[b"k"]
        assert len(db) == 0

    def test_str_keys_encoded_utf8(self, mem_table):
        db = HashDB(mem_table)
        db["clé"] = "valüe"
        assert db["clé"] == "valüe".encode("utf-8")
        assert db[b"cl\xc3\xa9"] == "valüe".encode("utf-8")

    def test_missing_key_raises(self, mem_table):
        db = HashDB(mem_table)
        with pytest.raises(KeyError):
            db[b"nope"]
        with pytest.raises(KeyError):
            del db[b"nope"]

    def test_get_default(self, mem_table):
        db = HashDB(mem_table)
        assert db.get(b"nope") is None
        assert db.get(b"nope", b"d") == b"d"

    def test_bad_key_type(self, mem_table):
        db = HashDB(mem_table)
        with pytest.raises(TypeError):
            db[42] = b"v"

    def test_iteration_and_update(self, mem_table):
        db = HashDB(mem_table)
        db.update({b"a": b"1", b"b": b"2"})
        assert sorted(db) == [b"a", b"b"]
        assert sorted(db.items()) == [(b"a", b"1"), (b"b", b"2")]

    def test_setdefault_and_pop(self, mem_table):
        db = HashDB(mem_table)
        assert db.setdefault(b"k", b"v") == b"v"
        assert db.setdefault(b"k", b"other") == b"v"
        assert db.pop(b"k") == b"v"
        assert db.pop(b"k", b"gone") == b"gone"


class TestOpen:
    def test_open_c_creates(self, tmp_path):
        p = tmp_path / "db"
        with hash_open(p, "c") as db:
            db[b"k"] = b"v"
        with hash_open(p, "r") as db:
            assert db[b"k"] == b"v"

    def test_open_r_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            hash_open(tmp_path / "missing", "r")

    def test_open_n_truncates(self, tmp_path):
        p = tmp_path / "db"
        with hash_open(p, "c") as db:
            db[b"old"] = b"1"
        with hash_open(p, "n") as db:
            assert b"old" not in db

    def test_open_w_existing(self, tmp_path):
        p = tmp_path / "db"
        hash_open(p, "c").close()
        with hash_open(p, "w") as db:
            db[b"k"] = b"v"
        with hash_open(p, "r") as db:
            assert db[b"k"] == b"v"

    def test_open_r_is_readonly(self, tmp_path):
        p = tmp_path / "db"
        hash_open(p, "c").close()
        db = hash_open(p, "r")
        with pytest.raises(repro.ReadOnlyError):
            db[b"k"] = b"v"
        db.close()

    def test_bad_flag(self, tmp_path):
        with pytest.raises(ValueError):
            hash_open(tmp_path / "db", "x")

    def test_open_none_is_anonymous(self):
        with hash_open(None, "c") as db:
            db[b"k"] = b"v"
            assert db[b"k"] == b"v"

    def test_repro_hash_open_is_the_same_function(self):
        # repro.open is the unified access-method entry point; the
        # dbm-style hash mapping stays available as repro.hash_open
        assert repro.hash_open is hash_open
        from repro.access.db import open as unified_open

        assert repro.open is unified_open

    def test_create_parameters_forwarded(self, tmp_path):
        with hash_open(tmp_path / "db", "c", bsize=1024, ffactor=32) as db:
            assert db.table.header.bsize == 1024
            assert db.table.header.ffactor == 32

    def test_sync(self, tmp_path):
        p = tmp_path / "db"
        db = hash_open(p, "c")
        db[b"k"] = b"v"
        db.sync()
        with hash_open(p, "r") as db2:
            assert db2[b"k"] == b"v"
        db.close()
