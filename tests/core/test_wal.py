"""Unit tests for the write-ahead log layer: record format, scanning,
torn-tail semantics, reset, and the log-level corruption checks."""

from __future__ import annotations

import pytest

from repro.core.errors import WALCorruptionError
from repro.core.wal import (
    FRAME_HDR_SIZE,
    FT_CHECKPOINT,
    FT_COMMIT,
    FT_PAGE,
    WAL_HDR_SIZE,
    MemByteStore,
    WriteAheadLog,
    read_wal_header,
    wal_path_for,
)
from repro.storage.bytefile import ByteFile

PAGESIZE = 256


@pytest.fixture
def wal(tmp_path):
    store = ByteFile(tmp_path / "t.db.wal", create=True)
    w = WriteAheadLog(store, PAGESIZE, fresh=True)
    yield w
    if not store.closed:
        store.close()


class TestRecordFormat:
    def test_append_scan_roundtrip(self, wal):
        img_a = bytes(range(256))
        img_b = bytes(reversed(range(256)))
        wal.append(FT_PAGE, 1, 7, img_a)
        wal.append(FT_PAGE, 1, 9, img_b)
        wal.append(FT_COMMIT, 1)
        frames = list(wal.scan())
        assert [f.ftype for f in frames] == [FT_PAGE, FT_PAGE, FT_COMMIT]
        assert [f.lsn for f in frames] == [1, 2, 3]
        assert frames[0].pageno == 7 and frames[0].payload == img_a
        assert frames[1].pageno == 9 and frames[1].payload == img_b
        assert all(f.txid == 1 for f in frames)

    def test_append_returns_offset_readable_via_read_payload(self, wal):
        _lsn, offset = wal.append(FT_PAGE, 1, 3, b"\xaa" * PAGESIZE)
        assert wal.read_payload(offset, PAGESIZE) == b"\xaa" * PAGESIZE

    def test_append_pages_batches_one_write(self, wal):
        writes_before = wal.store.stats.page_writes
        out = wal.append_pages(2, [(0, b"\x01" * PAGESIZE), (1, b"\x02" * PAGESIZE)])
        assert wal.store.stats.page_writes == writes_before + 1
        assert [(pageno) for pageno, _l, _o in out] == [0, 1]
        for pageno, _lsn, offset in out:
            assert wal.read_payload(offset, PAGESIZE) == bytes([pageno + 1]) * PAGESIZE

    def test_reopen_resumes_lsn_and_tail(self, tmp_path):
        path = tmp_path / "t.db.wal"
        store = ByteFile(path, create=True)
        w = WriteAheadLog(store, PAGESIZE, fresh=True)
        w.append(FT_PAGE, 1, 0, b"x" * PAGESIZE)
        w.append(FT_COMMIT, 1)
        tail, next_lsn = w.tail, w.next_lsn
        store.close()
        w2 = WriteAheadLog(ByteFile(path), PAGESIZE, fresh=False)
        assert w2.tail == tail
        assert w2.next_lsn == next_lsn
        w2.close()


class TestTornTail:
    def put_three(self, wal):
        wal.append(FT_PAGE, 1, 0, b"a" * PAGESIZE)
        wal.append(FT_COMMIT, 1)
        wal.append(FT_PAGE, 2, 1, b"b" * PAGESIZE)

    def test_scan_stops_at_short_tail(self, wal):
        self.put_three(wal)
        # tear the last frame: drop its final byte
        wal.store.truncate_to(wal.tail - 1)
        assert [f.ftype for f in wal.scan()] == [FT_PAGE, FT_COMMIT]

    def test_scan_stops_at_crc_mismatch(self, wal):
        self.put_three(wal)
        frames = list(wal.scan())
        # flip one payload bit in the FIRST frame: it and everything
        # after it become unreachable (orphaned tail)
        byte_at = frames[0].offset + FRAME_HDR_SIZE + 10
        original = wal.store.read_at(byte_at, 1)
        wal.store.write_at(byte_at, bytes([original[0] ^ 0x01]))
        assert list(wal.scan()) == []

    def test_trailing_garbage_ignored(self, wal):
        self.put_three(wal)
        wal.store.write_at(wal.tail, b"garbage-not-a-frame-header-at-all")
        assert len(list(wal.scan())) == 3

    def test_unknown_frame_type_stops_scan(self, wal):
        wal.append(FT_COMMIT, 1)
        # forge a frame header with ftype 99 (crc won't even be checked)
        import struct

        body = struct.pack(">QQBII", 5, 1, 99, 0, 0)
        wal.store.write_at(wal.tail, struct.pack(">I", 0) + body)
        assert len(list(wal.scan())) == 1


class TestReset:
    def test_reset_truncates_and_marks(self, wal):
        wal.append(FT_PAGE, 1, 0, b"x" * PAGESIZE)
        wal.append(FT_COMMIT, 1)
        wal.reset()
        frames = list(wal.scan())
        assert [f.ftype for f in frames] == [FT_CHECKPOINT]
        assert wal.resets == 1
        assert wal.tail == WAL_HDR_SIZE + FRAME_HDR_SIZE
        # LSNs keep climbing across generations
        assert frames[0].lsn == 3


class TestHeaderValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(WALCorruptionError, match="magic"):
            WriteAheadLog(ByteFile(path), PAGESIZE, fresh=False)

    def test_pagesize_mismatch(self, tmp_path):
        path = tmp_path / "t.db.wal"
        store = ByteFile(path, create=True)
        WriteAheadLog(store, PAGESIZE, fresh=True)
        store.close()
        with pytest.raises(WALCorruptionError, match="pagesize"):
            WriteAheadLog(ByteFile(path), PAGESIZE * 2, fresh=False)

    def test_short_header(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(WALCorruptionError, match="short"):
            read_wal_header(ByteFile(path))

    def test_read_wal_header_roundtrip(self, wal):
        from repro.core.wal import WAL_MAGIC, WAL_VERSION

        magic, version, ps = read_wal_header(wal.store)
        assert (magic, version, ps) == (WAL_MAGIC, WAL_VERSION, PAGESIZE)


class TestMemByteStore:
    def test_read_write_truncate(self):
        s = MemByteStore()
        s.write_at(0, b"hello")
        assert s.read_at(0, 5) == b"hello"
        assert s.read_at_most(3, 100) == b"lo"
        with pytest.raises(EOFError):
            s.read_at(3, 100)
        s.truncate_to(2)
        assert s.size() == 2
        s.truncate_to(4)
        assert s.read_at(0, 4) == b"he\x00\x00"
        s.sync()

    def test_closed_refuses(self):
        s = MemByteStore()
        s.close()
        assert s.closed
        with pytest.raises(ValueError):
            s.read_at_most(0, 1)


def test_wal_path_for(tmp_path):
    assert wal_path_for(tmp_path / "a.db") == str(tmp_path / "a.db") + ".wal"
