"""Disk persistence: sync, close/reopen, header round-trips, corruption."""

import pytest

from repro.core.errors import BadFileError, HashFunctionMismatchError
from repro.core.table import HashTable


class TestReopen:
    def test_close_reopen_preserves_everything(self, tmp_path):
        p = tmp_path / "t.db"
        data = {f"key-{i}".encode(): f"value-{i}".encode() * 3 for i in range(800)}
        with HashTable.create(p, bsize=256, ffactor=8) as t:
            for k, v in data.items():
                t.put(k, v)
        t2 = HashTable.open_file(p)
        assert len(t2) == len(data)
        for k, v in data.items():
            assert t2.get(k) == v
        t2.check_invariants()
        t2.close()

    def test_geometry_preserved(self, tmp_path):
        p = tmp_path / "t.db"
        with HashTable.create(p, bsize=512, ffactor=16, nelem=300) as t:
            h1 = (t.header.bsize, t.header.ffactor, t.header.max_bucket)
        t2 = HashTable.open_file(p)
        assert (t2.header.bsize, t2.header.ffactor, t2.header.max_bucket) == h1
        t2.close()

    def test_sync_makes_state_durable_before_close(self, tmp_path):
        """sync() then reading the file via a second handle sees the data."""
        p = tmp_path / "t.db"
        t = HashTable.create(p)
        t.put(b"k", b"v")
        t.sync()
        r = HashTable.open_file(p, readonly=True)
        assert r.get(b"k") == b"v"
        r.close()
        t.close()

    def test_reopen_and_continue_writing(self, tmp_path):
        p = tmp_path / "t.db"
        with HashTable.create(p, ffactor=4) as t:
            for i in range(200):
                t.put(f"a{i}".encode(), b"1")
        with HashTable.open_file(p) as t:
            for i in range(200):
                t.put(f"b{i}".encode(), b"2")
            t.check_invariants()
        with HashTable.open_file(p, readonly=True) as t:
            assert len(t) == 400
            assert t.get(b"a5") == b"1"
            assert t.get(b"b5") == b"2"

    def test_reopen_with_overflow_and_big_pairs(self, tmp_path):
        p = tmp_path / "t.db"
        with HashTable.create(p, bsize=128, ffactor=32) as t:
            for i in range(300):
                t.put(f"key-{i}".encode(), b"x" * 20)
            t.put(b"BIG" * 100, b"Y" * 5000)
        with HashTable.open_file(p) as t:
            assert t.get(b"key-250") == b"x" * 20
            assert t.get(b"BIG" * 100) == b"Y" * 5000
            t.check_invariants()

    def test_multiple_reopen_cycles(self, tmp_path):
        p = tmp_path / "t.db"
        HashTable.create(p).close()
        for cycle in range(5):
            with HashTable.open_file(p) as t:
                t.put(f"cycle-{cycle}".encode(), str(cycle).encode())
        with HashTable.open_file(p, readonly=True) as t:
            for cycle in range(5):
                assert t.get(f"cycle-{cycle}".encode()) == str(cycle).encode()


class TestHashFunctionCheck:
    def test_matching_function_accepted(self, tmp_path):
        p = tmp_path / "t.db"
        HashTable.create(p, hashfn="sdbm").close()
        t = HashTable.open_file(p, hashfn="sdbm")
        t.close()

    def test_mismatched_function_rejected(self, tmp_path):
        p = tmp_path / "t.db"
        HashTable.create(p, hashfn="sdbm").close()
        with pytest.raises(HashFunctionMismatchError):
            HashTable.open_file(p, hashfn="larson")

    def test_default_vs_named_mismatch(self, tmp_path):
        p = tmp_path / "t.db"
        HashTable.create(p).close()  # default
        with pytest.raises(HashFunctionMismatchError):
            HashTable.open_file(p, hashfn="fnv1a")

    def test_user_function_roundtrip(self, tmp_path):
        def myhash(key: bytes) -> int:
            return sum(key) * 2654435761 & 0xFFFFFFFF

        p = tmp_path / "t.db"
        with HashTable.create(p, hashfn=myhash) as t:
            t.put(b"k", b"v")
        with HashTable.open_file(p, hashfn=myhash) as t:
            assert t.get(b"k") == b"v"


class TestCorruption:
    def test_not_a_hash_file(self, tmp_path):
        p = tmp_path / "junk.db"
        p.write_bytes(b"this is not a hash file" * 100)
        with pytest.raises(BadFileError):
            HashTable.open_file(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.db"
        p.write_bytes(b"")
        with pytest.raises(BadFileError):
            HashTable.open_file(p)

    def test_truncated_header(self, tmp_path):
        p = tmp_path / "trunc.db"
        with HashTable.create(p) as t:
            t.put(b"k", b"v")
        raw = p.read_bytes()
        p.write_bytes(raw[:100])
        with pytest.raises(BadFileError):
            HashTable.open_file(p)


class TestHeaderPages:
    def test_small_bsize_uses_multiple_header_pages(self, tmp_path):
        p = tmp_path / "t.db"
        with HashTable.create(p, bsize=64) as t:
            assert t.header.hdr_pages == 8  # 512 / 64
            for i in range(100):
                t.put(f"k{i}".encode(), b"v")
        with HashTable.open_file(p) as t:
            assert t.header.hdr_pages == 8
            assert len(t) == 100
            t.check_invariants()

    def test_large_bsize_single_header_page(self, tmp_path):
        with HashTable.create(tmp_path / "t.db", bsize=8192) as t:
            assert t.header.hdr_pages == 1
