"""Edge cases: boundary sizes, pathological hashes, cursor semantics."""

import pytest

from repro.core.constants import LEN_MASK
from repro.core.table import HashTable


class TestBoundarySizes:
    def test_key_at_inline_offset_limit(self):
        """Keys near the 15-bit in-page length limit go to big-pair
        chains and still work."""
        t = HashTable.create(None, bsize=8192, in_memory=True)
        key = b"K" * LEN_MASK  # 32767 bytes
        t.put(key, b"v")
        assert t.get(key) == b"v"
        t.close()

    def test_value_various_sizes_around_page(self):
        t = HashTable.create(None, bsize=256, in_memory=True)
        for size in (0, 1, 100, 233, 234, 235, 255, 256, 257, 1000):
            key = f"size-{size}".encode()
            t.put(key, b"x" * size)
            assert t.get(key) == b"x" * size, size
        t.check_invariants()
        t.close()

    def test_single_byte_and_max_bsize(self):
        t = HashTable.create(None, bsize=32768, in_memory=True)
        t.put(b"k", b"v")
        assert t.get(b"k") == b"v"
        t.close()


class TestPathologicalHashes:
    def test_constant_hash_all_operations(self):
        t = HashTable.create(
            None, bsize=128, ffactor=4, in_memory=True, hashfn=lambda k: 0
        )
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(150)}
        for k, v in data.items():
            t.put(k, v)
        for k in list(data)[:50]:
            t.delete(k)
            del data[k]
        assert dict(t.items()) == data
        t.check_invariants()
        t.close()

    def test_two_value_hash(self):
        """All keys land in two buckets; chains stay consistent across
        splits that move nothing."""
        t = HashTable.create(
            None, bsize=128, ffactor=2, in_memory=True,
            hashfn=lambda k: len(k) & 1,
        )
        for i in range(100):
            t.put(f"key-{i:03d}-{'x' * (i % 2)}".encode(), b"v")
        assert len(t) == 100
        t.check_invariants()
        t.close()

    def test_high_bits_only_hash(self):
        """A hash using only high bits degenerates bucket selection to
        bucket 0/low buckets but must stay correct."""
        t = HashTable.create(
            None, bsize=128, ffactor=4, in_memory=True,
            hashfn=lambda k: (sum(k) & 0xFF) << 24,
        )
        for i in range(200):
            t.put(f"key-{i}".encode(), b"v")
        assert len(t) == 200
        t.check_invariants()
        t.close()


class TestCursorSemantics:
    def test_cursor_survives_reads(self, mem_table):
        for i in range(20):
            mem_table.put(f"k{i:02d}".encode(), b"v")
        first = mem_table.first_key()
        mem_table.get(b"k10")  # unrelated read
        nxt = mem_table.next_key()
        assert nxt != first

    def test_cursor_on_reopened_table(self, tmp_path):
        p = tmp_path / "c.db"
        with HashTable.create(p) as t:
            for i in range(30):
                t.put(f"k{i}".encode(), b"v")
        with HashTable.open_file(p, readonly=True) as t:
            seen = set()
            k = t.first_key()
            while k is not None:
                seen.add(k)
                k = t.next_key()
            assert len(seen) == 30

    def test_cursor_stable_across_table_halves(self, mem_table):
        """Scan sees each surviving key at most once even with buckets of
        very different sizes."""
        for i in range(64):
            mem_table.put(f"{i:02d}".encode(), b"v" * (1 + i % 32))
        seen = []
        k = mem_table.first_key()
        while k is not None:
            seen.append(k)
            k = mem_table.next_key()
        assert len(seen) == len(set(seen)) == 64


class TestHashFunctionEdge:
    def test_custom_callable_reopen_requires_same_callable(self, tmp_path):
        from repro.core.errors import HashFunctionMismatchError

        p = tmp_path / "h.db"
        fn = lambda k: (sum(k) * 31) & 0xFFFFFFFF  # noqa: E731
        with HashTable.create(p, hashfn=fn) as t:
            t.put(b"k", b"v")
        # same function works
        with HashTable.open_file(p, hashfn=fn) as t:
            assert t.get(b"k") == b"v"
        # the default refuses
        with pytest.raises(HashFunctionMismatchError):
            HashTable.open_file(p)

    def test_two_custom_functions_with_equal_charkey_hash_accepted(self, tmp_path):
        """The charkey check is a heuristic: functions agreeing on the
        check value are accepted (documented behaviour of the original)."""
        p = tmp_path / "h.db"
        a = lambda k: len(k)  # noqa: E731
        b = lambda k: len(k)  # noqa: E731  (different object, same result)
        HashTable.create(p, hashfn=a).close()
        t = HashTable.open_file(p, hashfn=b)
        t.close()


class TestManyTables:
    def test_sixteen_tables_interleaved(self):
        tables = [
            HashTable.create(None, bsize=64, ffactor=2, in_memory=True)
            for _ in range(16)
        ]
        for round_ in range(30):
            for i, t in enumerate(tables):
                t.put(f"r{round_}".encode(), f"t{i}".encode())
        for i, t in enumerate(tables):
            assert t.get(b"r7") == f"t{i}".encode()
            assert len(t) == 30
            t.close()
