"""Splitting behaviour: controlled, uncontrolled, masks, reclamation."""

from repro.core.constants import NO_OADDR
from repro.core.pages import PageView
from repro.core.table import HashTable


def fill(table, n, value=b"v", prefix="key"):
    for i in range(n):
        table.put(f"{prefix}-{i}".encode(), value)


class TestControlledSplitting:
    def test_split_when_fill_factor_exceeded(self):
        t = HashTable.create(None, ffactor=4, bsize=1024, in_memory=True)
        fill(t, 4)  # nkeys == ffactor * 1 bucket: no split yet
        assert t.nbuckets == 1
        t.put(b"key-extra", b"v")
        assert t.nbuckets == 2
        assert t.stats.controlled_splits >= 1
        t.close()

    def test_fill_ratio_tracks_ffactor(self):
        t = HashTable.create(None, ffactor=8, bsize=1024, in_memory=True)
        fill(t, 2000)
        assert t.fill_ratio() <= 8.0 + 1e-9
        # linear hashing keeps the table near the fill factor, not far under
        assert t.fill_ratio() > 3.0
        t.check_invariants()
        t.close()

    def test_splits_follow_linear_order(self):
        """max_bucket advances by exactly one per split."""
        t = HashTable.create(None, ffactor=2, bsize=1024, in_memory=True)
        seen = [t.nbuckets]
        for i in range(50):
            t.put(f"k{i}".encode(), b"v")
            if t.nbuckets != seen[-1]:
                assert t.nbuckets == seen[-1] + 1
                seen.append(t.nbuckets)
        assert len(seen) > 5
        t.close()


class TestUncontrolledSplitting:
    def test_overflow_triggers_split(self):
        """Large values overflow pages long before the fill factor does."""
        t = HashTable.create(None, ffactor=100, bsize=64, in_memory=True)
        for i in range(30):
            t.put(f"key-{i}".encode(), b"V" * 30)
        assert t.stats.uncontrolled_splits > 0
        assert t.nbuckets > 1
        for i in range(30):
            assert t.get(f"key-{i}".encode()) == b"V" * 30
        t.check_invariants()
        t.close()


class TestMaskMaintenance:
    def test_masks_across_generations(self):
        t = HashTable.create(None, ffactor=1, bsize=1024, in_memory=True)
        for i in range(300):
            t.put(f"k{i}".encode(), b"v")
            h = t.header
            assert h.low_mask == h.high_mask >> 1
            assert h.low_mask <= h.max_bucket <= h.high_mask
        t.close()

    def test_every_key_findable_across_many_generations(self):
        t = HashTable.create(None, ffactor=2, bsize=256, in_memory=True)
        n = 800
        fill(t, n)
        assert t.nbuckets >= 256
        for i in range(n):
            assert t.get(f"key-{i}".encode()) == b"v", i
        t.check_invariants()
        t.close()


class TestOverflowReclamation:
    def test_split_reclaims_overflow_pages(self):
        """'overflow pages ... are reclaimed, if possible, when the bucket
        later splits.'"""
        t = HashTable.create(None, ffactor=64, bsize=64, cachesize=1 << 16,
                             in_memory=True)
        # cram keys into few buckets to build chains, then force splits
        for i in range(200):
            t.put(f"key-{i:04d}".encode(), b"v" * 8)
        in_use = t.allocator.in_use_count()
        spares_total = t.header.spares[t.header.ovfl_point]
        # freed pages exist (in_use < allocated) thanks to reclamation
        assert in_use <= spares_total
        t.check_invariants()
        t.close()

    def test_chains_shrink_after_split(self):
        t = HashTable.create(None, ffactor=50, bsize=64, in_memory=True)
        for i in range(100):
            t.put(f"key-{i:03d}".encode(), b"v")
        # force reads of all chains and verify integrity
        assert sorted(k for k, _ in t.items()) == sorted(
            f"key-{i:03d}".encode() for i in range(100)
        )
        t.close()


class TestSplitRedistribution:
    def test_split_moves_keys_to_correct_buckets(self):
        t = HashTable.create(None, ffactor=4, bsize=1024, in_memory=True)
        fill(t, 500)
        # check_invariants asserts every key lives where it hashes
        t.check_invariants()
        t.close()

    def test_primary_pages_of_split_buckets_have_no_stale_chain(self):
        t = HashTable.create(None, ffactor=8, bsize=128, in_memory=True)
        fill(t, 300, value=b"data" * 4)
        # walk every chain; ovfl addresses must resolve without loops
        for b in range(t.nbuckets):
            hdr = t._fault(("B", b))
            seen = set()
            view = PageView(hdr.page)
            while view.ovfl_addr != NO_OADDR:
                assert view.ovfl_addr not in seen
                seen.add(view.ovfl_addr)
                hdr = t._fault(("O", view.ovfl_addr))
                view = PageView(hdr.page)
        t.close()
