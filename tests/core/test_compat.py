"""Tests for the ndbm- and hsearch-compatible interfaces."""

import pytest

from repro.core.compat import hsearch as hs
from repro.core.compat.hsearch import ENTER, FIND, HsearchCompat
from repro.core.compat.ndbm import DBM_INSERT, DBM_REPLACE, NdbmCompat, dbm_open


class TestNdbmCompat:
    def test_store_fetch_delete(self, tmp_path):
        with dbm_open(tmp_path / "db", "c") as db:
            assert db.store(b"k", b"v") == 0
            assert db.fetch(b"k") == b"v"
            assert db.delete(b"k") == 0
            assert db.fetch(b"k") is None
            assert db.delete(b"k") == -1

    def test_insert_flag_semantics(self, tmp_path):
        with dbm_open(tmp_path / "db", "c") as db:
            assert db.store(b"k", b"v1", DBM_INSERT) == 0
            assert db.store(b"k", b"v2", DBM_INSERT) == 1  # refused
            assert db.fetch(b"k") == b"v1"
            assert db.store(b"k", b"v2", DBM_REPLACE) == 0
            assert db.fetch(b"k") == b"v2"

    def test_bad_flags(self, tmp_path):
        with dbm_open(tmp_path / "db", "c") as db:
            with pytest.raises(ValueError):
                db.store(b"k", b"v", 7)

    def test_firstkey_nextkey_scan(self, tmp_path):
        with dbm_open(tmp_path / "db", "c") as db:
            expected = set()
            for i in range(100):
                k = f"key{i}".encode()
                db.store(k, b"v")
                expected.add(k)
            seen = set()
            k = db.firstkey()
            while k is not None:
                seen.add(k)
                k = db.nextkey()
            assert seen == expected

    def test_multiple_databases_concurrently(self, tmp_path):
        """The ndbm improvement over dbm, kept by the new package."""
        db1 = dbm_open(tmp_path / "one", "c")
        db2 = dbm_open(tmp_path / "two", "c")
        db1.store(b"k", b"from-one")
        db2.store(b"k", b"from-two")
        assert db1.fetch(b"k") == b"from-one"
        assert db2.fetch(b"k") == b"from-two"
        db1.close()
        db2.close()

    def test_enhanced_large_pairs_never_fail(self, tmp_path):
        """'Inserts never fail because key and/or associated data is too
        large' -- unlike real ndbm."""
        with dbm_open(tmp_path / "db", "c", bsize=256) as db:
            assert db.store(b"bigkey" * 100, b"bigdata" * 1000) == 0
            assert db.fetch(b"bigkey" * 100) == b"bigdata" * 1000

    def test_single_file_not_pag_dir_pair(self, tmp_path):
        db = dbm_open(tmp_path / "db", "c")
        db.store(b"k", b"v")
        db.close()
        assert (tmp_path / "db").exists()
        assert not (tmp_path / "db.pag").exists()
        assert not (tmp_path / "db.dir").exists()

    def test_reopen(self, tmp_path):
        with dbm_open(tmp_path / "db", "c") as db:
            db.store(b"k", b"v")
        with dbm_open(tmp_path / "db", "r") as db:
            assert db.fetch(b"k") == b"v"

    def test_escape_hatch_to_native(self, tmp_path):
        with dbm_open(tmp_path / "db", "c") as db:
            db.store(b"k", b"v")
            assert db.table.get(b"k") == b"v"


class TestHsearchCompat:
    def test_enter_and_find(self):
        t = HsearchCompat(nelem=100)
        assert t.hsearch(b"k", b"v", ENTER) == b"v"
        assert t.hsearch(b"k", None, FIND) == b"v"
        assert t.hsearch(b"missing", None, FIND) is None
        t.hdestroy()

    def test_enter_existing_returns_old(self):
        t = HsearchCompat(nelem=10)
        t.hsearch(b"k", b"first", ENTER)
        assert t.hsearch(b"k", b"second", ENTER) == b"first"
        t.hdestroy()

    def test_enter_requires_data(self):
        t = HsearchCompat(nelem=10)
        with pytest.raises(ValueError):
            t.hsearch(b"k", None, ENTER)
        t.hdestroy()

    def test_bad_action(self):
        t = HsearchCompat(nelem=10)
        with pytest.raises(ValueError):
            t.hsearch(b"k", b"v", 9)
        t.hdestroy()

    def test_grows_past_nelem(self):
        """Enhanced over System V: no 'table full' failure."""
        t = HsearchCompat(nelem=4)
        for i in range(500):
            t.hsearch(f"k{i}".encode(), b"v", ENTER)
        assert t.table.nkeys == 500
        t.hdestroy()

    def test_multiple_tables_via_objects(self):
        a = HsearchCompat(nelem=10)
        b = HsearchCompat(nelem=10)
        a.hsearch(b"k", b"A", ENTER)
        b.hsearch(b"k", b"B", ENTER)
        assert a.hsearch(b"k", None, FIND) == b"A"
        assert b.hsearch(b"k", None, FIND) == b"B"
        a.hdestroy()
        b.hdestroy()

    def test_bad_nelem(self):
        with pytest.raises(ValueError):
            HsearchCompat(nelem=0)


class TestGlobalHsearch:
    """The faithful single-global-table System V shape."""

    def teardown_method(self):
        hs.hdestroy()

    def test_lifecycle(self):
        assert hs.hcreate(100) is True
        assert hs.hcreate(100) is False  # one global table only
        hs.hsearch(b"k", b"v", ENTER)
        assert hs.hsearch(b"k", None, FIND) == b"v"
        hs.hdestroy()
        assert hs.hcreate(10) is True  # allowed again after destroy

    def test_use_before_create(self):
        with pytest.raises(RuntimeError):
            hs.hsearch(b"k", b"v", ENTER)

    def test_hdestroy_without_create_is_noop(self):
        hs.hdestroy()
