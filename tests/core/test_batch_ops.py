"""Batch operations: semantics, lock amortization, aggregate spans.

Acceptance criterion of the hot-path PR: ``put_many``/``get_many`` on N
keys acquire the table rwlock O(groups) times -- once per bucket group
-- not O(N), counted by wrapping the lock's acquire methods.
"""

import pytest

from repro.core.errors import ReadOnlyError
from repro.core.table import HashTable
from repro.workloads.dictionary import dictionary_words


def make_items(n):
    return [(w, w[::-1]) for w in dictionary_words(n)]


class TestSemantics:
    def test_put_many_then_get_many_roundtrip(self):
        items = make_items(500)
        with HashTable.create(None) as t:
            assert t.put_many(items) == 500
            assert len(t) == 500
            keys = [k for k, _ in items]
            assert t.get_many(keys) == [d for _, d in items]
            t.check_invariants()

    def test_get_many_preserves_order_and_default(self):
        with HashTable.create(None) as t:
            t.put_many([(b"a", b"1"), (b"b", b"2")])
            assert t.get_many([b"b", b"missing", b"a"], b"?") == [b"2", b"?", b"1"]

    def test_delete_many_counts_only_present(self):
        items = make_items(100)
        with HashTable.create(None) as t:
            t.put_many(items)
            keys = [k for k, _ in items]
            assert t.delete_many(keys[:40] + [b"ghost"]) == 40
            assert len(t) == 60
            t.check_invariants()

    def test_put_many_no_replace(self):
        with HashTable.create(None) as t:
            t.put(b"a", b"old")
            assert t.put_many([(b"a", b"new"), (b"b", b"2")], replace=False) == 1
            assert t.get(b"a") == b"old"
            assert t.get(b"b") == b"2"

    def test_duplicate_keys_in_batch_last_wins(self):
        with HashTable.create(None) as t:
            t.put_many([(b"k", b"first"), (b"k", b"second")])
            assert t.get(b"k") == b"second"
            assert len(t) == 1

    def test_bytearray_input_accepted(self):
        with HashTable.create(None) as t:
            t.put_many([(bytearray(b"a"), bytearray(b"1"))])
            assert t.get_many([bytearray(b"a")]) == [b"1"]
            assert t.delete_many([bytearray(b"a")]) == 1

    def test_bad_types_raise(self):
        with HashTable.create(None) as t:
            with pytest.raises(TypeError):
                t.put_many([("str", b"v")])
            with pytest.raises(TypeError):
                t.get_many([3])

    def test_empty_batches(self):
        with HashTable.create(None) as t:
            assert t.put_many([]) == 0
            assert t.get_many([]) == []
            assert t.delete_many([]) == 0

    def test_readonly_rejects_writes(self, tmp_path):
        p = tmp_path / "ro.db"
        with HashTable.create(p) as t:
            t.put(b"a", b"1")
        t = HashTable.open_file(p, readonly=True)
        try:
            with pytest.raises(ReadOnlyError):
                t.put_many([(b"b", b"2")])
            with pytest.raises(ReadOnlyError):
                t.delete_many([b"a"])
            assert t.get_many([b"a"]) == [b"1"]
        finally:
            t.close()


class _CountingLock:
    """Wraps an RWLock's acquire methods with call counters."""

    def __init__(self, lock):
        self.reads = 0
        self.writes = 0
        self._orig_read = lock.acquire_read
        self._orig_write = lock.acquire_write
        lock.acquire_read = self._acquire_read
        lock.acquire_write = self._acquire_write

    def _acquire_read(self):
        self.reads += 1
        self._orig_read()

    def _acquire_write(self):
        self.writes += 1
        self._orig_write()


class TestLockAmortization:
    def test_put_many_acquires_write_lock_once_per_group(self):
        items = make_items(400)
        t = HashTable.create(None, concurrent=True)
        try:
            hashes = [t._hash(k) for k, _ in items]
            ngroups = len(t._group_by_bucket(hashes))
            counter = _CountingLock(t._lock)
            t.put_many(items)
            assert counter.writes == ngroups
            assert counter.writes < len(items)
        finally:
            t.close()

    def test_get_many_acquires_read_lock_once_per_group(self):
        items = make_items(400)
        t = HashTable.create(None, concurrent=True, nelem=400)
        try:
            t.put_many(items)
            keys = [k for k, _ in items]
            ngroups = len(t._group_by_bucket([t._hash(k) for k in keys]))
            counter = _CountingLock(t._lock)
            assert t.get_many(keys) == [d for _, d in items]
            assert counter.reads == ngroups
            assert counter.reads < len(keys)
        finally:
            t.close()

    def test_single_bucket_batch_takes_one_lock(self):
        # A fresh default table has one bucket, so every key is one group:
        # N puts under exactly one write-lock acquisition (splits during
        # the batch happen inside the already-held lock).
        items = make_items(50)
        t = HashTable.create(None, concurrent=True)
        try:
            assert t.nbuckets == 1
            counter = _CountingLock(t._lock)
            t.put_many(items)
            assert counter.writes == 1
            counter2 = _CountingLock(t._lock)
            t.delete_many([k for k, _ in items][:10])
            assert counter2.writes <= t.nbuckets
        finally:
            t.close()


class TestAggregateSpan:
    def test_one_span_per_batch_not_per_op(self):
        items = make_items(64)
        t = HashTable.create(None, tracing=True)
        try:
            t.put_many(items)
            t.get_many([k for k, _ in items])
            names = [
                ev["name"]
                for ev in t.flight_recorder.events()
                if ev["type"] == "span"
            ]
            assert names.count("put_many") == 1
            assert names.count("get_many") == 1
            assert "put" not in names and "get" not in names
        finally:
            t.close()

    def test_span_attrs_record_batch_shape(self):
        items = make_items(64)
        t = HashTable.create(None, tracing=True)
        try:
            t.put_many(items)
            span = next(
                ev
                for ev in t.flight_recorder.events()
                if ev["name"] == "put_many"
            )
            assert span["attrs"]["n"] == 64
            assert span["attrs"]["groups"] >= 1
        finally:
            t.close()
