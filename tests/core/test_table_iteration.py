"""Sequential access: items/keys/values generators and the ndbm cursor."""

from repro.core.table import HashTable


class TestItems:
    def test_items_yields_everything_once(self, mem_table):
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(300)}
        for k, v in data.items():
            mem_table.put(k, v)
        got = list(mem_table.items())
        assert len(got) == 300
        assert dict(got) == data

    def test_empty_table(self, mem_table):
        assert list(mem_table.items()) == []
        assert mem_table.first_key() is None

    def test_keys_and_values_align(self, mem_table):
        for i in range(50):
            mem_table.put(f"k{i}".encode(), f"v{i}".encode())
        keys = list(mem_table.keys())
        values = list(mem_table.values())
        assert len(keys) == len(values) == 50
        for k, v in zip(keys, values):
            assert v == b"v" + k[1:]

    def test_iteration_covers_overflow_chains(self):
        t = HashTable.create(None, bsize=64, ffactor=100, in_memory=True)
        data = {f"key-{i:03d}".encode(): b"x" * 10 for i in range(150)}
        for k, v in data.items():
            t.put(k, v)
        assert dict(t.items()) == data
        t.close()


class TestCursor:
    def test_first_next_covers_all(self, mem_table):
        expected = set()
        for i in range(200):
            k = f"k{i}".encode()
            mem_table.put(k, b"v")
            expected.add(k)
        seen = []
        k = mem_table.first_key()
        while k is not None:
            seen.append(k)
            k = mem_table.next_key()
        assert len(seen) == 200
        assert set(seen) == expected

    def test_next_without_first_starts_scan(self, mem_table):
        mem_table.put(b"only", b"v")
        assert mem_table.next_key() == b"only"
        assert mem_table.next_key() is None

    def test_first_resets_cursor(self, mem_table):
        for i in range(10):
            mem_table.put(f"k{i}".encode(), b"v")
        a = mem_table.first_key()
        mem_table.next_key()
        mem_table.next_key()
        assert mem_table.first_key() == a

    def test_exhausted_cursor_stays_none(self, mem_table):
        mem_table.put(b"k", b"v")
        mem_table.first_key()
        assert mem_table.next_key() is None
        assert mem_table.next_key() is None

    def test_cursor_single_bucket_order_matches_items(self, mem_table):
        for i in range(5):
            mem_table.put(f"k{i}".encode(), b"v")
        via_cursor = []
        k = mem_table.first_key()
        while k is not None:
            via_cursor.append(k)
            k = mem_table.next_key()
        via_items = [k for k, _v in mem_table.items()]
        assert via_cursor == via_items


class TestSequentialOnDisk:
    def test_iteration_after_reopen(self, tmp_path):
        p = tmp_path / "t.db"
        data = {f"key-{i}".encode(): str(i).encode() for i in range(500)}
        with HashTable.create(p, ffactor=4) as t:
            for k, v in data.items():
                t.put(k, v)
        with HashTable.open_file(p, readonly=True) as t:
            assert dict(t.items()) == data
