"""Unit tests for the segmented bucket array."""

import pytest

from repro.core.bucketarray import BucketArray


class TestGrowth:
    def test_starts_empty(self):
        arr = BucketArray()
        assert len(arr) == 0
        assert arr.allocated_segments() == 0

    def test_grow_to(self):
        arr = BucketArray()
        arr.grow_to(10)
        assert len(arr) == 10
        assert arr.get(9) is None

    def test_grow_is_monotonic(self):
        arr = BucketArray()
        arr.grow_to(10)
        arr.grow_to(5)  # no shrink
        assert len(arr) == 10

    def test_append_bucket_returns_number(self):
        arr = BucketArray()
        assert arr.append_bucket() == 0
        assert arr.append_bucket() == 1
        assert len(arr) == 2

    def test_segments_allocated_lazily(self):
        arr = BucketArray(segment_size=4)
        arr.grow_to(12)
        assert arr.allocated_segments() == 0
        arr.set(9, "x")
        assert arr.allocated_segments() == 1

    def test_directory_reallocates_past_32k_equivalent(self):
        # small sizes to simulate "buckets exceed 256*256"
        arr = BucketArray(segment_size=4, dir_size=4)
        arr.grow_to(16)  # exactly dir capacity: no realloc
        assert arr.reallocations == 0
        arr.grow_to(17)
        assert arr.reallocations == 1
        assert arr.dir_size == 8
        arr.grow_to(200)
        arr.set(199, "y")
        assert arr.get(199) == "y"


class TestAccess:
    def test_set_get_clear(self):
        arr = BucketArray()
        arr.grow_to(300)  # spans two default segments
        arr.set(0, "a")
        arr.set(255, "b")
        arr.set(256, "c")
        assert arr.get(0) == "a"
        assert arr.get(255) == "b"
        assert arr.get(256) == "c"
        arr.clear(255)
        assert arr.get(255) is None

    def test_out_of_range_raises(self):
        arr = BucketArray()
        arr.grow_to(5)
        with pytest.raises(IndexError):
            arr.get(5)
        with pytest.raises(IndexError):
            arr.set(-1, "x")

    def test_iter_set_skips_none(self):
        arr = BucketArray(segment_size=4)
        arr.grow_to(10)
        arr.set(1, "a")
        arr.set(7, "b")
        assert list(arr.iter_set()) == [(1, "a"), (7, "b")]

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            BucketArray(segment_size=0)
        with pytest.raises(ValueError):
            BucketArray(dir_size=0)
