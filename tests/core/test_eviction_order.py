"""Eviction-order guarantees of the O(1) LRU shrink path.

The pool picks its victim with ``next(iter(pool))`` on an OrderedDict
(the LRU head) instead of scanning; pinned heads are rotated to the MRU
end rather than walked past.  These tests pin the observable order.
"""

from repro.core.buffer import BufferPool
from repro.obs.hooks import TraceHooks
from repro.storage.memfile import MemPagedFile

BSIZE = 64


def make_pool(nbuffers):
    f = MemPagedFile(BSIZE)

    def addr(key):
        kind, n = key
        return n if kind == "B" else 1000 + n

    hooks = TraceHooks()
    evicted = []
    hooks.subscribe("on_evict", lambda p: evicted.append(p["key"]))
    pool = BufferPool(f, BSIZE, nbuffers * BSIZE, addr, hooks=hooks)
    assert pool.max_buffers == nbuffers
    return pool, evicted


def test_victims_leave_in_lru_order():
    pool, evicted = make_pool(4)
    for i in range(4):
        pool.get(("B", i), create=True)
    # Overflow one at a time: victims must be 0, 1, 2 in that order.
    pool.get(("B", 4), create=True)
    pool.get(("B", 5), create=True)
    pool.get(("B", 6), create=True)
    assert evicted == [("B", 0), ("B", 1), ("B", 2)]


def test_access_refreshes_recency():
    pool, evicted = make_pool(4)
    for i in range(4):
        pool.get(("B", i), create=True)
    pool.get(("B", 0))  # refresh: 0 is now MRU
    pool.get(("B", 4), create=True)
    pool.get(("B", 5), create=True)
    assert evicted == [("B", 1), ("B", 2)]


def test_pinned_head_is_skipped_not_scanned():
    pool, evicted = make_pool(4)
    hdrs = [pool.get(("B", i), create=True) for i in range(4)]
    hdrs[0].pin()  # LRU head is pinned: next-oldest goes instead
    pool.get(("B", 4), create=True)
    assert evicted == [("B", 1)]
    # Rotation counts as a recency refresh for the pinned page (it was
    # in active use), so the unpinned survivors go first, then B0.
    hdrs[0].unpin()
    pool.get(("B", 5), create=True)
    pool.get(("B", 6), create=True)
    pool.get(("B", 7), create=True)
    pool.get(("B", 8), create=True)
    assert evicted == [("B", 1), ("B", 2), ("B", 3), ("B", 4), ("B", 0)]


def test_all_pinned_pool_overflows_softly():
    pool, evicted = make_pool(4)
    hdrs = [pool.get(("B", i), create=True) for i in range(4)]
    for h in hdrs:
        h.pin()
    # Budget is a soft target when everything is pinned: no eviction,
    # no infinite loop, the new page is admitted.
    pool.get(("B", 4), create=True)
    assert evicted == []
    assert len(pool._pool) == 5
    for h in hdrs:
        h.unpin()
