"""Tests for the structural verifier, including corruption injection."""

import struct

import pytest

from repro.core.check import verify_file, verify_table
from repro.core.header import Header
from repro.core.table import HashTable


def build_table(path, nkeys=400, **kwargs):
    params = dict(bsize=128, ffactor=4)
    params.update(kwargs)
    t = HashTable.create(path, **params)
    for i in range(nkeys):
        t.put(f"key-{i}".encode(), f"value-{i}".encode() * 2)
    t.put(b"bigkey" * 50, b"B" * 3000)
    t.close()
    return path


class TestCleanTables:
    def test_fresh_table_is_clean(self, tmp_path):
        p = tmp_path / "t.db"
        HashTable.create(p).close()
        report = verify_file(p)
        assert report.ok, report.render()
        assert report.stats["nkeys"] == 0

    def test_populated_table_is_clean(self, tmp_path):
        p = build_table(tmp_path / "t.db")
        report = verify_file(p)
        assert report.ok, report.render()
        assert report.stats["nkeys"] == 401
        assert report.stats["big_pairs"] == 1
        assert report.stats["overflow_slots_in_use"] > 0

    def test_after_heavy_churn(self, tmp_path):
        p = tmp_path / "t.db"
        t = HashTable.create(p, bsize=128, ffactor=4)
        for i in range(600):
            t.put(f"k{i}".encode(), b"v" * (i % 50))
        for i in range(0, 600, 2):
            t.delete(f"k{i}".encode())
        for i in range(600, 900):
            t.put(f"k{i}".encode(), b"w" * (i % 80))
        t.close()
        report = verify_file(p)
        assert report.ok, report.render()

    def test_open_table_verifiable_in_place(self):
        t = HashTable.create(None, in_memory=True)
        for i in range(100):
            t.put(f"k{i}".encode(), b"v")
        report = verify_table(t)
        assert report.ok
        t.close()

    def test_report_render(self, tmp_path):
        p = build_table(tmp_path / "t.db", nkeys=50)
        text = verify_file(p).render()
        assert "clean" in text
        assert "nkeys: 51" in text


def corrupt(path, offset: int, data: bytes) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(data)


class TestCorruptionDetected:
    def test_wrong_nkeys(self, tmp_path):
        p = build_table(tmp_path / "t.db")
        # nkeys is a u64 at offset 44 of the header
        corrupt(p, 44, struct.pack(">Q", 9999))
        report = verify_file(p)
        assert not report.ok
        assert any("nkeys" in e for e in report.errors)

    def test_bad_masks(self, tmp_path):
        p = build_table(tmp_path / "t.db")
        corrupt(p, 28, struct.pack(">I", 0x1234))  # high_mask
        report = verify_file(p)
        assert not report.ok
        assert any("mask" in e for e in report.errors)

    def test_decreasing_spares(self, tmp_path):
        p = build_table(tmp_path / "t.db")
        # spares array starts at offset 60; zero a middle entry
        corrupt(p, 60 + 4 * 3, struct.pack(">I", 0))
        report = verify_file(p)
        assert not report.ok

    def test_smashed_bucket_page(self, tmp_path):
        p = build_table(tmp_path / "t.db", bsize=128)
        t = HashTable.open_file(p, readonly=True)
        hdr_pages = t.header.hdr_pages
        t.close()
        # overwrite bucket 0's slot table with garbage (keep plausible
        # nslots/data_off so parsing reaches the entries)
        corrupt(p, hdr_pages * 128, struct.pack(">HHHH", 5, 40, 0, 0))
        report = verify_file(p)
        assert not report.ok

    def test_misplaced_key(self, tmp_path):
        """A key stored in the wrong bucket is caught by the hash check."""
        p = tmp_path / "t.db"
        t = HashTable.create(p, bsize=128, ffactor=4)
        for i in range(200):
            t.put(f"key-{i}".encode(), b"v")
        # forge: write a pair into bucket 0 that does not hash there
        victim = next(
            f"key-{i}".encode()
            for i in range(200)
            if t._bucket_of(f"key-{i}".encode()) != 0
        )
        hdr = t._fault(("B", 0))
        from repro.core.pages import PageView

        PageView(hdr.page).add_pair(victim + b"-forged", b"x")
        hdr.dirty = True
        t.header.nkeys += 1
        t.close()
        report = verify_file(p)
        assert not report.ok
        assert any("hashes to" in e for e in report.errors)

    def test_bitmap_bit_cleared(self, tmp_path):
        """A chain page whose allocation bit is clear is an error."""
        p = tmp_path / "t.db"
        t = HashTable.create(p, bsize=64, ffactor=100)  # force chains
        for i in range(60):
            t.put(f"key-{i:02d}".encode(), b"v" * 20)
        # clear one in-use chain slot behind the allocator's back
        slot = next(s for s in range(t.allocator.total_slots) if t.allocator.is_set(s))
        # slot 0 may be the bitmap page itself -- pick a chain page by
        # scanning from the top
        for s in range(t.allocator.total_slots - 1, -1, -1):
            if t.allocator.is_set(s):
                slot = s
                break
        t.allocator._clear_bit(slot)
        t.close()
        report = verify_file(p)
        assert not report.ok or report.warnings


class TestLeakDetection:
    def test_leaked_slot_warns(self, tmp_path):
        p = tmp_path / "t.db"
        t = HashTable.create(p, bsize=64)
        t.put(b"k", b"v")
        # allocate an overflow page nothing references
        t.allocator.alloc()
        t.close()
        report = verify_file(p)
        assert report.ok  # leak is a warning, not an error
        assert any("leak" in w for w in report.warnings)
