"""Regression: invalidating a cached page address must poison any
outstanding :class:`BufferHeader` (and its cached PageView), so a stale
reference can never decode bytes of the page's next life.

The freelist made this reachable: a contracted bucket's page goes back to
the pager and a later allocation reuses the same address for unrelated
contents."""

from __future__ import annotations

from repro.core.buffer import BufferPool
from repro.core.pages import PageView
from repro.storage.memfile import MemPagedFile

BSIZE = 256


def _pool():
    io = MemPagedFile(BSIZE)
    return io, BufferPool(io, BSIZE, BSIZE * 8, lambda key: key)


def test_invalidate_poisons_outstanding_header():
    _io, pool = _pool()
    hdr = pool.get(3, create=True)
    view = hdr.view()
    view.initialize()
    view.add_pair(b"old-key", b"old-val")
    epoch = hdr.epoch
    pool.invalidate(3)
    # the dropped header is unusable for decoding, not silently stale
    assert hdr.epoch == epoch + 1
    assert hdr.formatted is False
    assert hdr._view is None
    assert hdr.dirty is False


def test_stale_view_not_reused_after_address_reuse():
    _io, pool = _pool()
    hdr = pool.get(5, create=True)
    old_view = hdr.view()
    old_view.initialize()
    old_view.add_pair(b"doomed", b"bucket")
    hdr.dirty = False  # never write the dead page back (merge path)
    pool.invalidate(5)

    # the address comes back for unrelated contents (freelist reuse)
    hdr2 = pool.get(5, create=True)
    new_view = hdr2.view()
    new_view.initialize()
    new_view.add_pair(b"fresh", b"page")

    # a fresh fault must hand out the new buffer, not the poisoned one
    assert pool.get(5) is hdr2
    assert hdr2.view().get_pair(0) == (b"fresh", b"page")
    # the old header no longer caches a view; a new view over its bytes
    # is explicitly a private construction, never pool state
    assert hdr._view is None


def test_discard_poisons_like_invalidate():
    _io, pool = _pool()
    hdr = pool.get(7, create=True)
    view = hdr.view()
    view.initialize()
    hdr.dirty = True
    epoch = hdr.epoch
    dropped = pool.discard(lambda h: True)
    assert dropped == 1
    assert hdr.epoch == epoch + 1
    assert hdr._view is None
    # discard never writes back
    assert _io.npages() == 0


def test_shared_view_identity_while_resident():
    _io, pool = _pool()
    hdr = pool.get(1, create=True)
    assert hdr.view() is hdr.view()
    assert isinstance(hdr.view(), PageView)
