"""Unit tests for file-header serialization."""

import pytest

from repro.core.constants import HASH_MAGIC, HDR_SIZE
from repro.core.errors import BadFileError
from repro.core.header import NO_LAST_FREED, Header


def make_header(**overrides) -> Header:
    base = dict(bsize=256, bshift=8, ffactor=8)
    base.update(overrides)
    return Header(**base)


class TestPack:
    def test_packed_size_is_fixed(self):
        assert len(make_header().pack()) == HDR_SIZE

    def test_roundtrip_defaults(self):
        h = make_header()
        assert Header.unpack(h.pack()) == h

    def test_roundtrip_full_state(self):
        h = make_header(
            max_bucket=1234,
            high_mask=2047,
            low_mask=1023,
            ovfl_point=11,
            last_freed=17,
            nkeys=99999,
            hdr_pages=2,
            h_charkey=0xDEADBEEF,
        )
        h.spares = list(range(32))
        h.bitmaps = [i * 3 for i in range(32)]
        assert Header.unpack(h.pack()) == h

    def test_large_nkeys(self):
        h = make_header(nkeys=2**40)
        assert Header.unpack(h.pack()).nkeys == 2**40


class TestUnpackValidation:
    def test_bad_magic(self):
        raw = bytearray(make_header().pack())
        raw[0] ^= 0xFF
        with pytest.raises(BadFileError, match="magic"):
            Header.unpack(bytes(raw))

    def test_bad_version(self):
        h = make_header()
        h.version = 99
        with pytest.raises(BadFileError, match="version"):
            Header.unpack(h.pack())

    def test_truncated(self):
        with pytest.raises(BadFileError, match="short"):
            Header.unpack(b"\0" * 10)

    def test_inconsistent_bsize_bshift(self):
        h = make_header(bshift=9)  # 1<<9 != 256
        with pytest.raises(BadFileError, match="bsize"):
            Header.unpack(h.pack())

    def test_magic_is_the_historical_value(self):
        assert HASH_MAGIC == 0x061561


class TestDefaults:
    def test_fresh_header_state(self):
        h = make_header()
        assert h.max_bucket == 0
        assert h.high_mask == 1
        assert h.low_mask == 0
        assert h.ovfl_point == 0
        assert h.last_freed == NO_LAST_FREED
        assert h.nkeys == 0
        assert h.spares == [0] * 32
        assert h.bitmaps == [0] * 32
