"""Unit tests for the provided hash functions."""

import pytest

from repro.core.hashfuncs import (
    HASH_FUNCTIONS,
    default_hash,
    fnv1a_hash,
    get_hash_function,
    knuth_mult_hash,
    larson_hash,
    pjw_hash,
    sdbm_hash,
    thompson_hash,
)
from repro.workloads import dictionary_words

ALL_FUNCS = sorted(HASH_FUNCTIONS.items())


class TestContracts:
    @pytest.mark.parametrize("name,fn", ALL_FUNCS)
    def test_returns_32bit_unsigned(self, name, fn):
        for key in (b"", b"a", b"hello world", bytes(range(256)), b"x" * 1000):
            h = fn(key)
            assert isinstance(h, int)
            assert 0 <= h <= 0xFFFFFFFF, f"{name} out of range on {key!r}"

    @pytest.mark.parametrize("name,fn", ALL_FUNCS)
    def test_deterministic(self, name, fn):
        assert fn(b"determinism") == fn(b"determinism")

    @pytest.mark.parametrize("name,fn", ALL_FUNCS)
    def test_sensitive_to_input(self, name, fn):
        # not a collision proof, just a sanity check on obviously distinct keys
        values = {fn(k) for k in (b"a", b"b", b"ab", b"ba", b"abc")}
        assert len(values) >= 4, f"{name} collides on trivial inputs"


class TestKnownValues:
    def test_default_is_times_33(self):
        # h = ((0*33 + ord('a'))*33 + ord('b'))
        assert default_hash(b"ab") == 97 * 33 + 98

    def test_sdbm_is_times_65599(self):
        assert sdbm_hash(b"ab") == (97 * 65599 + 98) & 0xFFFFFFFF

    def test_larson_is_times_101(self):
        assert larson_hash(b"ab") == 97 * 101 + 98

    def test_fnv1a_reference_vector(self):
        # well-known FNV-1a test vector
        assert fnv1a_hash(b"") == 0x811C9DC5
        assert fnv1a_hash(b"a") == 0xE40C292C

    def test_empty_key_values(self):
        assert default_hash(b"") == 0
        assert pjw_hash(b"") == 0
        assert knuth_mult_hash(b"") == 0


class TestQuality:
    """The paper: the default was fastest but 'within a small percentage of
    the function that produced the fewest collisions'."""

    #: functions whose *low bits* must be well distributed -- the property
    #: linear hashing needs, since buckets are selected by masking.  pjw and
    #: knuth are mod-prime designs with historically weak low bits, which is
    #: exactly why the package does not default to them.
    LOW_BIT_RANDOMIZING = ["default", "sdbm", "larson", "fnv1a", "thompson"]

    @pytest.mark.parametrize("name", LOW_BIT_RANDOMIZING)
    def test_low_bit_distribution_on_dictionary(self, name):
        fn = HASH_FUNCTIONS[name]
        words = dictionary_words(2000)
        nbuckets = 256
        counts = [0] * nbuckets
        for w in words:
            counts[fn(w) & (nbuckets - 1)] += 1
        # expected ~7.8 keys/bucket; a decent hash keeps the max far below
        # a degenerate pile-up
        assert max(counts) < 40, f"{name} clusters badly: max bucket {max(counts)}"
        occupied = sum(1 for c in counts if c)
        assert occupied > nbuckets * 0.8, f"{name} leaves too many empty buckets"

    @pytest.mark.parametrize("name", ["pjw", "knuth"])
    def test_mod_prime_distribution_on_dictionary(self, name):
        """pjw/knuth distribute well modulo a prime (their intended use)."""
        fn = HASH_FUNCTIONS[name]
        words = dictionary_words(2000)
        nbuckets = 251
        counts = [0] * nbuckets
        for w in words:
            counts[fn(w) % nbuckets] += 1
        assert max(counts) < 40, f"{name} clusters badly: max bucket {max(counts)}"

    def test_thompson_hash_randomizes_low_bits(self):
        """dbm consumes low bits first; nearly identical keys must differ
        there (footnote 2 of the paper)."""
        low = {thompson_hash(f"key{i}".encode()) & 0xFF for i in range(100)}
        assert len(low) > 50


class TestRegistry:
    def test_all_registered(self):
        assert set(HASH_FUNCTIONS) == {
            "default", "sdbm", "larson", "fnv1a", "pjw", "knuth", "thompson",
        }

    def test_get_by_name(self):
        assert get_hash_function("sdbm") is sdbm_hash

    def test_get_default(self):
        assert get_hash_function(None) is default_hash

    def test_get_callable_passthrough(self):
        fn = lambda key: 7  # noqa: E731
        assert get_hash_function(fn) is fn

    def test_get_unknown_name(self):
        with pytest.raises(KeyError, match="unknown hash function"):
            get_hash_function("nope")
