"""The transaction API: begin/commit/abort semantics, the ``with
transaction():`` form, misuse errors, checkpointing, and the deprecated
positional-flags migration on ``put``."""

from __future__ import annotations

import os
import threading
import warnings

import pytest

import repro
from repro.access.api import R_NOOVERWRITE
from repro.core.errors import InvalidParameterError, ReadOnlyError, TransactionError
from repro.core.table import HashTable
from repro.core.wal import FT_DELETE, FT_PUT, wal_path_for


@pytest.fixture
def table(tmp_path):
    t = HashTable.create(tmp_path / "t.db", bsize=512, durability="wal")
    yield t
    if not t.closed:
        t.close()


class TestExplicitTransactions:
    def test_commit_makes_writes_visible_and_durable(self, table, tmp_path):
        table.begin()
        table.put(b"a", b"1")
        table.put(b"b", b"2")
        table.commit()
        assert table.get(b"a") == b"1"
        table.close()
        with HashTable.open_file(tmp_path / "t.db") as t2:
            assert t2.get(b"a") == b"1" and t2.get(b"b") == b"2"

    def test_abort_rewinds_everything(self, table):
        table.put(b"keep", b"old")
        table.begin()
        table.put(b"keep", b"new")
        table.put(b"gone", b"x")
        table.delete(b"keep")
        table.abort()
        assert table.get(b"keep") == b"old"
        assert table.get(b"gone") is None
        assert table.nkeys == 1

    def test_abort_rewinds_splits(self, table):
        table.begin()
        for i in range(500):
            table.put(f"k{i:04d}".encode(), b"v" * 40)
        buckets_mid = table.nbuckets
        table.abort()
        assert table.nkeys == 0
        assert table.nbuckets < buckets_mid
        # table still fully usable
        table.put(b"after", b"ok")
        assert table.get(b"after") == b"ok"

    def test_nested_begin_raises(self, table):
        table.begin()
        with pytest.raises(TransactionError, match="nest"):
            table.begin()
        table.abort()

    def test_commit_abort_without_begin_raise(self, table):
        with pytest.raises(TransactionError):
            table.commit()
        with pytest.raises(TransactionError):
            table.abort()

    def test_in_transaction_flag(self, table):
        assert table.in_transaction is False
        table.begin()
        assert table.in_transaction is True
        table.commit()
        assert table.in_transaction is False

    def test_crash_preserves_committed_only(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, bsize=512, durability="wal")
        t.begin()
        for i in range(100):
            t.put(f"c{i}".encode(), f"v{i}".encode())
        t.commit()
        t.begin()
        t.put(b"uncommitted", b"x")
        # simulated kill -9: no commit, no close
        del t
        with HashTable.open_file(path) as t2:
            assert t2.get(b"c42") == b"v42"
            assert t2.get(b"uncommitted") is None
            assert t2.nkeys == 100


class TestContextManager:
    def test_clean_exit_commits(self, table):
        with table.transaction():
            table.put(b"k", b"v")
        assert table.get(b"k") == b"v"
        assert table.in_transaction is False

    def test_exception_aborts_and_propagates(self, table):
        with pytest.raises(RuntimeError, match="boom"):
            with table.transaction():
                table.put(b"k", b"v")
                raise RuntimeError("boom")
        assert table.get(b"k") is None
        assert table.in_transaction is False


class TestMisuse:
    def test_sync_inside_transaction_raises(self, table):
        table.begin()
        with pytest.raises(TransactionError, match="sync"):
            table.sync()
        table.abort()

    def test_checkpoint_inside_transaction_raises(self, table):
        table.begin()
        with pytest.raises(TransactionError):
            table.checkpoint()
        table.abort()

    def test_begin_without_durability_raises(self, tmp_path):
        with HashTable.create(tmp_path / "p.db", bsize=512) as t:
            with pytest.raises(TransactionError, match="durability"):
                t.begin()

    def test_bad_durability_value_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="durability"):
            HashTable.create(tmp_path / "p.db", durability="fsync-maybe")

    def test_readonly_open_disables_wal(self, tmp_path):
        path = tmp_path / "t.db"
        with HashTable.create(path, bsize=512, durability="wal") as t:
            t.put(b"k", b"v")
        t2 = HashTable.open_file(path, readonly=True, durability="wal")
        assert t2.durability == "none"
        with pytest.raises(ReadOnlyError):
            t2.begin()
        t2.close()


class TestCloseSemantics:
    def test_close_rolls_back_open_transaction(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, bsize=512, durability="wal")
        t.put(b"committed", b"yes")
        t.begin()
        t.put(b"half", b"no")
        t.close()
        with HashTable.open_file(path) as t2:
            assert t2.get(b"committed") == b"yes"
            assert t2.get(b"half") is None

    def test_close_truncates_log(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, bsize=512, durability="wal")
        t.begin()
        for i in range(50):
            t.put(f"k{i}".encode(), b"v" * 60)
        t.commit()
        t.close()
        # a clean close checkpoints: the log holds only its header + marker
        assert os.path.getsize(wal_path_for(path)) < 128


class TestCheckpointing:
    def test_manual_checkpoint_transfers_and_truncates(self, table):
        table.begin()
        for i in range(50):
            table.put(f"k{i}".encode(), b"v" * 60)
        table.commit()
        moved = table.checkpoint()
        assert moved > 0
        s = table.stat()["wal"]
        assert s["checkpoints"] >= 1
        assert s["committed_pages"] == 0
        assert table.get(b"k13") == b"v" * 60

    def test_auto_checkpoint_bounds_log(self, tmp_path):
        t = HashTable.create(
            tmp_path / "t.db", bsize=512, durability="wal",
            wal_checkpoint_bytes=4096,
        )
        for i in range(300):
            t.put(f"k{i:04d}".encode(), b"v" * 50)
        s = t.stat()["wal"]
        assert s["checkpoints"] >= 1
        # the log never grows far past the threshold before a checkpoint
        assert s["wal_bytes"] < 4096 * 8
        t.close()

    def test_in_memory_transactions(self):
        t = HashTable.create(None, bsize=512, in_memory=True, durability="wal")
        t.begin()
        t.put(b"a", b"1")
        t.commit()
        t.begin()
        t.put(b"b", b"2")
        t.abort()
        assert t.get(b"a") == b"1" and t.get(b"b") is None
        t.close()


class TestAuditFrames:
    def test_wal_audit_logs_puts_and_deletes(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, bsize=512, durability="wal", wal_audit=True)
        t.begin()
        t.put(b"k1", b"v1")
        t.put(b"k2", b"v2")
        t.delete(b"k1")
        ftypes = [f.ftype for f in t._wal.scan()]
        assert ftypes.count(FT_PUT) == 2
        assert ftypes.count(FT_DELETE) == 1
        t.abort()
        t.close()


class TestStatSection:
    def test_wal_metrics_shape(self, table):
        table.begin()
        table.put(b"k", b"v")
        table.commit()
        s = table.stat()["wal"]
        for key in (
            "durability", "commits", "aborts", "fsyncs", "checkpoints",
            "frames", "resets", "wal_bytes", "pending_pages",
            "committed_pages", "io",
        ):
            assert key in s, key
        assert s["durability"] == "wal"
        assert s["commits"] >= 1

    def test_no_wal_section_without_durability(self, tmp_path):
        with HashTable.create(tmp_path / "p.db", bsize=512) as t:
            assert "wal" not in t.stat()


class TestAccessMethods:
    """The redesigned API is uniform across hash, btree and recno."""

    @pytest.mark.parametrize("kind", ["hash", "btree", "recno"])
    def test_txn_api_everywhere(self, tmp_path, kind):
        db = repro.open(tmp_path / "db", type=kind, durability="wal")
        k1 = repro.access.recno.recno.encode_recno(1) if kind == "recno" else b"k1"
        k2 = repro.access.recno.recno.encode_recno(2) if kind == "recno" else b"k2"
        db.begin()
        assert db.put(k1, b"v1") == 0
        db.commit()
        db.begin()
        db.put(k2, b"v2")
        db.abort()
        assert db.get(k1) == b"v1"
        assert db.get(k2) is None
        with db.transaction():
            db.put(k2, b"v2")
        assert db.get(k2) == b"v2"
        assert db.in_transaction is False
        assert db.stat()["wal"]["commits"] >= 2
        db.close()
        # durable across reopen
        db2 = repro.open(tmp_path / "db", type=kind, durability="wal")
        assert db2.get(k1) == b"v1" and db2.get(k2) == b"v2"
        db2.close()

    @pytest.mark.parametrize("kind", ["hash", "btree", "recno"])
    def test_begin_without_durability_raises(self, tmp_path, kind):
        db = repro.open(tmp_path / "db", type=kind)
        with pytest.raises(TransactionError):
            db.begin()
        db.close()

    def test_recno_abort_rewinds_record_count(self, tmp_path):
        r = repro.open(tmp_path / "r.db", type="recno", durability="wal")
        r.append(b"one")
        r.begin()
        r.append(b"two")
        r.append(b"three")
        assert r.nrecords == 3
        r.abort()
        assert r.nrecords == 1
        assert r.get_rec(2) is None
        r.close()

    def test_group_commit_concurrent_committers(self, tmp_path):
        db = repro.open(
            tmp_path / "g.db", durability="wal+fsync", concurrent=True
        )
        errors = []

        def worker(i):
            try:
                for j in range(5):
                    db.begin()
                    db.put(f"t{i}-{j}".encode(), b"v")
                    db.commit()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = db.stat()["wal"]
        assert s["group_commits"] == 40
        assert s["fsyncs"] <= s["group_commits"]
        for i in range(8):
            for j in range(5):
                assert db.get(f"t{i}-{j}".encode()) == b"v"
        db.close()


class TestPutDeprecation:
    def test_positional_flags_warns(self, tmp_path):
        db = repro.open(tmp_path / "d.db")
        db.put(b"k", b"v")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert db.put(b"k", b"x", R_NOOVERWRITE) == 1
            assert db.put(b"k", b"y", 0) == 0
        assert len(caught) == 2
        assert all(issubclass(w.category, DeprecationWarning) for w in caught)
        assert "replace" in str(caught[0].message)
        db.close()

    def test_replace_keyword_is_silent(self, tmp_path):
        db = repro.open(tmp_path / "d.db")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert db.put(b"k", b"v") == 0
            assert db.put(b"k", b"x", replace=False) == 1
            assert db.put(b"k", b"y", replace=True) == 0
        assert db.get(b"k") == b"y"
        db.close()

    def test_both_flags_and_replace_is_an_error(self, tmp_path):
        db = repro.open(tmp_path / "d.db")
        with pytest.raises(TypeError, match="not both"):
            db.put(b"k", b"v", 0, replace=True)
        db.close()

    @pytest.mark.parametrize("kind", ["hash", "btree", "recno"])
    def test_replace_false_everywhere(self, tmp_path, kind):
        db = repro.open(tmp_path / "db", type=kind)
        key = repro.access.recno.recno.encode_recno(1) if kind == "recno" else b"k"
        assert db.put(key, b"first") == 0
        assert db.put(key, b"second", replace=False) == 1
        assert db.get(key) == b"first"
        db.close()
